#!/usr/bin/env bash
# Diffs two BENCH_*.json snapshots (see crates/bench/src/bin/trend.rs).
#
# Usage:
#   scripts/bench_trend.sh <old.json> <new.json> [--threshold <pct>]
#
# Typical flow when touching perf-sensitive code:
#   cp BENCH_scale.json /tmp/scale-before.json
#   cargo run --release -p teechain-bench --bin scale -- --quick
#   scripts/bench_trend.sh /tmp/scale-before.json BENCH_scale.json
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <old.json> <new.json> [--threshold <pct>]" >&2
    exit 2
fi

cd "$(dirname "$0")/.."
exec cargo run --release -q -p teechain-bench --bin trend -- "$@"
