#!/usr/bin/env bash
# Regenerates docs/public-api.txt — a normalized snapshot of the
# `teechain` (crates/core) public API surface. CI diffs the committed
# snapshot against a fresh one, so any drift of the public API is a
# deliberate, reviewed change (update with: scripts/public-api.sh).
#
# The dump is intentionally simple and dependency-free: the first line of
# every `pub` item signature (functions, types, traits, consts, modules,
# re-exports) in crates/core/src, normalized and sorted. `pub(crate)` and
# other restricted visibilities are excluded.
set -euo pipefail
cd "$(dirname "$0")/.."
out="docs/public-api.txt"
mkdir -p docs
{
  echo "# Public API snapshot of crates/core (the \`teechain\` crate)."
  echo "# Regenerate with scripts/public-api.sh; CI fails on drift."
  grep -rhoE '^[[:space:]]*pub (fn|struct|enum|trait|type|const|static|mod|use) [^;{(]*' \
    --include='*.rs' crates/core/src \
    | sed -E 's/^[[:space:]]+//; s/[[:space:]]+$//; s/[[:space:]]+/ /g' \
    | LC_ALL=C sort -u
} > "$out"
echo "wrote $out ($(grep -c '' "$out") lines)"
