#!/usr/bin/env bash
# Asserts a BENCH_swap.json artifact is healthy: nonzero swap
# throughput, both terminal paths (redeem + refund) exercised, and —
# the invariant the whole subsystem hangs on — zero swaps stuck at
# quiescence.
#
# Usage: scripts/swap_gate.sh [BENCH_swap.json]
set -euo pipefail

ARTIFACT="${1:-BENCH_swap.json}"
python3 - "$ARTIFACT" <<'EOF'
import json
import sys

doc = json.load(open(sys.argv[1]))
m = doc["metrics"]
assert m["stuck_swaps"] == 0, f"swaps stuck at quiescence: {m['stuck_swaps']}"
assert m["swaps_completed"] > 0, "no swap completed"
assert m["swaps_redeemed"] > 0, "no swap redeemed"
assert m["swaps_refunded"] > 0, "griefed channel never refunded"
for key in ("swaps_per_s_none", "swaps_per_s_wal"):
    assert m[key] > 0, f"{key} is zero"
lat = doc["latency"]
for key in ("swap.latency.init_to_locked",
            "swap.latency.locked_to_terminal",
            "swap.latency.total"):
    assert lat[key]["count"] > 0, f"latency histogram {key} is empty"
print(f"{sys.argv[1]}: {m['swaps_completed']} swaps "
      f"({m['swaps_redeemed']} redeemed / {m['swaps_refunded']} refunded), "
      f"0 stuck, {m['swaps_per_s_none']:.1f} swaps/s (no fault tolerance), "
      f"{m['swaps_per_s_wal']:.1f} swaps/s (WAL)")
EOF
