//! Umbrella crate for the Teechain reproduction workspace.
//!
//! Re-exports the member crates for convenient use by the workspace-level
//! examples and integration tests. See `README.md` for a tour.

pub use teechain;
pub use teechain_baselines;
pub use teechain_bench;
pub use teechain_blockchain;
pub use teechain_crypto;
pub use teechain_net;
pub use teechain_tee;
pub use teechain_util;
