//! Property-based test of the paper's central security property
//! (Definition A.1, *balance correctness*): after ANY sequence of
//! payments — and regardless of whether the counterparty cooperates — a
//! well-behaved user can unilaterally reclaim at least their perceived
//! balance on the blockchain.

use proptest::prelude::*;
use teechain::enclave::Command;
use teechain::testkit::Cluster;

/// Operations the adversary/schedule may interleave.
#[derive(Debug, Clone)]
enum Op {
    /// Node 0 pays node 1.
    Pay01(u64),
    /// Node 1 pays node 0.
    Pay10(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..200).prop_map(Op::Pay01),
            (1u64..200).prop_map(Op::Pay10),
        ],
        0..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random payment interleavings, unilateral settlement yields
    /// exactly the perceived balance for both parties, and value is
    /// conserved on chain.
    #[test]
    fn prop_balance_correctness(ops in arb_ops(), settle_by_zero in any::<bool>()) {
        let mut net = Cluster::functional(2);
        let chan = net.standard_channel(0, 1, "prop", 10_000, 1);
        // Node 1 funds its side too, so both directions can pay.
        let dep = net.fund_deposit(1, 10_000, 1);
        net.approve_and_associate(1, 0, chan, &dep);

        let mut bal0: u64 = 10_000;
        let mut bal1: u64 = 10_000;
        for op in &ops {
            match *op {
                Op::Pay01(v) => {
                    if bal0 >= v {
                        net.pay(0, chan, v).unwrap();
                        bal0 -= v;
                        bal1 += v;
                    }
                }
                Op::Pay10(v) => {
                    if bal1 >= v {
                        net.pay(1, chan, v).unwrap();
                        bal1 -= v;
                        bal0 += v;
                    }
                }
            }
        }
        // The perceived balances must match the enclave state exactly
        // (Proposition 1 of the paper's proof).
        prop_assert_eq!(net.balances(0, chan), (bal0, bal1));

        // Settlement, then full reclamation — the paper's balance
        // correctness algorithm (Definition A.4): settle every channel,
        // then release every free deposit. With neutral balances the
        // settle terminates OFF-chain (deposits dissociate and become
        // free); otherwise a settlement transaction carries the balances.
        let settler = if settle_by_zero { 0 } else { 1 };
        let (addr0, addr1) = {
            let p = net.node(settler).enclave.program().unwrap();
            let c = p.channel(&chan).unwrap();
            (c.my_settlement, c.remote_settlement)
        };
        net.settle_channel(settler, chan).unwrap();
        net.mine(1);
        // OPS3: both parties release any deposits the termination freed.
        for party in [0usize, 1] {
            let frees = net
                .node(party)
                .enclave
                .program()
                .unwrap()
                .book_ref()
                .free_deposits();
            let target = if party == settler { addr0 } else { addr1 };
            for dep in frees {
                net.op(
                    party,
                    Command::ReleaseDeposit {
                        outpoint: dep.outpoint,
                        to: target,
                    },
                )
                .unwrap();
            }
        }
        net.settle_network();
        net.mine(1);
        let (mine, theirs) = if settle_by_zero {
            (bal0, bal1)
        } else {
            (bal1, bal0)
        };
        prop_assert_eq!(net.chain_balance(&addr0), mine);
        prop_assert_eq!(net.chain_balance(&addr1), theirs);
        // Chain-level value conservation.
        let chain = net.chain.lock();
        prop_assert_eq!(chain.utxo_total() + chain.total_fees(), chain.total_minted());
    }

    /// Multi-hop payments preserve every participant's total balance sum
    /// across their channels (intermediaries never gain or lose).
    #[test]
    fn prop_multihop_conservation(amounts in proptest::collection::vec(1u64..100, 1..6)) {
        let mut net = Cluster::functional(3);
        let c01 = net.standard_channel(0, 1, "c01", 5_000, 1);
        let c12 = net.standard_channel(1, 2, "c12", 5_000, 1);
        let mut sent = 0u64;
        for (k, v) in amounts.iter().enumerate() {
            net.pay_multihop(&[0, 1, 2], &[c01, c12], *v, &format!("p{k}")).unwrap();
            sent += v;
        }
        // Intermediary node 1: inbound gains exactly offset outbound losses.
        let (in_my, _) = net.balances(1, c01);
        let (out_my, _) = net.balances(1, c12);
        prop_assert_eq!(in_my, sent);
        prop_assert_eq!(out_my, 5_000 - sent);
        // Receiver got exactly the sum.
        prop_assert_eq!(net.balances(2, c12).0, sent);
    }
}
