//! Cross-crate integration tests: the full stack (crypto → TEE →
//! blockchain → network → protocol) under realistic conditions.

use teechain::ops::SettleKind;
use teechain::testkit::{Cluster, ClusterConfig};
use teechain_baselines::attack::delay_attack_on_ln;
use teechain_blockchain::AdversaryPolicy;
use teechain_net::topology::{fig3_link, Region};

#[test]
fn full_lifecycle_on_wan_links() {
    // Same flow as the quickstart, but over the Fig. 3 transatlantic link
    // with real latencies and the calibrated cost model.
    let mut net = Cluster::new(ClusterConfig {
        n: 2,
        costs: teechain::driver::CostModel::default(),
        default_link: fig3_link(Region::Us, Region::Uk),
        ..ClusterConfig::default()
    });
    let chan = net.standard_channel(0, 1, "wan", 1_000, 1);
    let t0 = net.sim.now_ns();
    net.pay(0, chan, 100).unwrap();
    let elapsed_ms = (net.sim.now_ns() - t0) as f64 / 1e6;
    // One payment = one 84 ms round trip (+jitter/processing).
    assert!((80.0..120.0).contains(&elapsed_ms), "{elapsed_ms}");
    let s = net.settle_channel(0, chan).unwrap();
    assert!(matches!(s.kind, SettleKind::OnChain(_)));
    net.mine(1);
    let chain = net.chain.lock();
    assert_eq!(
        chain.utxo_total() + chain.total_fees(),
        chain.total_minted()
    );
}

#[test]
fn teechain_immune_to_delay_attack_ln_is_not() {
    // LN: censoring past τ steals funds.
    let ln = delay_attack_on_ln(1_000, 600, 10, 11);
    assert!(ln.theft_succeeded);
    // Teechain under the same (stronger: delay EVERYTHING) adversary.
    let mut net = Cluster::functional(2);
    let chan = net.standard_channel(0, 1, "attack", 1_000, 1);
    net.pay(0, chan, 600).unwrap();
    net.chain
        .lock()
        .set_policy(AdversaryPolicy::DelayAll { blocks: 100 });
    let bob_addr = {
        let p = net.node(1).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_settlement
    };
    net.settle_channel(1, chan).unwrap();
    net.mine(101);
    // Delayed, never diverted: Bob receives exactly what he is owed.
    assert_eq!(net.chain_balance(&bob_addr), 600);
}

#[test]
fn channel_state_survives_host_message_loss() {
    // The host is untrusted: drop Bob's network entirely mid-payment.
    // Alice's debit is gated on... nothing here (no replication), so her
    // enclave state moved — but settlement still reflects a consistent
    // state pair because Bob never acked and Alice can only settle at a
    // state her TEE actually reached.
    let mut net = Cluster::functional(2);
    let chan = net.standard_channel(0, 1, "loss", 1_000, 1);
    net.pay(0, chan, 100).unwrap();
    // Crash Bob. Alice settles unilaterally.
    net.node_mut(1).enclave.crash();
    let addr = {
        let p = net.node(0).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_settlement
    };
    net.settle_channel(0, chan).unwrap();
    net.mine(1);
    assert_eq!(net.chain_balance(&addr), 900);
}

#[test]
fn thirty_node_complete_graph_smoke() {
    // A small slice of the Fig. 6 deployment as an integration test.
    let mut net = Cluster::functional(6);
    let mut chans = Vec::new();
    for i in 0..6usize {
        for j in (i + 1)..6 {
            chans.push((i, net.standard_channel(i, j, &format!("c{i}{j}"), 1_000, 1)));
        }
    }
    for &(i, chan) in &chans {
        net.pay(i, chan, 10).unwrap();
    }
    for &(i, chan) in &chans {
        let (my, _) = net.balances(i, chan);
        assert_eq!(my, 990);
    }
}

#[test]
fn outsourced_user_via_remote_tee() {
    // Dave (no TEE) uses a remote TEE: modelled as operating a node whose
    // enclave he attested (the trust argument is the committee chain, so
    // we attach one and verify failover works for the outsourced user).
    let mut net = Cluster::functional(3);
    net.attach_backup(0, 2); // Dave's outsourced TEE is replicated.
    net.connect(0, 1);
    let chan = net.open_channel(0, 1, "dave");
    let dep = net.fund_deposit(0, 500, 1);
    net.approve_and_associate(0, 1, chan, &dep);
    net.pay(0, chan, 50).unwrap();
    // The outsourced operator disappears; Dave recovers via the committee.
    net.node_mut(0).enclave.crash();
    net.exec(2, teechain::Command::SettleFromReplica);
    net.mine(1);
    let addr = {
        let p = net.node(2).enclave.program().unwrap();
        p.replica_channel(&chan).unwrap().my_settlement
    };
    assert_eq!(net.chain_balance(&addr), 450);
}
