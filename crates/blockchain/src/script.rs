//! Output spending conditions.

use teechain_crypto::schnorr::{self, PublicKey, Signature};
use teechain_crypto::sha256::sha256;
use teechain_util::codec::{Decode, Encode, Reader, WireError};

/// The condition under which a transaction output may be spent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScriptPubKey {
    /// Spendable with one signature from the given key.
    P2pk(PublicKey),
    /// Spendable with `m` signatures from distinct keys in `keys`
    /// (the paper's m-out-of-n multisignature address, §3).
    Multisig {
        /// Threshold number of signatures.
        m: u8,
        /// The committee's public keys.
        keys: Vec<PublicKey>,
    },
    /// A Lightning-style revocable output: `owner` may spend after the
    /// output has `delay_blocks` confirmations (a CSV relative timelock);
    /// the `revocation` key may spend immediately (the justice path).
    /// Used only by the Lightning baseline — Teechain never needs
    /// timelocks, which is the whole point of the paper.
    Revocable {
        /// The delayed owner key.
        owner: PublicKey,
        /// Relative timelock in blocks (the synchrony parameter τ).
        delay_blocks: u64,
        /// The immediate revocation key.
        revocation: PublicKey,
    },
    /// A hashed timelock contract output for cross-chain atomic swaps:
    /// `claim_key` may spend at any time by revealing a preimage whose
    /// SHA-256 equals `hash`; `refund_key` may spend without a preimage
    /// once the output has `timeout_blocks` confirmations (a CSV relative
    /// timelock). The two paths are mutually exclusive: a claim witness
    /// never satisfies the refund path and vice versa.
    Htlc {
        /// SHA-256 of the swap secret.
        hash: [u8; 32],
        /// Key entitled to the preimage-gated claim path.
        claim_key: PublicKey,
        /// Key entitled to the timelocked refund path.
        refund_key: PublicKey,
        /// Relative timelock (in confirmations of the spent output) before
        /// the refund path opens.
        timeout_blocks: u64,
    },
}

impl ScriptPubKey {
    /// Builds a multisig script, validating the threshold.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or exceeds the number of keys, or if keys
    /// repeat (a repeated key would weaken the threshold).
    pub fn multisig(m: u8, keys: Vec<PublicKey>) -> Self {
        assert!(m >= 1 && (m as usize) <= keys.len(), "invalid threshold");
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "duplicate committee key");
        ScriptPubKey::Multisig { m, keys }
    }

    /// Number of public keys this script places on the chain.
    pub fn pubkey_count(&self) -> usize {
        match self {
            ScriptPubKey::P2pk(_) => 1,
            ScriptPubKey::Multisig { keys, .. } => keys.len(),
            ScriptPubKey::Revocable { .. } => 2,
            ScriptPubKey::Htlc { .. } => 2,
        }
    }

    /// Number of signatures required to spend.
    pub fn required_sigs(&self) -> usize {
        match self {
            ScriptPubKey::P2pk(_) => 1,
            ScriptPubKey::Multisig { m, .. } => *m as usize,
            ScriptPubKey::Revocable { .. } => 1,
            ScriptPubKey::Htlc { .. } => 1,
        }
    }

    /// Verifies a witness against `sighash`. `confirmations` is the number
    /// of confirmations of the *spent output* (for relative timelocks).
    ///
    /// For multisig, each signature must verify under a *distinct* key from
    /// the committee; extra signatures beyond `m` are permitted but
    /// unnecessary.
    ///
    /// For [`ScriptPubKey::Htlc`] this checks the refund path only — the
    /// claim path additionally needs a preimage, which only
    /// [`ScriptPubKey::verify_spend_at`] carries.
    pub fn verify_witness_at(
        &self,
        sighash: &[u8; 32],
        witness: &[Signature],
        confirmations: u64,
    ) -> bool {
        self.verify_spend_at(sighash, witness, &[], confirmations)
    }

    /// Verifies a full spend: witness signatures plus the (possibly empty)
    /// hashlock preimage carried by the spending input. This is the method
    /// consensus validation uses; `verify_witness_at` is the signature-only
    /// view for scripts without hashlocks.
    pub fn verify_spend_at(
        &self,
        sighash: &[u8; 32],
        witness: &[Signature],
        preimage: &[u8],
        confirmations: u64,
    ) -> bool {
        match self {
            ScriptPubKey::P2pk(pk) => witness.iter().any(|sig| schnorr::verify(pk, sighash, sig)),
            ScriptPubKey::Revocable {
                owner,
                delay_blocks,
                revocation,
            } => witness.iter().any(|sig| {
                schnorr::verify(revocation, sighash, sig)
                    || (confirmations >= *delay_blocks && schnorr::verify(owner, sighash, sig))
            }),
            ScriptPubKey::Multisig { m, keys } => {
                let mut used = vec![false; keys.len()];
                let mut valid = 0usize;
                for sig in witness {
                    for (i, key) in keys.iter().enumerate() {
                        if !used[i] && schnorr::verify(key, sighash, sig) {
                            used[i] = true;
                            valid += 1;
                            break;
                        }
                    }
                    if valid >= *m as usize {
                        return true;
                    }
                }
                false
            }
            ScriptPubKey::Htlc {
                hash,
                claim_key,
                refund_key,
                timeout_blocks,
            } => {
                let claim = !preimage.is_empty()
                    && sha256(preimage) == *hash
                    && witness
                        .iter()
                        .any(|sig| schnorr::verify(claim_key, sighash, sig));
                let refund = confirmations >= *timeout_blocks
                    && witness
                        .iter()
                        .any(|sig| schnorr::verify(refund_key, sighash, sig));
                claim || refund
            }
        }
    }

    /// Verifies a witness ignoring timelocks (legacy helper for scripts
    /// without delays).
    pub fn verify_witness(&self, sighash: &[u8; 32], witness: &[Signature]) -> bool {
        self.verify_witness_at(sighash, witness, u64::MAX)
    }
}

impl Encode for ScriptPubKey {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ScriptPubKey::P2pk(pk) => {
                0u8.encode(out);
                pk.encode(out);
            }
            ScriptPubKey::Multisig { m, keys } => {
                1u8.encode(out);
                m.encode(out);
                keys.encode(out);
            }
            ScriptPubKey::Revocable {
                owner,
                delay_blocks,
                revocation,
            } => {
                2u8.encode(out);
                owner.encode(out);
                delay_blocks.encode(out);
                revocation.encode(out);
            }
            ScriptPubKey::Htlc {
                hash,
                claim_key,
                refund_key,
                timeout_blocks,
            } => {
                3u8.encode(out);
                hash.encode(out);
                claim_key.encode(out);
                refund_key.encode(out);
                timeout_blocks.encode(out);
            }
        }
    }
}

impl Decode for ScriptPubKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read::<u8>()? {
            0 => Ok(ScriptPubKey::P2pk(r.read()?)),
            1 => {
                let m: u8 = r.read()?;
                let keys: Vec<PublicKey> = r.read()?;
                if m == 0 || (m as usize) > keys.len() {
                    return Err(WireError::InvalidValue("multisig threshold"));
                }
                Ok(ScriptPubKey::Multisig { m, keys })
            }
            2 => Ok(ScriptPubKey::Revocable {
                owner: r.read()?,
                delay_blocks: r.read()?,
                revocation: r.read()?,
            }),
            3 => Ok(ScriptPubKey::Htlc {
                hash: r.read()?,
                claim_key: r.read()?,
                refund_key: r.read()?,
                timeout_blocks: r.read()?,
            }),
            _ => Err(WireError::InvalidValue("script tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_crypto::schnorr::Keypair;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    #[test]
    fn p2pk_verifies_correct_signer() {
        let k = kp(1);
        let script = ScriptPubKey::P2pk(k.pk);
        let sighash = [7u8; 32];
        assert!(script.verify_witness(&sighash, &[k.sign(&sighash)]));
        assert!(!script.verify_witness(&sighash, &[kp(2).sign(&sighash)]));
        assert!(!script.verify_witness(&sighash, &[]));
    }

    #[test]
    fn multisig_two_of_three() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let script = ScriptPubKey::multisig(2, vec![a.pk, b.pk, c.pk]);
        let h = [9u8; 32];
        assert!(script.verify_witness(&h, &[a.sign(&h), c.sign(&h)]));
        assert!(script.verify_witness(&h, &[c.sign(&h), b.sign(&h)]));
        // One signature is not enough.
        assert!(!script.verify_witness(&h, &[a.sign(&h)]));
        // The same signature twice must not count as two signers.
        assert!(!script.verify_witness(&h, &[a.sign(&h), a.sign(&h)]));
        // A foreign signature contributes nothing.
        assert!(!script.verify_witness(&h, &[a.sign(&h), kp(4).sign(&h)]));
    }

    #[test]
    fn multisig_full_threshold() {
        let ks: Vec<Keypair> = (1..=4).map(kp).collect();
        let script = ScriptPubKey::multisig(4, ks.iter().map(|k| k.pk).collect());
        let h = [1u8; 32];
        let wit: Vec<_> = ks.iter().map(|k| k.sign(&h)).collect();
        assert!(script.verify_witness(&h, &wit));
        assert!(!script.verify_witness(&h, &wit[..3]));
    }

    #[test]
    #[should_panic(expected = "invalid threshold")]
    fn zero_threshold_rejected() {
        let _ = ScriptPubKey::multisig(0, vec![kp(1).pk]);
    }

    #[test]
    #[should_panic(expected = "duplicate committee key")]
    fn duplicate_keys_rejected() {
        let k = kp(1);
        let _ = ScriptPubKey::multisig(1, vec![k.pk, k.pk]);
    }

    #[test]
    fn codec_roundtrip() {
        let script = ScriptPubKey::multisig(2, vec![kp(1).pk, kp(2).pk, kp(3).pk]);
        let decoded = ScriptPubKey::decode_exact(&script.encode_to_vec()).unwrap();
        assert_eq!(decoded, script);
    }

    fn htlc(secret: &[u8], claim: &Keypair, refund: &Keypair, timeout: u64) -> ScriptPubKey {
        ScriptPubKey::Htlc {
            hash: sha256(secret),
            claim_key: claim.pk,
            refund_key: refund.pk,
            timeout_blocks: timeout,
        }
    }

    #[test]
    fn htlc_claim_needs_preimage_and_claim_key() {
        let (claim, refund) = (kp(1), kp(2));
        let script = htlc(b"secret", &claim, &refund, 10);
        let h = [3u8; 32];
        let sig = claim.sign(&h);
        // Correct preimage + claim signature: spendable immediately.
        assert!(script.verify_spend_at(&h, &[sig], b"secret", 1));
        // Wrong preimage rejected.
        assert!(!script.verify_spend_at(&h, &[sig], b"wrong", 1));
        // Empty preimage rejected before timeout.
        assert!(!script.verify_spend_at(&h, &[sig], &[], 1));
        // Preimage without a claim-key signature rejected.
        assert!(!script.verify_spend_at(&h, &[refund.sign(&h)], b"secret", 1));
    }

    #[test]
    fn htlc_refund_needs_maturity_and_refund_key() {
        let (claim, refund) = (kp(1), kp(2));
        let script = htlc(b"secret", &claim, &refund, 10);
        let h = [4u8; 32];
        let sig = refund.sign(&h);
        // Refund before timeout rejected.
        assert!(!script.verify_spend_at(&h, &[sig], &[], 9));
        // Refund at/after timeout accepted.
        assert!(script.verify_spend_at(&h, &[sig], &[], 10));
        assert!(script.verify_spend_at(&h, &[sig], &[], 1000));
        // The claim key cannot take the refund path even after timeout.
        assert!(!script.verify_spend_at(&h, &[claim.sign(&h)], &[], 1000));
    }

    #[test]
    fn htlc_codec_roundtrip() {
        let script = htlc(b"s", &kp(1), &kp(2), 144);
        let decoded = ScriptPubKey::decode_exact(&script.encode_to_vec()).unwrap();
        assert_eq!(decoded, script);
    }
}

#[cfg(test)]
mod htlc_props {
    use super::*;
    use proptest::prelude::*;
    use teechain_crypto::schnorr::Keypair;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    proptest! {
        /// Any preimage other than the committed secret is rejected on the
        /// claim path, regardless of maturity.
        #[test]
        fn wrong_preimage_rejected(
            secret in proptest::collection::vec(any::<u8>(), 1..64),
            wrong in proptest::collection::vec(any::<u8>(), 1..64),
            confs in 0u64..1000,
        ) {
            prop_assume!(wrong != secret);
            let (claim, refund) = (kp(1), kp(2));
            let script = ScriptPubKey::Htlc {
                hash: sha256(&secret),
                claim_key: claim.pk,
                refund_key: refund.pk,
                timeout_blocks: u64::MAX,
            };
            let h = [7u8; 32];
            let sig = claim.sign(&h);
            prop_assert!(script.verify_spend_at(&h, &[sig], &secret, confs));
            prop_assert!(!script.verify_spend_at(&h, &[sig], &wrong, confs));
        }

        /// The refund path stays closed strictly before `timeout_blocks`
        /// confirmations and opens exactly at it.
        #[test]
        fn refund_gated_by_timeout(
            timeout in 1u64..500,
            early in 0u64..500,
            late in 0u64..500,
        ) {
            let (claim, refund) = (kp(1), kp(2));
            let script = ScriptPubKey::Htlc {
                hash: sha256(b"s"),
                claim_key: claim.pk,
                refund_key: refund.pk,
                timeout_blocks: timeout,
            };
            let h = [8u8; 32];
            let sig = refund.sign(&h);
            let early = early.min(timeout - 1);
            let late = timeout + late;
            prop_assert!(!script.verify_spend_at(&h, &[sig], &[], early));
            prop_assert!(script.verify_spend_at(&h, &[sig], &[], late));
        }

        /// Path exclusivity: a claim witness (claim signature + preimage)
        /// never validates through the refund key, and a refund witness
        /// (refund signature, no preimage) never validates through the
        /// claim key — under every maturity.
        #[test]
        fn paths_mutually_exclusive(
            secret in proptest::collection::vec(any::<u8>(), 1..64),
            timeout in 1u64..500,
            confs in 0u64..1000,
        ) {
            let (claim, refund) = (kp(1), kp(2));
            let script = ScriptPubKey::Htlc {
                hash: sha256(&secret),
                claim_key: claim.pk,
                refund_key: refund.pk,
                timeout_blocks: timeout,
            };
            let h = [9u8; 32];
            // Refund-key signature plus the true preimage: the claim path
            // demands the claim key, the refund path demands maturity.
            let cross = script.verify_spend_at(&h, &[refund.sign(&h)], &secret, confs);
            prop_assert_eq!(cross, confs >= timeout);
            // Claim-key signature with no preimage: only the (closed to
            // this key) refund path could apply — always rejected.
            prop_assert!(!script.verify_spend_at(&h, &[claim.sign(&h)], &[], confs));
            // No witness at all never spends.
            prop_assert!(!script.verify_spend_at(&h, &[], &secret, confs));
        }
    }
}
