//! Output spending conditions.

use teechain_crypto::schnorr::{self, PublicKey, Signature};
use teechain_util::codec::{Decode, Encode, Reader, WireError};

/// The condition under which a transaction output may be spent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScriptPubKey {
    /// Spendable with one signature from the given key.
    P2pk(PublicKey),
    /// Spendable with `m` signatures from distinct keys in `keys`
    /// (the paper's m-out-of-n multisignature address, §3).
    Multisig {
        /// Threshold number of signatures.
        m: u8,
        /// The committee's public keys.
        keys: Vec<PublicKey>,
    },
    /// A Lightning-style revocable output: `owner` may spend after the
    /// output has `delay_blocks` confirmations (a CSV relative timelock);
    /// the `revocation` key may spend immediately (the justice path).
    /// Used only by the Lightning baseline — Teechain never needs
    /// timelocks, which is the whole point of the paper.
    Revocable {
        /// The delayed owner key.
        owner: PublicKey,
        /// Relative timelock in blocks (the synchrony parameter τ).
        delay_blocks: u64,
        /// The immediate revocation key.
        revocation: PublicKey,
    },
}

impl ScriptPubKey {
    /// Builds a multisig script, validating the threshold.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or exceeds the number of keys, or if keys
    /// repeat (a repeated key would weaken the threshold).
    pub fn multisig(m: u8, keys: Vec<PublicKey>) -> Self {
        assert!(m >= 1 && (m as usize) <= keys.len(), "invalid threshold");
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "duplicate committee key");
        ScriptPubKey::Multisig { m, keys }
    }

    /// Number of public keys this script places on the chain.
    pub fn pubkey_count(&self) -> usize {
        match self {
            ScriptPubKey::P2pk(_) => 1,
            ScriptPubKey::Multisig { keys, .. } => keys.len(),
            ScriptPubKey::Revocable { .. } => 2,
        }
    }

    /// Number of signatures required to spend.
    pub fn required_sigs(&self) -> usize {
        match self {
            ScriptPubKey::P2pk(_) => 1,
            ScriptPubKey::Multisig { m, .. } => *m as usize,
            ScriptPubKey::Revocable { .. } => 1,
        }
    }

    /// Verifies a witness against `sighash`. `confirmations` is the number
    /// of confirmations of the *spent output* (for relative timelocks).
    ///
    /// For multisig, each signature must verify under a *distinct* key from
    /// the committee; extra signatures beyond `m` are permitted but
    /// unnecessary.
    pub fn verify_witness_at(
        &self,
        sighash: &[u8; 32],
        witness: &[Signature],
        confirmations: u64,
    ) -> bool {
        match self {
            ScriptPubKey::P2pk(pk) => witness.iter().any(|sig| schnorr::verify(pk, sighash, sig)),
            ScriptPubKey::Revocable {
                owner,
                delay_blocks,
                revocation,
            } => witness.iter().any(|sig| {
                schnorr::verify(revocation, sighash, sig)
                    || (confirmations >= *delay_blocks && schnorr::verify(owner, sighash, sig))
            }),
            ScriptPubKey::Multisig { m, keys } => {
                let mut used = vec![false; keys.len()];
                let mut valid = 0usize;
                for sig in witness {
                    for (i, key) in keys.iter().enumerate() {
                        if !used[i] && schnorr::verify(key, sighash, sig) {
                            used[i] = true;
                            valid += 1;
                            break;
                        }
                    }
                    if valid >= *m as usize {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Verifies a witness ignoring timelocks (legacy helper for scripts
    /// without delays).
    pub fn verify_witness(&self, sighash: &[u8; 32], witness: &[Signature]) -> bool {
        self.verify_witness_at(sighash, witness, u64::MAX)
    }
}

impl Encode for ScriptPubKey {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ScriptPubKey::P2pk(pk) => {
                0u8.encode(out);
                pk.encode(out);
            }
            ScriptPubKey::Multisig { m, keys } => {
                1u8.encode(out);
                m.encode(out);
                keys.encode(out);
            }
            ScriptPubKey::Revocable {
                owner,
                delay_blocks,
                revocation,
            } => {
                2u8.encode(out);
                owner.encode(out);
                delay_blocks.encode(out);
                revocation.encode(out);
            }
        }
    }
}

impl Decode for ScriptPubKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read::<u8>()? {
            0 => Ok(ScriptPubKey::P2pk(r.read()?)),
            1 => {
                let m: u8 = r.read()?;
                let keys: Vec<PublicKey> = r.read()?;
                if m == 0 || (m as usize) > keys.len() {
                    return Err(WireError::InvalidValue("multisig threshold"));
                }
                Ok(ScriptPubKey::Multisig { m, keys })
            }
            2 => Ok(ScriptPubKey::Revocable {
                owner: r.read()?,
                delay_blocks: r.read()?,
                revocation: r.read()?,
            }),
            _ => Err(WireError::InvalidValue("script tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_crypto::schnorr::Keypair;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    #[test]
    fn p2pk_verifies_correct_signer() {
        let k = kp(1);
        let script = ScriptPubKey::P2pk(k.pk);
        let sighash = [7u8; 32];
        assert!(script.verify_witness(&sighash, &[k.sign(&sighash)]));
        assert!(!script.verify_witness(&sighash, &[kp(2).sign(&sighash)]));
        assert!(!script.verify_witness(&sighash, &[]));
    }

    #[test]
    fn multisig_two_of_three() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let script = ScriptPubKey::multisig(2, vec![a.pk, b.pk, c.pk]);
        let h = [9u8; 32];
        assert!(script.verify_witness(&h, &[a.sign(&h), c.sign(&h)]));
        assert!(script.verify_witness(&h, &[c.sign(&h), b.sign(&h)]));
        // One signature is not enough.
        assert!(!script.verify_witness(&h, &[a.sign(&h)]));
        // The same signature twice must not count as two signers.
        assert!(!script.verify_witness(&h, &[a.sign(&h), a.sign(&h)]));
        // A foreign signature contributes nothing.
        assert!(!script.verify_witness(&h, &[a.sign(&h), kp(4).sign(&h)]));
    }

    #[test]
    fn multisig_full_threshold() {
        let ks: Vec<Keypair> = (1..=4).map(kp).collect();
        let script = ScriptPubKey::multisig(4, ks.iter().map(|k| k.pk).collect());
        let h = [1u8; 32];
        let wit: Vec<_> = ks.iter().map(|k| k.sign(&h)).collect();
        assert!(script.verify_witness(&h, &wit));
        assert!(!script.verify_witness(&h, &wit[..3]));
    }

    #[test]
    #[should_panic(expected = "invalid threshold")]
    fn zero_threshold_rejected() {
        let _ = ScriptPubKey::multisig(0, vec![kp(1).pk]);
    }

    #[test]
    #[should_panic(expected = "duplicate committee key")]
    fn duplicate_keys_rejected() {
        let k = kp(1);
        let _ = ScriptPubKey::multisig(1, vec![k.pk, k.pk]);
    }

    #[test]
    fn codec_roundtrip() {
        let script = ScriptPubKey::multisig(2, vec![kp(1).pk, kp(2).pk, kp(3).pk]);
        let decoded = ScriptPubKey::decode_exact(&script.encode_to_vec()).unwrap();
        assert_eq!(decoded, script);
    }
}
