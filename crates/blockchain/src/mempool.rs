//! The pending-transaction pool, including the adversarial write-delay
//! policies that break synchronous-access payment networks.
//!
//! The paper's core observation (§2.2) is that blockchains provide only
//! best-effort write latency: spam floods, fee spikes and miner censorship
//! can delay a transaction beyond any bound τ. [`AdversaryPolicy`] models
//! exactly that capability so the evaluation can demonstrate the attack
//! against the Lightning baseline and its irrelevance to Teechain.

use crate::tx::{Transaction, TxId};
use std::collections::HashSet;

/// How the (adversarial) miner treats submitted transactions.
#[derive(Debug, Clone, Default)]
pub enum AdversaryPolicy {
    /// Transactions are mined in the next block.
    #[default]
    Honest,
    /// Every transaction waits `blocks` blocks before becoming eligible
    /// (congestion / fee-spike model).
    DelayAll {
        /// Number of blocks each transaction is stalled.
        blocks: u64,
    },
    /// Specific transactions are never mined while this policy is active
    /// (targeted censorship, e.g. of a Lightning justice transaction).
    Censor {
        /// The victim transactions.
        targets: HashSet<TxId>,
    },
    /// Specific transactions are stalled for `blocks` blocks.
    DelayTargets {
        /// The victim transactions.
        targets: HashSet<TxId>,
        /// The stall length.
        blocks: u64,
    },
}

fn eligible(policy: &AdversaryPolicy, p: &PendingTx, height: u64) -> bool {
    match policy {
        AdversaryPolicy::Honest => true,
        AdversaryPolicy::DelayAll { blocks } => height >= p.submitted_at + blocks,
        AdversaryPolicy::Censor { targets } => !targets.contains(&p.txid),
        AdversaryPolicy::DelayTargets { targets, blocks } => {
            !targets.contains(&p.txid) || height >= p.submitted_at + blocks
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct PendingTx {
    pub tx: Transaction,
    pub txid: TxId,
    pub submitted_at: u64,
}

/// The pool of transactions awaiting confirmation.
#[derive(Debug, Default)]
pub struct Mempool {
    pending: Vec<PendingTx>,
    policy: AdversaryPolicy,
}

impl Mempool {
    /// Installs an adversary policy.
    pub fn set_policy(&mut self, policy: AdversaryPolicy) {
        self.policy = policy;
    }

    /// The current policy.
    pub fn policy(&self) -> &AdversaryPolicy {
        &self.policy
    }

    /// True if a pending transaction conflicts with `tx`. Transactions
    /// the adversary is actively suppressing do not count: a censoring
    /// miner will happily accept a conflicting transaction over the one
    /// it is censoring (this is what makes the delay attack profitable).
    pub fn has_conflict(&self, tx: &Transaction) -> bool {
        self.pending
            .iter()
            .filter(|p| !self.suppressed(&p.txid))
            .any(|p| p.tx.conflicts_with(tx))
    }

    fn suppressed(&self, txid: &TxId) -> bool {
        match &self.policy {
            AdversaryPolicy::Censor { targets } | AdversaryPolicy::DelayTargets { targets, .. } => {
                targets.contains(txid)
            }
            _ => false,
        }
    }

    /// True if `txid` is waiting in the pool.
    pub fn contains(&self, txid: &TxId) -> bool {
        self.pending.iter().any(|p| p.txid == *txid)
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no transactions are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    pub(crate) fn insert(&mut self, tx: Transaction, height: u64) -> TxId {
        let txid = tx.txid();
        self.pending.push(PendingTx {
            tx,
            txid,
            submitted_at: height,
        });
        txid
    }

    /// Removes and returns the transactions eligible for a block mined at
    /// `height`, in submission order.
    pub(crate) fn drain_eligible(&mut self, height: u64) -> Vec<Transaction> {
        let pending = std::mem::take(&mut self.pending);
        let mut taken = Vec::new();
        for p in pending {
            if eligible(&self.policy, &p, height) {
                taken.push(p.tx);
            } else {
                self.pending.push(p);
            }
        }
        taken
    }

    /// Drops pending transactions that conflict with `confirmed` (they can
    /// never be mined once a conflicting spend is on chain).
    pub(crate) fn evict_conflicts(&mut self, confirmed: &Transaction) -> Vec<TxId> {
        let mut evicted = Vec::new();
        self.pending.retain(|p| {
            if p.tx.conflicts_with(confirmed) {
                evicted.push(p.txid);
                false
            } else {
                true
            }
        });
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::ScriptPubKey;
    use crate::tx::{OutPoint, TxIn, TxOut};
    use teechain_crypto::schnorr::Keypair;

    fn tx(input_tag: u8, value: u64) -> Transaction {
        Transaction {
            inputs: vec![TxIn::spend(OutPoint {
                txid: TxId([input_tag; 32]),
                vout: 0,
            })],
            outputs: vec![TxOut {
                value,
                script: ScriptPubKey::P2pk(Keypair::from_seed(&[1; 32]).pk),
            }],
        }
    }

    #[test]
    fn honest_drains_everything() {
        let mut m = Mempool::default();
        m.insert(tx(1, 1), 0);
        m.insert(tx(2, 2), 0);
        assert_eq!(m.drain_eligible(1).len(), 2);
        assert!(m.is_empty());
    }

    #[test]
    fn delay_all_stalls() {
        let mut m = Mempool::default();
        m.set_policy(AdversaryPolicy::DelayAll { blocks: 3 });
        m.insert(tx(1, 1), 5);
        assert!(m.drain_eligible(6).is_empty());
        assert!(m.drain_eligible(7).is_empty());
        assert_eq!(m.drain_eligible(8).len(), 1);
    }

    #[test]
    fn censorship_is_indefinite_and_targeted() {
        let mut m = Mempool::default();
        let victim = tx(1, 1);
        let vid = victim.txid();
        m.set_policy(AdversaryPolicy::Censor {
            targets: [vid].into(),
        });
        m.insert(victim, 0);
        m.insert(tx(2, 2), 0);
        let mined = m.drain_eligible(1000);
        assert_eq!(mined.len(), 1);
        assert!(m.contains(&vid));
    }

    #[test]
    fn conflict_eviction() {
        let mut m = Mempool::default();
        let a = tx(1, 1);
        let mut b = tx(1, 2); // spends the same outpoint as a
        b.outputs[0].value = 2;
        let bid = m.insert(b, 0);
        let evicted = m.evict_conflicts(&a);
        assert_eq!(evicted, vec![bid]);
        assert!(m.is_empty());
    }
}
