//! The chain state: blocks, the UTXO set, validation and mining.

use crate::block::Block;
use crate::mempool::{AdversaryPolicy, Mempool};
use crate::script::ScriptPubKey;
use crate::tx::{OutPoint, Transaction, TxId, TxOut};
use std::collections::{HashMap, HashSet};
use teechain_crypto::schnorr::PublicKey;

/// Stateless and stateful transaction validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Transaction has no inputs (only the genesis/mint path may).
    NoInputs,
    /// Transaction has no outputs.
    NoOutputs,
    /// An input references an unknown or already-spent output.
    UnknownInput(OutPoint),
    /// A timelocked output was spent before its delay elapsed.
    TimelockNotMet(OutPoint),
    /// The same outpoint appears twice within the transaction.
    DuplicateInput(OutPoint),
    /// Output value exceeds input value.
    OutputsExceedInputs {
        /// Total value consumed.
        input: u64,
        /// Total value created.
        output: u64,
    },
    /// A witness does not satisfy its output's script.
    BadWitness(OutPoint),
    /// Value arithmetic overflowed `u64`.
    ValueOverflow,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::NoInputs => write!(f, "transaction has no inputs"),
            ValidationError::NoOutputs => write!(f, "transaction has no outputs"),
            ValidationError::UnknownInput(op) => {
                write!(f, "unknown or spent input {}:{}", op.txid.short(), op.vout)
            }
            ValidationError::TimelockNotMet(op) => {
                write!(f, "timelock not met for {}:{}", op.txid.short(), op.vout)
            }
            ValidationError::DuplicateInput(op) => {
                write!(f, "duplicate input {}:{}", op.txid.short(), op.vout)
            }
            ValidationError::OutputsExceedInputs { input, output } => {
                write!(f, "outputs {output} exceed inputs {input}")
            }
            ValidationError::BadWitness(op) => {
                write!(
                    f,
                    "witness fails script for {}:{}",
                    op.txid.short(),
                    op.vout
                )
            }
            ValidationError::ValueOverflow => write!(f, "value overflow"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Submission failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The transaction is invalid against current chain state.
    Invalid(ValidationError),
    /// A pending mempool transaction already spends one of the inputs.
    MempoolConflict,
    /// The transaction is already pending or confirmed.
    Duplicate,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(e) => write!(f, "invalid transaction: {e}"),
            SubmitError::MempoolConflict => write!(f, "conflicts with pending transaction"),
            SubmitError::Duplicate => write!(f, "duplicate transaction"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A single-node simulated blockchain.
///
/// There is no proof of work and no reorgs: the simulation models an
/// abstract append-only ledger with adjustable *write latency* (via the
/// [`AdversaryPolicy`] on the mempool), which is the only property the
/// Teechain protocols interact with.
#[derive(Debug, Default)]
pub struct Chain {
    blocks: Vec<Block>,
    utxo: HashMap<OutPoint, (TxOut, u64)>,
    tx_index: HashMap<TxId, (u64, Transaction)>,
    spender: HashMap<OutPoint, TxId>,
    mempool: Mempool,
    total_minted: u64,
    total_fees: u64,
}

impl Chain {
    /// Creates an empty chain with an empty genesis block.
    pub fn new() -> Self {
        let mut chain = Chain::default();
        chain.push_block(vec![]);
        chain
    }

    /// Mints `value` directly to `script`, confirmed immediately in a fresh
    /// block. This is the test/benchmark faucet; it is the only way value
    /// enters the system.
    pub fn mint(&mut self, script: ScriptPubKey, value: u64) -> OutPoint {
        let tx = Transaction {
            inputs: vec![],
            outputs: vec![TxOut { value, script }],
        };
        let outpoint = tx.outpoint(0);
        self.total_minted += value;
        self.apply_tx(&tx);
        self.push_block(vec![tx]);
        outpoint
    }

    /// Convenience: mints a pay-to-public-key output.
    pub fn mint_p2pk(&mut self, pk: &PublicKey, value: u64) -> OutPoint {
        self.mint(ScriptPubKey::P2pk(*pk), value)
    }

    /// Validates `tx` against the current UTXO set.
    pub fn validate(&self, tx: &Transaction) -> Result<(), ValidationError> {
        if tx.inputs.is_empty() {
            return Err(ValidationError::NoInputs);
        }
        if tx.outputs.is_empty() {
            return Err(ValidationError::NoOutputs);
        }
        let mut seen = HashSet::new();
        let sighash = tx.sighash();
        let mut input_value: u64 = 0;
        for input in &tx.inputs {
            if !seen.insert(input.prevout) {
                return Err(ValidationError::DuplicateInput(input.prevout));
            }
            let (prev, created_at) = self
                .utxo
                .get(&input.prevout)
                .ok_or(ValidationError::UnknownInput(input.prevout))?;
            let confirmations = self.height().saturating_sub(*created_at) + 1;
            let timelocked = matches!(
                &prev.script,
                ScriptPubKey::Revocable { .. } | ScriptPubKey::Htlc { .. }
            );
            if !prev.script.verify_spend_at(
                &sighash,
                &input.witness,
                &input.preimage,
                confirmations,
            ) {
                // Distinguish "too early" from "bad signature" for
                // diagnosability: retry with no timelock.
                return if timelocked
                    && prev.script.verify_spend_at(
                        &sighash,
                        &input.witness,
                        &input.preimage,
                        u64::MAX,
                    ) {
                    Err(ValidationError::TimelockNotMet(input.prevout))
                } else {
                    Err(ValidationError::BadWitness(input.prevout))
                };
            }
            input_value = input_value
                .checked_add(prev.value)
                .ok_or(ValidationError::ValueOverflow)?;
        }
        let mut output_value: u64 = 0;
        for out in &tx.outputs {
            output_value = output_value
                .checked_add(out.value)
                .ok_or(ValidationError::ValueOverflow)?;
        }
        if output_value > input_value {
            return Err(ValidationError::OutputsExceedInputs {
                input: input_value,
                output: output_value,
            });
        }
        Ok(())
    }

    /// Submits a transaction to the mempool. Validation happens now (against
    /// confirmed state) and again at mining time.
    pub fn submit(&mut self, tx: Transaction) -> Result<TxId, SubmitError> {
        let txid = tx.txid();
        if self.tx_index.contains_key(&txid) || self.mempool.contains(&txid) {
            return Err(SubmitError::Duplicate);
        }
        self.validate(&tx).map_err(SubmitError::Invalid)?;
        if self.mempool.has_conflict(&tx) {
            return Err(SubmitError::MempoolConflict);
        }
        Ok(self.mempool.insert(tx, self.height()))
    }

    /// Mines one block from eligible mempool transactions. Transactions that
    /// became invalid (e.g. their inputs were spent by an earlier tx in the
    /// same block) are silently dropped, as a real miner would.
    pub fn mine_block(&mut self) -> &Block {
        let height = self.height() + 1;
        let candidates = self.mempool.drain_eligible(height);
        let mut included = Vec::new();
        for tx in candidates {
            if self.validate(&tx).is_ok() {
                self.apply_tx(&tx);
                self.mempool.evict_conflicts(&tx);
                included.push(tx);
            }
        }
        self.push_block(included);
        self.blocks.last().expect("just pushed")
    }

    /// Mines `k` blocks.
    pub fn mine_blocks(&mut self, k: u64) {
        for _ in 0..k {
            self.mine_block();
        }
    }

    fn apply_tx(&mut self, tx: &Transaction) {
        let txid = tx.txid();
        let mut input_value = 0u64;
        for input in &tx.inputs {
            if let Some((prev, _)) = self.utxo.remove(&input.prevout) {
                input_value += prev.value;
            }
            self.spender.insert(input.prevout, txid);
        }
        let height = self.blocks.len() as u64;
        let mut output_value = 0u64;
        for (vout, out) in tx.outputs.iter().enumerate() {
            self.utxo.insert(
                OutPoint {
                    txid,
                    vout: vout as u32,
                },
                (out.clone(), height),
            );
            output_value += out.value;
        }
        if !tx.inputs.is_empty() {
            self.total_fees += input_value - output_value;
        }
    }

    fn push_block(&mut self, txs: Vec<Transaction>) {
        let height = self.blocks.len() as u64;
        let prev = self.blocks.last().map(|b| b.hash()).unwrap_or([0; 32]);
        for tx in &txs {
            self.tx_index.insert(tx.txid(), (height, tx.clone()));
        }
        self.blocks.push(Block { height, prev, txs });
    }

    /// Current tip height.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64 - 1
    }

    /// Number of confirmations of `txid` (0 if unconfirmed).
    pub fn confirmations(&self, txid: &TxId) -> u64 {
        match self.tx_index.get(txid) {
            Some((h, _)) => self.height() - h + 1,
            None => 0,
        }
    }

    /// Looks up a confirmed transaction.
    pub fn get_tx(&self, txid: &TxId) -> Option<&Transaction> {
        self.tx_index.get(txid).map(|(_, tx)| tx)
    }

    /// Looks up an unspent output.
    pub fn utxo(&self, outpoint: &OutPoint) -> Option<&TxOut> {
        self.utxo.get(outpoint).map(|(o, _)| o)
    }

    /// Confirmations of the block that created an unspent output.
    pub fn utxo_confirmations(&self, outpoint: &OutPoint) -> Option<u64> {
        self.utxo
            .get(outpoint)
            .map(|(_, h)| self.height().saturating_sub(*h) + 1)
    }

    /// Finds an unspent output locking exactly `value` under `script`,
    /// lowest outpoint first (deterministic under rescans). This is the
    /// wallet-rescan primitive: a host that crashed after funding an
    /// HTLC re-discovers its own lock instead of minting a second one.
    pub fn find_utxo_by_script(&self, script: &ScriptPubKey, value: u64) -> Option<OutPoint> {
        self.utxo
            .iter()
            .filter(|(_, (o, _))| o.value == value && o.script == *script)
            .map(|(op, _)| *op)
            .min()
    }

    /// Returns the confirmed transaction that spent `outpoint`, if any.
    /// This is how a Teechain participant discovers a settlement placed by
    /// a counterparty and obtains a proof of premature termination (§5.1).
    pub fn find_spender(&self, outpoint: &OutPoint) -> Option<&Transaction> {
        let txid = self.spender.get(outpoint)?;
        self.get_tx(txid)
    }

    /// Total value of unspent P2PK outputs controlled by `pk` — the
    /// "balance on the ledger" `L_t(u)` from the balance-correctness
    /// definition (Appendix A.1).
    pub fn balance_p2pk(&self, pk: &PublicKey) -> u64 {
        self.utxo
            .values()
            .filter(|(o, _)| matches!(&o.script, ScriptPubKey::P2pk(k) if k == pk))
            .map(|(o, _)| o.value)
            .sum()
    }

    /// Sum of all unspent outputs.
    pub fn utxo_total(&self) -> u64 {
        self.utxo.values().map(|(o, _)| o.value).sum()
    }

    /// Total value ever minted.
    pub fn total_minted(&self) -> u64 {
        self.total_minted
    }

    /// Total fees burned by confirmed transactions.
    pub fn total_fees(&self) -> u64 {
        self.total_fees
    }

    /// Installs an adversarial mining policy.
    pub fn set_policy(&mut self, policy: AdversaryPolicy) {
        self.mempool.set_policy(policy);
    }

    /// Number of transactions waiting in the mempool.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// All blocks (read-only).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Count of confirmed non-mint transactions and their §7.5 cost — used
    /// by the Table 4 experiment to measure Teechain's on-chain footprint.
    pub fn confirmed_footprint(&self) -> (usize, f64) {
        let mut count = 0usize;
        let mut cost = 0f64;
        for block in &self.blocks {
            for tx in &block.txs {
                if !tx.inputs.is_empty() {
                    count += 1;
                    cost += crate::cost::tx_cost(tx);
                }
            }
        }
        (count, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxIn;
    use teechain_crypto::schnorr::Keypair;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    fn spend(
        chain: &Chain,
        from: OutPoint,
        key: &Keypair,
        to: &PublicKey,
        value: u64,
    ) -> Transaction {
        let _ = chain;
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(from)],
            outputs: vec![TxOut {
                value,
                script: ScriptPubKey::P2pk(*to),
            }],
        };
        tx.sign_input(0, &key.sk);
        tx
    }

    #[test]
    fn mint_and_spend() {
        let mut chain = Chain::new();
        let alice = kp(1);
        let bob = kp(2);
        let op = chain.mint_p2pk(&alice.pk, 100);
        assert_eq!(chain.balance_p2pk(&alice.pk), 100);
        let tx = spend(&chain, op, &alice, &bob.pk, 90);
        let txid = chain.submit(tx).unwrap();
        assert_eq!(chain.confirmations(&txid), 0);
        chain.mine_block();
        assert_eq!(chain.confirmations(&txid), 1);
        chain.mine_blocks(5);
        assert_eq!(chain.confirmations(&txid), 6);
        assert_eq!(chain.balance_p2pk(&bob.pk), 90);
        assert_eq!(chain.balance_p2pk(&alice.pk), 0);
        assert_eq!(chain.total_fees(), 10);
    }

    #[test]
    fn double_spend_rejected_in_mempool() {
        let mut chain = Chain::new();
        let alice = kp(1);
        let op = chain.mint_p2pk(&alice.pk, 100);
        let tx1 = spend(&chain, op, &alice, &kp(2).pk, 100);
        let tx2 = spend(&chain, op, &alice, &kp(3).pk, 100);
        chain.submit(tx1).unwrap();
        assert_eq!(chain.submit(tx2), Err(SubmitError::MempoolConflict));
    }

    #[test]
    fn double_spend_rejected_after_confirmation() {
        let mut chain = Chain::new();
        let alice = kp(1);
        let op = chain.mint_p2pk(&alice.pk, 100);
        let tx1 = spend(&chain, op, &alice, &kp(2).pk, 100);
        let tx2 = spend(&chain, op, &alice, &kp(3).pk, 100);
        chain.submit(tx1).unwrap();
        chain.mine_block();
        match chain.submit(tx2) {
            Err(SubmitError::Invalid(ValidationError::UnknownInput(_))) => {}
            other => panic!("expected unknown input, got {other:?}"),
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let mut chain = Chain::new();
        let alice = kp(1);
        let mallory = kp(9);
        let op = chain.mint_p2pk(&alice.pk, 100);
        let tx = spend(&chain, op, &mallory, &mallory.pk, 100);
        match chain.submit(tx) {
            Err(SubmitError::Invalid(ValidationError::BadWitness(_))) => {}
            other => panic!("expected bad witness, got {other:?}"),
        }
    }

    #[test]
    fn overspend_rejected() {
        let mut chain = Chain::new();
        let alice = kp(1);
        let op = chain.mint_p2pk(&alice.pk, 100);
        let tx = spend(&chain, op, &alice, &kp(2).pk, 101);
        assert!(matches!(
            chain.submit(tx),
            Err(SubmitError::Invalid(
                ValidationError::OutputsExceedInputs { .. }
            ))
        ));
    }

    #[test]
    fn duplicate_input_rejected() {
        let mut chain = Chain::new();
        let alice = kp(1);
        let op = chain.mint_p2pk(&alice.pk, 100);
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(op), TxIn::spend(op)],
            outputs: vec![TxOut {
                value: 150,
                script: ScriptPubKey::P2pk(kp(2).pk),
            }],
        };
        tx.sign_all_inputs(&alice.sk);
        assert!(matches!(
            chain.submit(tx),
            Err(SubmitError::Invalid(ValidationError::DuplicateInput(_)))
        ));
    }

    #[test]
    fn multisig_deposit_spend() {
        let mut chain = Chain::new();
        let committee: Vec<Keypair> = (1..=4).map(kp).collect();
        let script = ScriptPubKey::multisig(2, committee.iter().map(|k| k.pk).collect());
        let op = chain.mint(script, 1000);
        // Spend with 2 of 4 signatures.
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(op)],
            outputs: vec![TxOut {
                value: 1000,
                script: ScriptPubKey::P2pk(kp(7).pk),
            }],
        };
        tx.sign_input(0, &committee[1].sk);
        tx.sign_input(0, &committee[3].sk);
        chain.submit(tx).unwrap();
        chain.mine_block();
        assert_eq!(chain.balance_p2pk(&kp(7).pk), 1000);
    }

    #[test]
    fn multisig_below_threshold_rejected() {
        let mut chain = Chain::new();
        let committee: Vec<Keypair> = (1..=3).map(kp).collect();
        let script = ScriptPubKey::multisig(2, committee.iter().map(|k| k.pk).collect());
        let op = chain.mint(script, 1000);
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(op)],
            outputs: vec![TxOut {
                value: 1000,
                script: ScriptPubKey::P2pk(kp(7).pk),
            }],
        };
        tx.sign_input(0, &committee[0].sk);
        assert!(matches!(
            chain.submit(tx),
            Err(SubmitError::Invalid(ValidationError::BadWitness(_)))
        ));
    }

    #[test]
    fn find_spender_returns_conflicting_settlement() {
        let mut chain = Chain::new();
        let alice = kp(1);
        let op = chain.mint_p2pk(&alice.pk, 100);
        let tx = spend(&chain, op, &alice, &kp(2).pk, 100);
        let txid = chain.submit(tx).unwrap();
        chain.mine_block();
        assert_eq!(chain.find_spender(&op).unwrap().txid(), txid);
        let other = OutPoint {
            txid: TxId([9; 32]),
            vout: 0,
        };
        assert!(chain.find_spender(&other).is_none());
    }

    #[test]
    fn censored_tx_stays_pending() {
        let mut chain = Chain::new();
        let alice = kp(1);
        let op = chain.mint_p2pk(&alice.pk, 100);
        let tx = spend(&chain, op, &alice, &kp(2).pk, 100);
        let txid = tx.txid();
        chain.set_policy(AdversaryPolicy::Censor {
            targets: [txid].into(),
        });
        chain.submit(tx).unwrap();
        chain.mine_blocks(100);
        assert_eq!(chain.confirmations(&txid), 0);
        assert_eq!(chain.mempool_len(), 1);
    }

    fn htlc_script(secret: &[u8], claim: &Keypair, refund: &Keypair, timeout: u64) -> ScriptPubKey {
        ScriptPubKey::Htlc {
            hash: teechain_crypto::sha256::sha256(secret),
            claim_key: claim.pk,
            refund_key: refund.pk,
            timeout_blocks: timeout,
        }
    }

    fn htlc_spend(from: OutPoint, key: &Keypair, preimage: &[u8], value: u64) -> Transaction {
        let mut input = TxIn::spend(from);
        input.preimage = preimage.to_vec();
        let mut tx = Transaction {
            inputs: vec![input],
            outputs: vec![TxOut {
                value,
                script: ScriptPubKey::P2pk(key.pk),
            }],
        };
        tx.sign_input(0, &key.sk);
        tx
    }

    #[test]
    fn htlc_claim_with_preimage() {
        let mut chain = Chain::new();
        let (claim, refund) = (kp(1), kp(2));
        let op = chain.mint(htlc_script(b"swap-secret", &claim, &refund, 10), 500);
        let tx = htlc_spend(op, &claim, b"swap-secret", 500);
        chain.submit(tx).unwrap();
        chain.mine_block();
        assert_eq!(chain.balance_p2pk(&claim.pk), 500);
        // The confirmed spender carries the revealed preimage: this is how
        // a swap counterparty learns the secret from the chain.
        let spender = chain.find_spender(&op).unwrap();
        assert_eq!(spender.inputs[0].preimage, b"swap-secret".to_vec());
    }

    #[test]
    fn htlc_wrong_preimage_rejected() {
        let mut chain = Chain::new();
        let (claim, refund) = (kp(1), kp(2));
        let op = chain.mint(htlc_script(b"swap-secret", &claim, &refund, 10), 500);
        let tx = htlc_spend(op, &claim, b"not-the-secret", 500);
        assert!(matches!(
            chain.submit(tx),
            Err(SubmitError::Invalid(ValidationError::BadWitness(_)))
        ));
    }

    #[test]
    fn htlc_refund_respects_timeout() {
        let mut chain = Chain::new();
        let (claim, refund) = (kp(1), kp(2));
        let op = chain.mint(htlc_script(b"swap-secret", &claim, &refund, 5), 500);
        // Refund before the timelock matures is "too early", not "bad sig".
        let early = htlc_spend(op, &refund, &[], 500);
        assert!(matches!(
            chain.submit(early.clone()),
            Err(SubmitError::Invalid(ValidationError::TimelockNotMet(_)))
        ));
        chain.mine_blocks(5);
        chain.submit(early).unwrap();
        chain.mine_block();
        assert_eq!(chain.balance_p2pk(&refund.pk), 500);
    }

    #[test]
    fn value_conservation() {
        let mut chain = Chain::new();
        let alice = kp(1);
        let op = chain.mint_p2pk(&alice.pk, 100);
        let tx = spend(&chain, op, &alice, &kp(2).pk, 60);
        chain.submit(tx).unwrap();
        chain.mine_block();
        assert_eq!(
            chain.utxo_total() + chain.total_fees(),
            chain.total_minted()
        );
    }

    #[test]
    fn mempool_conflict_dropped_at_mining() {
        // Two conflicting txs can both enter if the second is submitted
        // after the first confirms is impossible; but a conflict can arise
        // inside one block when the policy delays differently. Simulate by
        // inserting directly.
        let mut chain = Chain::new();
        let alice = kp(1);
        let op = chain.mint_p2pk(&alice.pk, 100);
        let tx1 = spend(&chain, op, &alice, &kp(2).pk, 100);
        chain.submit(tx1.clone()).unwrap();
        chain.mine_block();
        // tx1 confirmed; a conflicting submission is invalid.
        let tx2 = spend(&chain, op, &alice, &kp(3).pk, 100);
        assert!(chain.submit(tx2).is_err());
        assert_eq!(chain.balance_p2pk(&kp(2).pk), 100);
    }
}
