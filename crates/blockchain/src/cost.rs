//! The blockchain-cost metric of §7.5.
//!
//! The paper abstracts from any particular blockchain and "approximate\[s\]
//! cost by counting the pairs of public keys and signatures that must be
//! placed onto the blockchain: a cost of 1 means one public key and one
//! signature". A transaction's cost is therefore
//! `(public keys placed + signatures placed) / 2`.

use crate::tx::Transaction;

/// Number of public keys a transaction places on the chain (in its output
/// scripts: one for pay-to-public-key, `n` for m-of-n multisig).
pub fn pubkeys_placed(tx: &Transaction) -> usize {
    tx.outputs.iter().map(|o| o.script.pubkey_count()).sum()
}

/// Number of signatures a transaction places on the chain (its witnesses).
pub fn signatures_placed(tx: &Transaction) -> usize {
    tx.inputs.iter().map(|i| i.witness.len()).sum()
}

/// The §7.5 cost of one transaction.
pub fn tx_cost(tx: &Transaction) -> f64 {
    (pubkeys_placed(tx) + signatures_placed(tx)) as f64 / 2.0
}

/// The aggregate (transaction count, cost) of a set of transactions.
pub fn footprint<'a>(txs: impl IntoIterator<Item = &'a Transaction>) -> (usize, f64) {
    let mut count = 0;
    let mut cost = 0.0;
    for tx in txs {
        count += 1;
        cost += tx_cost(tx);
    }
    (count, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::ScriptPubKey;
    use crate::tx::{OutPoint, TxId, TxIn, TxOut};
    use teechain_crypto::schnorr::Keypair;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    #[test]
    fn p2pk_spend_costs_one() {
        // One signature in, one pubkey out: cost (1+1)/2 = 1.
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(OutPoint {
                txid: TxId([1; 32]),
                vout: 0,
            })],
            outputs: vec![TxOut {
                value: 5,
                script: ScriptPubKey::P2pk(kp(1).pk),
            }],
        };
        tx.sign_input(0, &kp(2).sk);
        assert_eq!(tx_cost(&tx), 1.0);
    }

    #[test]
    fn deposit_cost_matches_paper_formula() {
        // A Teechain funding deposit into an m-of-n address: one signature
        // and one pubkey to spend in (1), plus n committee pubkeys (n/2).
        // Paper (§7.5): cost = 1 + n/2.
        for n in 1..=4u8 {
            let committee: Vec<_> = (1..=n).map(|i| kp(i).pk).collect();
            let mut tx = Transaction {
                inputs: vec![TxIn::spend(OutPoint {
                    txid: TxId([1; 32]),
                    vout: 0,
                })],
                outputs: vec![TxOut {
                    value: 5,
                    // The change output is omitted in the paper's accounting;
                    // we also count only the multisig output here. The "1"
                    // in the formula is the spending (sig, pubkey) pair: the
                    // signature below plus the P2PK pubkey of the *source*
                    // output, which the source tx already placed. To match
                    // the paper we count sig=1 here, pubkey=1 attributed.
                    script: ScriptPubKey::multisig(1, committee.clone()),
                }],
            };
            tx.sign_input(0, &kp(9).sk);
            // tx places n pubkeys + 1 sig => (n+1)/2; the paper's extra 1/2
            // (the source pubkey) lives in the funding tx. The analytic
            // Table 4 model in `teechain-baselines` accounts for it.
            assert_eq!(tx_cost(&tx), (n as f64 + 1.0) / 2.0);
        }
    }

    #[test]
    fn footprint_sums() {
        let mk = |v: u64| Transaction {
            inputs: vec![],
            outputs: vec![TxOut {
                value: v,
                script: ScriptPubKey::P2pk(kp(1).pk),
            }],
        };
        let txs = [mk(1), mk(2)];
        let (count, cost) = footprint(txs.iter());
        assert_eq!(count, 2);
        assert_eq!(cost, 1.0); // Two pubkeys, zero signatures.
    }
}
