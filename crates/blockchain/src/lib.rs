#![warn(missing_docs)]

//! A simulated Bitcoin-like blockchain for the Teechain reproduction.
//!
//! Teechain requires only *asynchronous* access to an append-only ledger
//! with (i) a UTXO model, (ii) m-of-n multisignature outputs and
//! (iii) conflict (double-spend) rejection. This crate provides exactly
//! that, plus the pieces the evaluation needs:
//!
//! * [`tx`] — transactions, signature hashes, witness verification.
//! * [`script`] — output conditions (pay-to-public-key and m-of-n multisig).
//! * [`block`], [`chain`] — blocks, the UTXO set, validation and mining.
//! * [`mempool`] — pending transactions with an *adversarial* policy that
//!   can delay or censor transactions, modelling the write-latency attacks
//!   ([54, 58, 27, 29, 16, 28] in the paper) that motivate asynchronous
//!   blockchain access.
//! * [`cost`] — the §7.5 blockchain-cost metric (public-key/signature pairs).

pub mod block;
pub mod chain;
pub mod cost;
pub mod mempool;
pub mod script;
pub mod tx;

pub use block::Block;
pub use chain::{Chain, SubmitError, ValidationError};
pub use mempool::AdversaryPolicy;
pub use script::ScriptPubKey;
pub use tx::{OutPoint, Transaction, TxId, TxIn, TxOut};
