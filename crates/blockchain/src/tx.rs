//! Transactions: inputs, outputs, identifiers, signature hashes.

use crate::script::ScriptPubKey;
use teechain_crypto::schnorr::{sign, PrivateKey, Signature};
use teechain_crypto::sha256::sha256;
use teechain_util::codec::{Decode, Encode, Reader, WireError};
use teechain_util::hex;

/// A transaction identifier: the SHA-256 of the transaction with witnesses
/// stripped (so the id commits to *what* is spent and created, and signing
/// the id preimage cannot be circular).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub [u8; 32]);

impl TxId {
    /// Short printable form (first 8 hex digits).
    pub fn short(&self) -> String {
        hex::encode(&self.0[..4])
    }
}

impl std::fmt::Display for TxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", hex::encode(&self.0))
    }
}

impl Encode for TxId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for TxId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TxId(r.read()?))
    }
}

/// A reference to a transaction output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutPoint {
    /// The funding transaction.
    pub txid: TxId,
    /// Output index within that transaction.
    pub vout: u32,
}

teechain_util::impl_wire_struct!(OutPoint { txid, vout });

/// A transaction output: an amount locked under a spending condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxOut {
    /// Amount in base units ("satoshis").
    pub value: u64,
    /// The spending condition.
    pub script: ScriptPubKey,
}

teechain_util::impl_wire_struct!(TxOut { value, script });

/// A transaction input: an outpoint plus the witness satisfying its script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxIn {
    /// The output being spent.
    pub prevout: OutPoint,
    /// Signatures over the transaction's sighash.
    pub witness: Vec<Signature>,
    /// Hashlock preimage for [`ScriptPubKey::Htlc`] claim spends; empty for
    /// every other script. Stripped (like witnesses) from the txid/sighash
    /// preimage, so signing and preimage attachment commute.
    pub preimage: Vec<u8>,
}

impl TxIn {
    /// An input spending `prevout` with no witness or preimage attached yet.
    pub fn spend(prevout: OutPoint) -> Self {
        TxIn {
            prevout,
            witness: Vec::new(),
            preimage: Vec::new(),
        }
    }
}

teechain_util::impl_wire_struct!(TxIn {
    prevout,
    witness,
    preimage
});

/// A transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Spent outputs with witnesses. Empty for the genesis transaction.
    pub inputs: Vec<TxIn>,
    /// Created outputs.
    pub outputs: Vec<TxOut>,
}

teechain_util::impl_wire_struct!(Transaction { inputs, outputs });

impl Transaction {
    /// Serializes the transaction with witnesses stripped. This is both the
    /// txid preimage and the message every input signs.
    fn strip_witnesses(&self) -> Vec<u8> {
        let mut stripped = self.clone();
        for input in &mut stripped.inputs {
            input.witness.clear();
            input.preimage.clear();
        }
        stripped.encode_to_vec()
    }

    /// The transaction identifier.
    pub fn txid(&self) -> TxId {
        TxId(sha256(&self.strip_witnesses()))
    }

    /// The digest that each input's witness signs.
    pub fn sighash(&self) -> [u8; 32] {
        // The txid already commits to all inputs and outputs.
        self.txid().0
    }

    /// Appends a signature from `key` to input `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn sign_input(&mut self, index: usize, key: &PrivateKey) {
        let digest = self.sighash();
        self.inputs[index].witness.push(sign(key, &digest));
    }

    /// Appends a signature from `key` to every input (the common case for
    /// Teechain settlement transactions, where one enclave holds all keys).
    pub fn sign_all_inputs(&mut self, key: &PrivateKey) {
        let digest = self.sighash();
        let sig = sign(key, &digest);
        for input in &mut self.inputs {
            input.witness.push(sig);
        }
    }

    /// The outpoint of output `vout` of this transaction.
    pub fn outpoint(&self, vout: u32) -> OutPoint {
        OutPoint {
            txid: self.txid(),
            vout,
        }
    }

    /// Total value of all outputs.
    pub fn output_value(&self) -> u64 {
        self.outputs.iter().map(|o| o.value).sum()
    }

    /// True if this transaction spends `outpoint`.
    pub fn spends(&self, outpoint: &OutPoint) -> bool {
        self.inputs.iter().any(|i| i.prevout == *outpoint)
    }

    /// True if the two transactions conflict (spend at least one common
    /// outpoint) — the mechanism behind the paper's proofs of premature
    /// termination (§5.1, "Enforcing transaction conflicts").
    pub fn conflicts_with(&self, other: &Transaction) -> bool {
        self.inputs.iter().any(|i| other.spends(&i.prevout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_crypto::schnorr::Keypair;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    fn dummy_outpoint(n: u8) -> OutPoint {
        OutPoint {
            txid: TxId([n; 32]),
            vout: 0,
        }
    }

    fn p2pk_out(value: u64, seed: u8) -> TxOut {
        TxOut {
            value,
            script: ScriptPubKey::P2pk(kp(seed).pk),
        }
    }

    #[test]
    fn txid_ignores_witness() {
        let k = kp(1);
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(dummy_outpoint(1))],
            outputs: vec![p2pk_out(50, 2)],
        };
        let before = tx.txid();
        tx.sign_input(0, &k.sk);
        assert_eq!(tx.txid(), before);
    }

    #[test]
    fn txid_commits_to_inputs_and_outputs() {
        let base = Transaction {
            inputs: vec![TxIn::spend(dummy_outpoint(1))],
            outputs: vec![p2pk_out(50, 2)],
        };
        let mut other_input = base.clone();
        other_input.inputs[0].prevout = dummy_outpoint(2);
        assert_ne!(base.txid(), other_input.txid());
        let mut other_value = base.clone();
        other_value.outputs[0].value = 51;
        assert_ne!(base.txid(), other_value.txid());
    }

    #[test]
    fn signature_satisfies_script() {
        let k = kp(3);
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(dummy_outpoint(1))],
            outputs: vec![p2pk_out(10, 4)],
        };
        tx.sign_input(0, &k.sk);
        let script = ScriptPubKey::P2pk(k.pk);
        assert!(script.verify_witness(&tx.sighash(), &tx.inputs[0].witness));
    }

    #[test]
    fn conflict_detection() {
        let shared = dummy_outpoint(7);
        let a = Transaction {
            inputs: vec![TxIn::spend(shared)],
            outputs: vec![p2pk_out(1, 1)],
        };
        let b = Transaction {
            inputs: vec![TxIn::spend(dummy_outpoint(8)), TxIn::spend(shared)],
            outputs: vec![p2pk_out(2, 2)],
        };
        let c = Transaction {
            inputs: vec![TxIn::spend(dummy_outpoint(9))],
            outputs: vec![p2pk_out(3, 3)],
        };
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
        assert!(!a.conflicts_with(&c));
    }

    #[test]
    fn codec_roundtrip() {
        let k = kp(5);
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(dummy_outpoint(1))],
            outputs: vec![
                p2pk_out(10, 1),
                TxOut {
                    value: 20,
                    script: ScriptPubKey::multisig(2, vec![kp(1).pk, kp(2).pk, kp(3).pk]),
                },
            ],
        };
        tx.sign_input(0, &k.sk);
        let decoded = Transaction::decode_exact(&tx.encode_to_vec()).unwrap();
        assert_eq!(decoded, tx);
        assert_eq!(decoded.txid(), tx.txid());
    }

    #[test]
    fn sign_all_inputs_covers_every_input() {
        let k = kp(6);
        let mut tx = Transaction {
            inputs: vec![
                TxIn::spend(dummy_outpoint(1)),
                TxIn::spend(dummy_outpoint(2)),
            ],
            outputs: vec![p2pk_out(5, 1)],
        };
        tx.sign_all_inputs(&k.sk);
        let script = ScriptPubKey::P2pk(k.pk);
        for input in &tx.inputs {
            assert!(script.verify_witness(&tx.sighash(), &input.witness));
        }
    }
}
