//! Blocks: ordered batches of confirmed transactions.

use crate::tx::{Transaction, TxId};
use teechain_crypto::sha256::{sha256_concat, Sha256};
use teechain_util::codec::Encode;

/// A mined block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Height in the chain (genesis is 0).
    pub height: u64,
    /// Hash of the previous block (zero for genesis).
    pub prev: [u8; 32],
    /// Confirmed transactions, in order.
    pub txs: Vec<Transaction>,
}

impl Block {
    /// The block hash: commits to the height, predecessor and all txids.
    pub fn hash(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.height.to_le_bytes());
        h.update(&self.prev);
        for tx in &self.txs {
            h.update(&tx.txid().0);
        }
        h.finalize()
    }

    /// A Merkle-style digest over full transaction bytes (used only by
    /// tests asserting serialization stability).
    pub fn content_digest(&self) -> [u8; 32] {
        let encoded: Vec<Vec<u8>> = self.txs.iter().map(|t| t.encode_to_vec()).collect();
        let parts: Vec<&[u8]> = encoded.iter().map(|v| v.as_slice()).collect();
        sha256_concat(&parts)
    }

    /// The txids in this block.
    pub fn txids(&self) -> Vec<TxId> {
        self.txs.iter().map(|t| t.txid()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::ScriptPubKey;
    use crate::tx::TxOut;
    use teechain_crypto::schnorr::Keypair;

    fn block(height: u64, value: u64) -> Block {
        Block {
            height,
            prev: [0; 32],
            txs: vec![Transaction {
                inputs: vec![],
                outputs: vec![TxOut {
                    value,
                    script: ScriptPubKey::P2pk(Keypair::from_seed(&[1; 32]).pk),
                }],
            }],
        }
    }

    #[test]
    fn hash_commits_to_height() {
        assert_ne!(block(0, 5).hash(), block(1, 5).hash());
    }

    #[test]
    fn hash_commits_to_contents() {
        assert_ne!(block(0, 5).hash(), block(0, 6).hash());
    }

    #[test]
    fn txids_listed() {
        let b = block(0, 5);
        assert_eq!(b.txids(), vec![b.txs[0].txid()]);
    }
}
