//! secp256k1 group operations.
//!
//! Curve: `y² = x³ + 7` over `F_p`. Points are kept in Jacobian projective
//! coordinates for arithmetic (one field inversion per affine conversion)
//! and serialized uncompressed as `x || y` (64 bytes).

use crate::modarith::{fn_order, fp};
use crate::u256::U256;
use std::sync::OnceLock;

/// A point in Jacobian coordinates; `z == 0` encodes the point at infinity.
#[derive(Debug, Clone, Copy)]
pub struct Jacobian {
    x: U256,
    y: U256,
    z: U256,
}

/// A normalized affine point (never infinity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Affine {
    /// x coordinate.
    pub x: U256,
    /// y coordinate.
    pub y: U256,
}

/// The generator point G.
pub fn generator() -> Affine {
    Affine {
        x: U256::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"),
        y: U256::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"),
    }
}

impl Affine {
    /// Serializes as 64 bytes (`x || y`, big-endian).
    pub fn to_bytes(self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.x.to_be_bytes());
        out[32..].copy_from_slice(&self.y.to_be_bytes());
        out
    }

    /// Parses 64 bytes, validating that the point is on the curve.
    pub fn from_bytes(bytes: &[u8; 64]) -> Option<Affine> {
        let x = U256::from_be_bytes(&bytes[..32].try_into().unwrap());
        let y = U256::from_be_bytes(&bytes[32..].try_into().unwrap());
        let f = fp();
        if x >= f.m || y >= f.m {
            return None;
        }
        let p = Affine { x, y };
        p.is_on_curve().then_some(p)
    }

    /// Checks the curve equation `y² = x³ + 7`.
    pub fn is_on_curve(&self) -> bool {
        let f = fp();
        let y2 = f.square(&self.y);
        let x3 = f.mul(&f.square(&self.x), &self.x);
        y2 == f.add(&x3, &U256::from_u64(7))
    }

    /// Lifts to Jacobian coordinates.
    pub fn to_jacobian(self) -> Jacobian {
        Jacobian {
            x: self.x,
            y: self.y,
            z: U256::ONE,
        }
    }

    /// Point negation.
    #[allow(clippy::should_implement_trait)] // group-theory vocabulary; operands are &self elsewhere
    pub fn neg(self) -> Affine {
        Affine {
            x: self.x,
            y: fp().neg(&self.y),
        }
    }
}

impl Jacobian {
    /// The point at infinity (group identity).
    pub const INFINITY: Jacobian = Jacobian {
        x: U256::ONE,
        y: U256::ONE,
        z: U256::ZERO,
    };

    /// Returns true for the point at infinity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (`dbl-2007-bl` for a = 0).
    pub fn double(&self) -> Jacobian {
        if self.is_infinity() || self.y.is_zero() {
            return Jacobian::INFINITY;
        }
        let f = fp();
        let a = f.square(&self.x);
        let b = f.square(&self.y);
        let c = f.square(&b);
        // D = 2*((X+B)^2 - A - C)
        let xb = f.add(&self.x, &b);
        let d0 = f.sub(&f.sub(&f.square(&xb), &a), &c);
        let d = f.add(&d0, &d0);
        let e = f.add(&f.add(&a, &a), &a);
        let ff = f.square(&e);
        let x3 = f.sub(&ff, &f.add(&d, &d));
        let c8 = {
            let c2 = f.add(&c, &c);
            let c4 = f.add(&c2, &c2);
            f.add(&c4, &c4)
        };
        let y3 = f.sub(&f.mul(&e, &f.sub(&d, &x3)), &c8);
        let z3 = {
            let yz = f.mul(&self.y, &self.z);
            f.add(&yz, &yz)
        };
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General point addition.
    pub fn add(&self, other: &Jacobian) -> Jacobian {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let f = fp();
        let z1z1 = f.square(&self.z);
        let z2z2 = f.square(&other.z);
        let u1 = f.mul(&self.x, &z2z2);
        let u2 = f.mul(&other.x, &z1z1);
        let s1 = f.mul(&f.mul(&self.y, &other.z), &z2z2);
        let s2 = f.mul(&f.mul(&other.y, &self.z), &z1z1);
        if u1 == u2 {
            return if s1 == s2 {
                self.double()
            } else {
                Jacobian::INFINITY
            };
        }
        let h = f.sub(&u2, &u1);
        let hh = f.square(&h);
        let hhh = f.mul(&h, &hh);
        let v = f.mul(&u1, &hh);
        let r = f.sub(&s2, &s1);
        let x3 = f.sub(&f.sub(&f.square(&r), &hhh), &f.add(&v, &v));
        let y3 = f.sub(&f.mul(&r, &f.sub(&v, &x3)), &f.mul(&s1, &hhh));
        let z3 = f.mul(&f.mul(&self.z, &other.z), &h);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Adds an affine point (mixed addition via lifting; clarity over speed).
    pub fn add_affine(&self, other: &Affine) -> Jacobian {
        self.add(&other.to_jacobian())
    }

    /// Scalar multiplication with a 4-bit window.
    pub fn scalar_mul(&self, k: &U256) -> Jacobian {
        if k.is_zero() || self.is_infinity() {
            return Jacobian::INFINITY;
        }
        // Precompute 1P..15P.
        let mut table = [Jacobian::INFINITY; 16];
        table[1] = *self;
        for i in 2..16 {
            table[i] = table[i - 1].add(self);
        }
        let mut acc = Jacobian::INFINITY;
        for i in (0..64).rev() {
            if !acc.is_infinity() {
                acc = acc.double().double().double().double();
            }
            let nib = k.nibble(i) as usize;
            if nib != 0 {
                acc = acc.add(&table[nib]);
            }
        }
        acc
    }

    /// Converts to affine coordinates (`None` for infinity).
    pub fn to_affine(&self) -> Option<Affine> {
        if self.is_infinity() {
            return None;
        }
        let f = fp();
        let zinv = f.inv(&self.z);
        let zinv2 = f.square(&zinv);
        let zinv3 = f.mul(&zinv2, &zinv);
        Some(Affine {
            x: f.mul(&self.x, &zinv2),
            y: f.mul(&self.y, &zinv3),
        })
    }
}

/// Precomputed multiples of G: `TABLE[i][j-1] = j * 16^i * G`.
fn base_table() -> &'static Vec<[Jacobian; 15]> {
    static TABLE: OnceLock<Vec<[Jacobian; 15]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut rows = Vec::with_capacity(64);
        let mut base = generator().to_jacobian();
        for _ in 0..64 {
            let mut row = [Jacobian::INFINITY; 15];
            row[0] = base;
            for j in 1..15 {
                row[j] = row[j - 1].add(&base);
            }
            rows.push(row);
            base = base.double().double().double().double();
        }
        rows
    })
}

/// Fast fixed-base multiplication `k * G` using the precomputed table.
pub fn base_mul(k: &U256) -> Jacobian {
    let table = base_table();
    let mut acc = Jacobian::INFINITY;
    for (i, row) in table.iter().enumerate() {
        let nib = k.nibble(i) as usize;
        if nib != 0 {
            acc = acc.add(&row[nib - 1]);
        }
    }
    acc
}

/// Double-scalar multiplication `a*G + b*P` (the verifier hot path).
pub fn base_double_mul(a: &U256, b: &U256, p: &Affine) -> Jacobian {
    base_mul(a).add(&p.to_jacobian().scalar_mul(b))
}

/// The group order as a scalar-context convenience.
pub fn order() -> U256 {
    fn_order().m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn affine_hex(p: &Jacobian) -> (String, String) {
        let a = p.to_affine().unwrap();
        (a.x.to_hex(), a.y.to_hex())
    }

    #[test]
    fn generator_on_curve() {
        assert!(generator().is_on_curve());
    }

    #[test]
    fn known_multiples() {
        // Vectors computed with an independent Python implementation.
        let g = generator().to_jacobian();
        let (x2, y2) = affine_hex(&g.double());
        assert_eq!(
            x2,
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5"
        );
        assert_eq!(
            y2,
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a"
        );
        let (x3, y3) = affine_hex(&g.scalar_mul(&U256::from_u64(3)));
        assert_eq!(
            x3,
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9"
        );
        assert_eq!(
            y3,
            "388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672"
        );
        let (x7, _) = affine_hex(&g.scalar_mul(&U256::from_u64(7)));
        assert_eq!(
            x7,
            "5cbdf0646e5db4eaa398f365f2ea7a0e3d419b7e0330e39ce92bddedcac4f9bc"
        );
        let (xd, yd) = affine_hex(&g.scalar_mul(&U256::from_u64(0xdead_beef)));
        assert_eq!(
            xd,
            "76d2fdf1302d1fa9556f4df94ec84cefba6d482e54f47c6c2a238c1baa560f0e"
        );
        assert_eq!(
            yd,
            "b754ac7e7a3e09c44184cb451a4f5fb557f32053eb015dffebb655b5cfd54d8a"
        );
    }

    #[test]
    fn order_minus_one_is_negation() {
        let g = generator().to_jacobian();
        let nm1 = fn_order().sub(&U256::ZERO, &U256::ONE);
        let p = g.scalar_mul(&nm1).to_affine().unwrap();
        assert_eq!(p.x, generator().x);
        assert_eq!(p, generator().neg());
        // (n-1)G + G = infinity.
        assert!(g.scalar_mul(&nm1).add(&g).is_infinity());
    }

    #[test]
    fn base_mul_matches_generic() {
        for k in [1u64, 2, 3, 15, 16, 17, 255, 0xdead_beef] {
            let k = U256::from_u64(k);
            assert_eq!(
                base_mul(&k).to_affine(),
                generator().to_jacobian().scalar_mul(&k).to_affine()
            );
        }
        // A full-width scalar.
        let k = U256::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
        assert_eq!(
            base_mul(&k).to_affine(),
            generator().to_jacobian().scalar_mul(&k).to_affine()
        );
    }

    #[test]
    fn add_commutes_and_identity() {
        let g = generator().to_jacobian();
        let a = g.scalar_mul(&U256::from_u64(5));
        let b = g.scalar_mul(&U256::from_u64(11));
        assert_eq!(a.add(&b).to_affine(), b.add(&a).to_affine());
        assert_eq!(a.add(&Jacobian::INFINITY).to_affine(), a.to_affine());
        assert_eq!(Jacobian::INFINITY.add(&a).to_affine(), a.to_affine());
        // 5G + 11G = 16G.
        assert_eq!(
            a.add(&b).to_affine(),
            g.scalar_mul(&U256::from_u64(16)).to_affine()
        );
    }

    #[test]
    fn double_equals_add_self() {
        let p = generator().to_jacobian().scalar_mul(&U256::from_u64(9));
        assert_eq!(p.double().to_affine(), p.add(&p).to_affine());
    }

    #[test]
    fn serialization_roundtrip_and_validation() {
        let p = generator()
            .to_jacobian()
            .scalar_mul(&U256::from_u64(12345))
            .to_affine()
            .unwrap();
        let bytes = p.to_bytes();
        assert_eq!(Affine::from_bytes(&bytes), Some(p));
        // Corrupt a coordinate: the point leaves the curve.
        let mut bad = bytes;
        bad[5] ^= 1;
        assert_eq!(Affine::from_bytes(&bad), None);
    }

    #[test]
    fn scalar_mul_zero_is_infinity() {
        assert!(generator()
            .to_jacobian()
            .scalar_mul(&U256::ZERO)
            .is_infinity());
        assert!(base_mul(&U256::ZERO).is_infinity());
    }
}
