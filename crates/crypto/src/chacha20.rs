//! The ChaCha20 stream cipher (RFC 8439).

/// ChaCha20 keystream generator / XOR cipher.
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher instance for the given 256-bit key and 96-bit nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        let mut n = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            n[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self { key: k, nonce: n }
    }

    /// Produces the 64-byte keystream block for `counter`.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let init: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter,
            self.nonce[0],
            self.nonce[1],
            self.nonce[2],
        ];
        let mut s = init;
        for _ in 0..10 {
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for (i, chunk) in out.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&s[i].wrapping_add(init[i]).to_le_bytes());
        }
        out
    }

    /// XORs the keystream (starting at block `initial_counter`) into `data`
    /// in place. Encryption and decryption are the same operation.
    pub fn apply_keystream(&self, initial_counter: u32, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(initial_counter.wrapping_add(i as u32));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_util::hex;

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2, cross-checked against an independent Python
        // implementation.
        let key: [u8; 32] = std::array::from_fn(|i| i as u8);
        let nonce = hex::decode_array::<12>("000000090000004a00000000").unwrap();
        let block = ChaCha20::new(&key, &nonce).block(1);
        assert_eq!(
            hex::encode(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn all_zero_block_vector() {
        let block = ChaCha20::new(&[0u8; 32], &[0u8; 12]).block(0);
        assert_eq!(
            hex::encode(&block),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
             da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586"
        );
    }

    #[test]
    fn keystream_roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let cipher = ChaCha20::new(&key, &nonce);
        let plain: Vec<u8> = (0..=255).cycle().take(300).collect();
        let mut data = plain.clone();
        cipher.apply_keystream(1, &mut data);
        assert_ne!(data, plain);
        cipher.apply_keystream(1, &mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let cipher = ChaCha20::new(&[1u8; 32], &[2u8; 12]);
        // Encrypting 128 bytes starting at counter 5 must equal blocks 5,6.
        let mut data = vec![0u8; 128];
        cipher.apply_keystream(5, &mut data);
        let mut expect = Vec::new();
        expect.extend_from_slice(&cipher.block(5));
        expect.extend_from_slice(&cipher.block(6));
        assert_eq!(data, expect);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = [3u8; 32];
        let a = ChaCha20::new(&key, &[0u8; 12]).block(0);
        let b = ChaCha20::new(&key, &[1u8; 12]).block(0);
        assert_ne!(a, b);
    }
}
