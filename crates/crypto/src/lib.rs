#![warn(missing_docs)]

//! Cryptographic substrate for the Teechain reproduction.
//!
//! The original system links libsecp256k1, a side-channel-resistant ECDH and
//! AES-GCM from the SGX SDK. This offline reproduction implements the same
//! algebraic functionality from scratch:
//!
//! * [`sha256`](mod@sha256) — SHA-256, HMAC-SHA256 and HKDF.
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439).
//! * [`aead`] — authenticated encryption (ChaCha20 + HMAC, encrypt-then-MAC;
//!   substituted for the paper's AES-GCM, see DESIGN.md).
//! * [`u256`], [`modarith`] — 256-bit integers and modular arithmetic.
//! * [`point`] — secp256k1 group operations.
//! * [`schnorr`] — Schnorr signatures over secp256k1 (the signature scheme
//!   used for enclave identities, attestation quotes and blockchain
//!   transactions).
//! * [`ecdh`] — authenticated Diffie-Hellman key agreement for the secure
//!   network channels of Alg. 1.
//!
//! None of this code attempts constant-time execution; the Teechain protocol
//! logic needs the algebra, and side-channel resistance of the substrate is
//! out of scope for a simulator (the paper's committee chains exist exactly
//! because TEE compromises — e.g. via side channels — are assumed possible).

pub mod aead;
pub mod chacha20;
pub mod ecdh;
pub mod modarith;
pub mod point;
pub mod schnorr;
pub mod sha256;
pub mod u256;
pub mod wire;

pub use aead::{Aead, AeadError};
pub use ecdh::shared_secret;
pub use schnorr::{Keypair, PrivateKey, PublicKey, Signature};
pub use sha256::{hkdf, hmac_sha256, sha256, Sha256};
pub use u256::U256;
