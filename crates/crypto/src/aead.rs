//! Authenticated encryption with associated data.
//!
//! Construction: ChaCha20 encryption followed by HMAC-SHA256 over
//! `aad || nonce || ciphertext || lengths` (encrypt-then-MAC), with
//! independent encryption and MAC keys derived from the session key via
//! HKDF. The paper's implementation uses AES-GCM with AES-NI; the security
//! contract consumed by Teechain (confidentiality + integrity under a shared
//! session key) is identical. See DESIGN.md, *Substitutions*.

use crate::chacha20::ChaCha20;
use crate::sha256::{ct_eq, hkdf, hmac_sha256};

/// Authenticated encryption context bound to one session key.
#[derive(Clone)]
pub struct Aead {
    enc_key: [u8; 32],
    mac_key: [u8; 32],
}

/// Failure to authenticate a ciphertext.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeadError;

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AEAD authentication failed")
    }
}

impl std::error::Error for AeadError {}

const TAG_LEN: usize = 16;

impl Aead {
    /// Derives an AEAD context from a session key.
    pub fn new(session_key: &[u8; 32]) -> Self {
        let okm = hkdf(b"teechain-aead-v1", session_key, b"enc|mac", 64);
        let mut enc_key = [0u8; 32];
        let mut mac_key = [0u8; 32];
        enc_key.copy_from_slice(&okm[..32]);
        mac_key.copy_from_slice(&okm[32..]);
        Self { enc_key, mac_key }
    }

    fn tag(&self, nonce: &[u8; 12], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut data = Vec::with_capacity(aad.len() + 12 + ciphertext.len() + 16);
        data.extend_from_slice(aad);
        data.extend_from_slice(nonce);
        data.extend_from_slice(ciphertext);
        data.extend_from_slice(&(aad.len() as u64).to_le_bytes());
        data.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
        let full = hmac_sha256(&self.mac_key, &data);
        full[..TAG_LEN].try_into().unwrap()
    }

    /// Encrypts `plaintext` under `nonce`, binding `aad`; returns
    /// `ciphertext || tag`.
    ///
    /// The caller is responsible for never reusing a nonce with the same
    /// session key (Teechain uses per-message sequence numbers).
    pub fn seal(&self, nonce: u64, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let nonce_bytes = expand_nonce(nonce);
        let mut out = plaintext.to_vec();
        ChaCha20::new(&self.enc_key, &nonce_bytes).apply_keystream(1, &mut out);
        let tag = self.tag(&nonce_bytes, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts `ciphertext || tag`.
    pub fn open(&self, nonce: u64, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, AeadError> {
        if sealed.len() < TAG_LEN {
            return Err(AeadError);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let nonce_bytes = expand_nonce(nonce);
        let expect = self.tag(&nonce_bytes, aad, ciphertext);
        if !ct_eq(&expect, tag) {
            return Err(AeadError);
        }
        let mut out = ciphertext.to_vec();
        ChaCha20::new(&self.enc_key, &nonce_bytes).apply_keystream(1, &mut out);
        Ok(out)
    }
}

fn expand_nonce(nonce: u64) -> [u8; 12] {
    let mut out = [0u8; 12];
    out[..8].copy_from_slice(&nonce.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Aead {
        Aead::new(&[0x42; 32])
    }

    #[test]
    fn roundtrip() {
        let a = ctx();
        let sealed = a.seal(1, b"header", b"secret payload");
        assert_eq!(a.open(1, b"header", &sealed).unwrap(), b"secret payload");
    }

    #[test]
    fn empty_plaintext() {
        let a = ctx();
        let sealed = a.seal(9, b"", b"");
        assert_eq!(a.open(9, b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn wrong_nonce_rejected() {
        let a = ctx();
        let sealed = a.seal(1, b"h", b"data");
        assert_eq!(a.open(2, b"h", &sealed), Err(AeadError));
    }

    #[test]
    fn wrong_aad_rejected() {
        let a = ctx();
        let sealed = a.seal(1, b"h", b"data");
        assert_eq!(a.open(1, b"x", &sealed), Err(AeadError));
    }

    #[test]
    fn bit_flip_rejected() {
        let a = ctx();
        let mut sealed = a.seal(1, b"h", b"data");
        for i in 0..sealed.len() {
            sealed[i] ^= 1;
            assert_eq!(a.open(1, b"h", &sealed), Err(AeadError), "byte {i}");
            sealed[i] ^= 1;
        }
        assert!(a.open(1, b"h", &sealed).is_ok());
    }

    #[test]
    fn truncated_rejected() {
        let a = ctx();
        let sealed = a.seal(1, b"h", b"data");
        assert_eq!(a.open(1, b"h", &sealed[..10]), Err(AeadError));
        assert_eq!(a.open(1, b"h", &[]), Err(AeadError));
    }

    #[test]
    fn different_keys_incompatible() {
        let a = Aead::new(&[1; 32]);
        let b = Aead::new(&[2; 32]);
        let sealed = a.seal(1, b"", b"data");
        assert_eq!(b.open(1, b"", &sealed), Err(AeadError));
    }
}
