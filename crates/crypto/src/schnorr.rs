//! Schnorr signatures over secp256k1.
//!
//! The scheme follows the BIP-340 structure (tagged hashes, deterministic
//! nonces, challenge `e = H(R || P || m)`, response `s = k + e·x`) but keeps
//! full 64-byte points instead of x-only keys — the simplification does not
//! change any property Teechain relies on.

use crate::modarith::fn_order;
use crate::point::{base_double_mul, base_mul, Affine};
use crate::sha256::tagged_hash;
use crate::u256::U256;
use teechain_util::hex;

/// A private key: a nonzero scalar modulo the group order.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PrivateKey(pub(crate) U256);

/// A public key: an affine curve point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub Affine);

/// A key pair.
#[derive(Clone, Copy)]
pub struct Keypair {
    /// The private half.
    pub sk: PrivateKey,
    /// The public half.
    pub pk: PublicKey,
}

/// A 96-byte Schnorr signature `(R, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The nonce commitment `R = kG`.
    pub r: Affine,
    /// The response scalar.
    pub s: U256,
}

impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "PrivateKey(<redacted>)")
    }
}

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PublicKey({}..)", &self.0.x.to_hex()[..8])
    }
}

impl PrivateKey {
    /// Derives a private key from 32 bytes of seed material. The seed is
    /// hashed so that any distribution of input bytes yields a well-formed
    /// scalar; all-zero outputs are rehashed.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let f = fn_order();
        let mut digest = tagged_hash("teechain/keygen", &[seed]);
        loop {
            let scalar = f.from_bytes(&digest);
            if !scalar.is_zero() {
                return PrivateKey(scalar);
            }
            digest = tagged_hash("teechain/keygen", &[&digest]);
        }
    }

    /// Serializes the scalar (big-endian).
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// Parses a serialized scalar; rejects zero and out-of-range values.
    pub fn from_bytes(bytes: &[u8; 32]) -> Option<Self> {
        let v = U256::from_be_bytes(bytes);
        if v.is_zero() || v >= fn_order().m {
            return None;
        }
        Some(PrivateKey(v))
    }

    /// Computes the matching public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(
            base_mul(&self.0)
                .to_affine()
                .expect("nonzero scalar times G is never infinity"),
        )
    }
}

impl Keypair {
    /// Generates a key pair from seed bytes (see [`PrivateKey::from_seed`]).
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let sk = PrivateKey::from_seed(seed);
        Keypair {
            sk,
            pk: sk.public_key(),
        }
    }

    /// Signs a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        sign(&self.sk, msg)
    }
}

impl PublicKey {
    /// Serializes as 64 bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.0.to_bytes()
    }

    /// Parses and validates 64 bytes.
    pub fn from_bytes(bytes: &[u8; 64]) -> Option<Self> {
        Affine::from_bytes(bytes).map(PublicKey)
    }

    /// Short printable fingerprint (first 8 hex digits of x).
    pub fn fingerprint(&self) -> String {
        hex::encode(&self.0.x.to_be_bytes()[..4])
    }
}

fn challenge(r: &Affine, pk: &PublicKey, msg: &[u8]) -> U256 {
    let digest = tagged_hash("teechain/challenge", &[&r.to_bytes(), &pk.to_bytes(), msg]);
    fn_order().from_bytes(&digest)
}

/// Signs `msg` with a deterministic (RFC 6979-style) nonce.
pub fn sign(sk: &PrivateKey, msg: &[u8]) -> Signature {
    let f = fn_order();
    let pk = sk.public_key();
    let mut nonce_seed = tagged_hash("teechain/nonce", &[&sk.to_bytes(), &pk.to_bytes(), msg]);
    loop {
        let k = f.from_bytes(&nonce_seed);
        if !k.is_zero() {
            let r = base_mul(&k)
                .to_affine()
                .expect("nonzero nonce times G is never infinity");
            let e = challenge(&r, &pk, msg);
            let s = f.add(&k, &f.mul(&e, &sk.0));
            return Signature { r, s };
        }
        nonce_seed = tagged_hash("teechain/nonce", &[&nonce_seed]);
    }
}

/// Verifies a signature: checks `s·G == R + e·P`.
pub fn verify(pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
    let f = fn_order();
    if sig.s >= f.m || !sig.r.is_on_curve() || !pk.0.is_on_curve() {
        return false;
    }
    let e = challenge(&sig.r, pk, msg);
    let lhs = base_mul(&sig.s);
    let rhs = sig
        .r
        .to_jacobian()
        .add(&base_double_mul(&U256::ZERO, &e, &pk.0));
    match (lhs.to_affine(), rhs.to_affine()) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

impl Signature {
    /// Serializes as 96 bytes (`R || s`).
    pub fn to_bytes(&self) -> [u8; 96] {
        let mut out = [0u8; 96];
        out[..64].copy_from_slice(&self.r.to_bytes());
        out[64..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses 96 bytes; the `R` component must be a curve point.
    pub fn from_bytes(bytes: &[u8; 96]) -> Option<Self> {
        let r = Affine::from_bytes(&bytes[..64].try_into().unwrap())?;
        let s = U256::from_be_bytes(&bytes[64..].try_into().unwrap());
        Some(Signature { r, s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    #[test]
    fn sign_verify_roundtrip() {
        let k = kp(1);
        let sig = k.sign(b"hello teechain");
        assert!(verify(&k.pk, b"hello teechain", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let k = kp(2);
        let sig = k.sign(b"msg");
        assert!(!verify(&k.pk, b"other", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let a = kp(3);
        let b = kp(4);
        let sig = a.sign(b"msg");
        assert!(!verify(&b.pk, b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let k = kp(5);
        let mut sig = k.sign(b"msg");
        sig.s = fn_order().add(&sig.s, &U256::ONE);
        assert!(!verify(&k.pk, b"msg", &sig));
    }

    #[test]
    fn deterministic_nonce() {
        let k = kp(6);
        assert_eq!(k.sign(b"m").to_bytes(), k.sign(b"m").to_bytes());
        assert_ne!(k.sign(b"m").to_bytes(), k.sign(b"n").to_bytes());
    }

    #[test]
    fn signature_serialization() {
        let k = kp(7);
        let sig = k.sign(b"serialize me");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
        assert!(verify(&k.pk, b"serialize me", &parsed));
    }

    #[test]
    fn key_serialization() {
        let k = kp(8);
        assert_eq!(PublicKey::from_bytes(&k.pk.to_bytes()), Some(k.pk));
        let sk2 = PrivateKey::from_bytes(&k.sk.to_bytes()).unwrap();
        assert_eq!(sk2.public_key(), k.pk);
        assert_eq!(PrivateKey::from_bytes(&[0u8; 32]), None);
        assert_eq!(PrivateKey::from_bytes(&[0xff; 32]), None);
    }

    #[test]
    fn empty_message() {
        let k = kp(9);
        assert!(verify(&k.pk, b"", &k.sign(b"")));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_sign_verify(seed in any::<[u8;32]>(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
            let k = Keypair::from_seed(&seed);
            let sig = k.sign(&msg);
            prop_assert!(verify(&k.pk, &msg, &sig));
            // Any flipped message bit invalidates the signature.
            if !msg.is_empty() {
                let mut bad = msg.clone();
                bad[0] ^= 1;
                prop_assert!(!verify(&k.pk, &bad, &sig));
            }
        }
    }
}
