//! SHA-256 (FIPS 180-4), HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    fn compress(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let add = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(add) {
            *s = s.wrapping_add(v);
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
        self
    }

    /// Consumes the hasher and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256.
///
/// # Examples
///
/// ```
/// let d = teechain_crypto::sha256(b"abc");
/// assert_eq!(teechain_util::hex::encode(&d),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 over the concatenation of several byte slices.
pub fn sha256_concat(parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// A domain-separated ("tagged") hash: `SHA256(SHA256(tag) || SHA256(tag) || data)`,
/// the construction used by BIP-340 and reused here for nonce/challenge
/// derivation and enclave state digests.
pub fn tagged_hash(tag: &str, parts: &[&[u8]]) -> [u8; 32] {
    let tag_digest = sha256(tag.as_bytes());
    let mut h = Sha256::new();
    h.update(&tag_digest).update(&tag_digest);
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad).update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad).update(&inner_digest);
    outer.finalize()
}

/// HKDF-SHA256: extract-then-expand to `out_len` bytes (RFC 5869).
///
/// # Panics
///
/// Panics if `out_len > 255 * 32`.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * 32, "HKDF output too long");
    let prk = hmac_sha256(salt, ikm);
    let mut out = Vec::with_capacity(out_len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut data = t.clone();
        data.extend_from_slice(info);
        data.push(counter);
        t = hmac_sha256(&prk, &data).to_vec();
        let take = (out_len - out.len()).min(32);
        out.extend_from_slice(&t[..take]);
        counter += 1;
    }
    out
}

/// Constant-shape equality check for MAC tags.
///
/// Not a hardened constant-time primitive, but avoids the obvious
/// early-return timing structure.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_util::hex;

    fn hex32(s: &str) -> [u8; 32] {
        hex::decode_array(s).unwrap()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            sha256(b"abc"),
            hex32("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
        );
        assert_eq!(
            sha256(b""),
            hex32("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data),
            hex32("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
        );
    }

    #[test]
    fn padding_boundary_55_bytes() {
        // 55 bytes is the largest message fitting one block with padding.
        assert_eq!(
            sha256(&[b'a'; 55]),
            hex32("9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318")
        );
    }

    #[test]
    fn exact_block() {
        let data: Vec<u8> = (0..64).collect();
        assert_eq!(
            sha256(&data),
            hex32("fdeab9acf3710362bd2658cdc9a29e8f9c757fcf9811603a8c447cd1d9151108")
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255).cycle().take(1000).collect();
        for split in [0, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn hmac_rfc4231_vectors() {
        assert_eq!(
            hmac_sha256(&[0x0b; 20], b"Hi There"),
            hex32("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
        );
        assert_eq!(
            hmac_sha256(b"Jefe", b"what do ya want for nothing?"),
            hex32("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
        );
        // Key longer than the block size must be hashed first.
        assert_eq!(
            hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            ),
            hex32("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
        );
    }

    #[test]
    fn hkdf_lengths_and_determinism() {
        let a = hkdf(b"salt", b"ikm", b"info", 42);
        let b = hkdf(b"salt", b"ikm", b"info", 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 42);
        assert_ne!(hkdf(b"salt", b"ikm", b"other", 42), a);
        assert_eq!(&hkdf(b"salt", b"ikm", b"info", 16), &a[..16]);
    }

    #[test]
    fn tagged_hash_separates_domains() {
        assert_ne!(tagged_hash("a", &[b"x"]), tagged_hash("b", &[b"x"]));
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"diff"));
        assert!(!ct_eq(b"short", b"longer"));
    }
}
