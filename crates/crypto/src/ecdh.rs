//! Elliptic-curve Diffie-Hellman key agreement.
//!
//! Used by the Teechain secure network channel handshake (Alg. 1 line 17):
//! after mutual remote attestation, both TEEs derive the same session key
//! from their identity keys plus ephemeral keys.

use crate::schnorr::{PrivateKey, PublicKey};
use crate::sha256::{hkdf, sha256};

/// Computes the raw shared secret `SHA256(x-coordinate of sk·P)`.
pub fn shared_secret(sk: &PrivateKey, pk: &PublicKey) -> [u8; 32] {
    let shared =
        pk.0.to_jacobian()
            .scalar_mul(&sk.0)
            .to_affine()
            .expect("valid public key times nonzero scalar is never infinity");
    sha256(&shared.x.to_be_bytes())
}

/// Derives a 32-byte session key from the DH secret and both parties'
/// identity public keys. The keys are ordered canonically so both sides
/// derive the same value.
pub fn session_key(secret: &[u8; 32], a: &PublicKey, b: &PublicKey) -> [u8; 32] {
    let (lo, hi) = if a.to_bytes() <= b.to_bytes() {
        (a, b)
    } else {
        (b, a)
    };
    let mut info = Vec::with_capacity(128);
    info.extend_from_slice(&lo.to_bytes());
    info.extend_from_slice(&hi.to_bytes());
    let okm = hkdf(b"teechain-session-v1", secret, &info, 32);
    okm.try_into().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::Keypair;

    #[test]
    fn ecdh_symmetric() {
        let a = Keypair::from_seed(&[1; 32]);
        let b = Keypair::from_seed(&[2; 32]);
        let sa = shared_secret(&a.sk, &b.pk);
        let sb = shared_secret(&b.sk, &a.pk);
        assert_eq!(sa, sb);
    }

    #[test]
    fn distinct_pairs_distinct_secrets() {
        let a = Keypair::from_seed(&[1; 32]);
        let b = Keypair::from_seed(&[2; 32]);
        let c = Keypair::from_seed(&[3; 32]);
        assert_ne!(shared_secret(&a.sk, &b.pk), shared_secret(&a.sk, &c.pk));
    }

    #[test]
    fn session_key_order_independent() {
        let a = Keypair::from_seed(&[4; 32]);
        let b = Keypair::from_seed(&[5; 32]);
        let secret = shared_secret(&a.sk, &b.pk);
        assert_eq!(
            session_key(&secret, &a.pk, &b.pk),
            session_key(&secret, &b.pk, &a.pk)
        );
    }

    #[test]
    fn session_key_binds_identities() {
        let a = Keypair::from_seed(&[6; 32]);
        let b = Keypair::from_seed(&[7; 32]);
        let c = Keypair::from_seed(&[8; 32]);
        let secret = [9u8; 32];
        assert_ne!(
            session_key(&secret, &a.pk, &b.pk),
            session_key(&secret, &a.pk, &c.pk)
        );
    }
}
