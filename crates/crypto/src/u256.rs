//! Fixed-width 256-bit unsigned integers.
//!
//! Representation: four little-endian `u64` limbs. Only the operations the
//! elliptic-curve code needs are provided.

use teechain_util::hex;

/// A 256-bit unsigned integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    /// Little-endian limbs: `limbs[0]` is least significant.
    pub limbs: [u64; 4],
}

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// The value 1.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };

    /// Creates a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Parses a big-endian 32-byte array.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let chunk: [u8; 8] = bytes[i * 8..(i + 1) * 8].try_into().unwrap();
            limbs[3 - i] = u64::from_be_bytes(chunk);
        }
        U256 { limbs }
    }

    /// Serializes to big-endian 32 bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.limbs[3 - i].to_be_bytes());
        }
        out
    }

    /// Parses a (up to 64 digit) hexadecimal string.
    ///
    /// # Panics
    ///
    /// Panics on malformed input; intended for constants and tests.
    pub fn from_hex(s: &str) -> Self {
        assert!(s.len() <= 64, "hex literal too long");
        let padded = format!("{s:0>64}");
        let bytes = hex::decode_array::<32>(&padded).expect("invalid hex literal");
        Self::from_be_bytes(&bytes)
    }

    /// Formats as a 64-digit lowercase hex string.
    pub fn to_hex(self) -> String {
        hex::encode(&self.to_be_bytes())
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Returns bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 256);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the 4-bit nibble at position `i` (0 = least significant).
    pub fn nibble(&self, i: usize) -> u8 {
        debug_assert!(i < 64);
        ((self.limbs[i / 16] >> ((i % 16) * 4)) & 0xf) as u8
    }

    /// Index of the highest set bit, or `None` for zero.
    pub fn highest_bit(&self) -> Option<usize> {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return Some(i * 64 + 63 - self.limbs[i].leading_zeros() as usize);
            }
        }
        None
    }

    /// Addition with carry-out.
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (i, slot) in out.iter_mut().enumerate() {
            let (v1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (v2, c2) = v1.overflowing_add(u64::from(carry));
            *slot = v2;
            carry = c1 || c2;
        }
        (U256 { limbs: out }, carry)
    }

    /// Subtraction with borrow-out.
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (i, slot) in out.iter_mut().enumerate() {
            let (v1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (v2, b2) = v1.overflowing_sub(u64::from(borrow));
            *slot = v2;
            borrow = b1 || b2;
        }
        (U256 { limbs: out }, borrow)
    }

    /// Two's-complement negation modulo 2^256 (i.e. `2^256 - self`).
    pub fn wrapping_neg(&self) -> U256 {
        U256::ZERO.overflowing_sub(self).0
    }

    /// Full 256×256 → 512-bit schoolbook multiplication.
    /// Returns little-endian `u64` limbs.
    pub fn mul_wide(&self, rhs: &U256) -> [u64; 8] {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u64 = 0;
            for j in 0..4 {
                let wide = (self.limbs[i] as u128) * (rhs.limbs[j] as u128)
                    + out[i + j] as u128
                    + carry as u128;
                out[i + j] = wide as u64;
                carry = (wide >> 64) as u64;
            }
            out[i + 4] = carry;
        }
        out
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl std::fmt::Display for U256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

/// 512-bit addition helper: `acc += v` where `acc` is 8 limbs and `v` is 4
/// limbs starting at limb 0. Panics in debug mode on overflow (callers
/// guarantee headroom).
pub fn add_into_512(acc: &mut [u64; 8], v: &U256) {
    let mut carry: u64 = 0;
    for (i, slot) in acc.iter_mut().enumerate() {
        let add = if i < 4 { v.limbs[i] } else { 0 };
        let wide = *slot as u128 + add as u128 + carry as u128;
        *slot = wide as u64;
        carry = (wide >> 64) as u64;
        if i >= 4 && add == 0 && carry == 0 {
            return;
        }
    }
    debug_assert_eq!(carry, 0, "512-bit accumulator overflow");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn bytes_roundtrip() {
        let v = U256::from_hex("0123456789abcdef0011223344556677deadbeefcafebabe8899aabbccddeeff");
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
        assert_eq!(
            v.to_hex(),
            "0123456789abcdef0011223344556677deadbeefcafebabe8899aabbccddeeff"
        );
    }

    #[test]
    fn short_hex_is_padded() {
        assert_eq!(U256::from_hex("ff"), u(255));
        assert_eq!(U256::from_hex("0"), U256::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(u(1) < u(2));
        assert!(U256::from_hex("100000000000000000") > U256::from_hex("ffffffffffffffff"));
        assert_eq!(u(7).cmp(&u(7)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn add_sub_inverse() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
        let (sum, carry) = a.overflowing_add(&U256::ONE);
        assert!(carry);
        assert!(sum.is_zero());
        let (diff, borrow) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(borrow);
        assert_eq!(diff, a);
    }

    #[test]
    fn wrapping_neg_identity() {
        let m = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
        // -m mod 2^256 = 2^32 + 977.
        assert_eq!(m.wrapping_neg(), U256::from_hex("1000003d1"));
    }

    #[test]
    fn mul_wide_small() {
        let r = u(0xffff_ffff_ffff_ffff).mul_wide(&u(0xffff_ffff_ffff_ffff));
        // (2^64-1)^2 = 2^128 - 2^65 + 1.
        assert_eq!(r[0], 1);
        assert_eq!(r[1], 0xffff_ffff_ffff_fffe);
        assert_eq!(r[2..], [0; 6]);
    }

    #[test]
    fn bit_and_nibble() {
        let v = U256::from_hex("a5");
        assert!(v.bit(0) && v.bit(2) && v.bit(5) && v.bit(7));
        assert!(!v.bit(1) && !v.bit(8) && !v.bit(255));
        assert_eq!(v.nibble(0), 5);
        assert_eq!(v.nibble(1), 0xa);
        assert_eq!(v.nibble(2), 0);
        assert_eq!(v.highest_bit(), Some(7));
        assert_eq!(U256::ZERO.highest_bit(), None);
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in any::<[u64;4]>(), b in any::<[u64;4]>()) {
            let a = U256 { limbs: a };
            let b = U256 { limbs: b };
            prop_assert_eq!(a.overflowing_add(&b), b.overflowing_add(&a));
        }

        #[test]
        fn prop_sub_undoes_add(a in any::<[u64;4]>(), b in any::<[u64;4]>()) {
            let a = U256 { limbs: a };
            let b = U256 { limbs: b };
            let (sum, _) = a.overflowing_add(&b);
            let (diff, _) = sum.overflowing_sub(&b);
            prop_assert_eq!(diff, a);
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let wide = U256::from_u64(a).mul_wide(&U256::from_u64(b));
            let expect = (a as u128) * (b as u128);
            prop_assert_eq!(wide[0], expect as u64);
            prop_assert_eq!(wide[1], (expect >> 64) as u64);
            prop_assert_eq!(&wide[2..], &[0u64; 6][..]);
        }

        #[test]
        fn prop_bytes_roundtrip(a in any::<[u64;4]>()) {
            let a = U256 { limbs: a };
            prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
        }
    }
}
