//! Modular arithmetic over 256-bit near-power-of-two prime moduli.
//!
//! Both secp256k1 moduli (the field prime `p` and the group order `n`) have
//! the form `2^256 - t` with small `t`, so a 512-bit product is reduced by
//! repeatedly folding the high half: `hi·2^256 + lo ≡ hi·t + lo (mod m)`.

use crate::u256::{add_into_512, U256};
use std::sync::OnceLock;

/// Arithmetic context for a modulus of the form `2^256 - t`.
#[derive(Debug, Clone)]
pub struct ModArith {
    /// The modulus.
    pub m: U256,
    /// The fold constant `t = 2^256 - m`.
    t: U256,
}

impl ModArith {
    /// Creates a context. The modulus must have its top bit set (all
    /// secp256k1 moduli do), which bounds the fold constant and guarantees
    /// reduction terminates.
    pub fn new(m: U256) -> Self {
        assert!(m.bit(255), "modulus must be >= 2^255");
        let t = m.wrapping_neg();
        Self { m, t }
    }

    /// Reduces a value below `2^256` into `[0, m)`.
    pub fn reduce(&self, mut v: U256) -> U256 {
        while v >= self.m {
            v = v.overflowing_sub(&self.m).0;
        }
        v
    }

    /// Reduces a 512-bit value (little-endian limbs) into `[0, m)`.
    pub fn reduce512(&self, mut wide: [u64; 8]) -> U256 {
        loop {
            let hi = U256 {
                limbs: [wide[4], wide[5], wide[6], wide[7]],
            };
            let lo = U256 {
                limbs: [wide[0], wide[1], wide[2], wide[3]],
            };
            if hi.is_zero() {
                return self.reduce(lo);
            }
            // wide = hi * t + lo. Because t < 2^130 and hi < 2^256 the
            // product fits comfortably in 512 bits, and the value shrinks
            // every iteration, so this terminates in <= 4 rounds.
            let mut next = hi.mul_wide(&self.t);
            add_into_512(&mut next, &lo);
            wide = next;
        }
    }

    /// `(a + b) mod m`. Inputs must already be reduced.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        let (sum, carry) = a.overflowing_add(b);
        if carry {
            // sum + 2^256 ≡ sum + t (mod m); t is small so one add suffices.
            let (v, c2) = sum.overflowing_add(&self.t);
            debug_assert!(!c2);
            self.reduce(v)
        } else {
            self.reduce(sum)
        }
    }

    /// `(a - b) mod m`. Inputs must already be reduced.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        let (diff, borrow) = a.overflowing_sub(b);
        if borrow {
            diff.overflowing_add(&self.m).0
        } else {
            diff
        }
    }

    /// `(-a) mod m`.
    pub fn neg(&self, a: &U256) -> U256 {
        self.sub(&U256::ZERO, a)
    }

    /// `(a * b) mod m`.
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        self.reduce512(a.mul_wide(b))
    }

    /// `a^2 mod m`.
    pub fn square(&self, a: &U256) -> U256 {
        self.mul(a, a)
    }

    /// `base^exp mod m` by square-and-multiply.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        let mut result = U256::ONE;
        let Some(top) = exp.highest_bit() else {
            return result;
        };
        let mut acc = self.reduce(*base);
        for i in 0..=top {
            if exp.bit(i) {
                result = self.mul(&result, &acc);
            }
            if i != top {
                acc = self.square(&acc);
            }
        }
        result
    }

    /// Modular inverse via Fermat's little theorem (the modulus is prime).
    ///
    /// # Panics
    ///
    /// Panics when inverting zero.
    pub fn inv(&self, a: &U256) -> U256 {
        assert!(!a.is_zero(), "inverse of zero");
        let exp = self.m.overflowing_sub(&U256::from_u64(2)).0;
        self.pow(a, &exp)
    }

    /// Reduces an arbitrary 32-byte string into `[0, m)` — used to map hash
    /// outputs to scalars. The statistical bias is < 2^-126 for secp256k1.
    pub fn from_bytes(&self, bytes: &[u8; 32]) -> U256 {
        self.reduce(U256::from_be_bytes(bytes))
    }
}

/// The secp256k1 base field prime `p = 2^256 - 2^32 - 977`.
pub fn fp() -> &'static ModArith {
    static FP: OnceLock<ModArith> = OnceLock::new();
    FP.get_or_init(|| {
        ModArith::new(U256::from_hex(
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f",
        ))
    })
}

/// The secp256k1 group order `n`.
pub fn fn_order() -> &'static ModArith {
    static FN: OnceLock<ModArith> = OnceLock::new();
    FN.get_or_init(|| {
        ModArith::new(U256::from_hex(
            "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141",
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_sane() {
        // p = 2^256 - 2^32 - 977 => t = 2^32 + 977 = 0x1000003d1.
        assert_eq!(fp().t, U256::from_hex("1000003d1"));
        assert_eq!(
            fn_order().m,
            U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
        );
    }

    #[test]
    fn small_arith() {
        let f = fp();
        let a = U256::from_u64(7);
        let b = U256::from_u64(5);
        assert_eq!(f.add(&a, &b), U256::from_u64(12));
        assert_eq!(f.sub(&b, &a), f.neg(&U256::from_u64(2)));
        assert_eq!(f.mul(&a, &b), U256::from_u64(35));
    }

    #[test]
    fn wraparound_addition() {
        let f = fp();
        let pm1 = f.sub(&U256::ZERO, &U256::ONE); // p - 1
        assert_eq!(f.add(&pm1, &U256::ONE), U256::ZERO);
        assert_eq!(f.add(&pm1, &U256::from_u64(5)), U256::from_u64(4));
    }

    #[test]
    fn square_of_p_minus_one() {
        // (p-1)^2 ≡ 1 (mod p).
        let f = fp();
        let pm1 = f.neg(&U256::ONE);
        assert_eq!(f.square(&pm1), U256::ONE);
    }

    #[test]
    fn pow_and_fermat() {
        let f = fp();
        let a = U256::from_hex("deadbeefcafebabe0123456789abcdef");
        // a^(p-1) = 1.
        let pm1 = f.m.overflowing_sub(&U256::ONE).0;
        assert_eq!(f.pow(&a, &pm1), U256::ONE);
        assert_eq!(f.pow(&a, &U256::ZERO), U256::ONE);
        assert_eq!(f.pow(&a, &U256::ONE), a);
    }

    #[test]
    fn inverse_roundtrip() {
        for f in [fp(), fn_order()] {
            for v in [2u64, 3, 977, 0xdead_beef] {
                let a = U256::from_u64(v);
                let inv = f.inv(&a);
                assert_eq!(f.mul(&a, &inv), U256::ONE);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_inverse_panics() {
        let _ = fp().inv(&U256::ZERO);
    }

    fn arb_reduced(f: &'static ModArith) -> impl Strategy<Value = U256> {
        any::<[u64; 4]>().prop_map(move |l| f.reduce512([l[0], l[1], l[2], l[3], 0, 0, 0, 0]))
    }

    proptest! {
        #[test]
        fn prop_field_axioms(a in arb_reduced(fp()), b in arb_reduced(fp()), c in arb_reduced(fp())) {
            let f = fp();
            // Commutativity and associativity.
            prop_assert_eq!(f.add(&a, &b), f.add(&b, &a));
            prop_assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
            prop_assert_eq!(f.mul(&f.mul(&a, &b), &c), f.mul(&a, &f.mul(&b, &c)));
            // Distributivity.
            prop_assert_eq!(f.mul(&a, &f.add(&b, &c)),
                            f.add(&f.mul(&a, &b), &f.mul(&a, &c)));
            // Subtraction is inverse of addition.
            prop_assert_eq!(f.sub(&f.add(&a, &b), &b), a);
        }

        #[test]
        fn prop_inverse(a in arb_reduced(fn_order())) {
            prop_assume!(!a.is_zero());
            let f = fn_order();
            prop_assert_eq!(f.mul(&a, &f.inv(&a)), U256::ONE);
        }

        #[test]
        fn prop_reduce512_linear(a in any::<[u64;4]>(), b in any::<[u64;4]>()) {
            // reduce(a*b) computed two ways must agree: directly, and by
            // reducing the operands first.
            let f = fp();
            let a = U256 { limbs: a };
            let b = U256 { limbs: b };
            let direct = f.reduce512(a.mul_wide(&b));
            let via_reduced = f.mul(&f.reduce512([a.limbs[0],a.limbs[1],a.limbs[2],a.limbs[3],0,0,0,0]),
                                    &f.reduce512([b.limbs[0],b.limbs[1],b.limbs[2],b.limbs[3],0,0,0,0]));
            prop_assert_eq!(direct, via_reduced);
        }
    }
}
