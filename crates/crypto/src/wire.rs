//! Wire-codec implementations for cryptographic types.
//!
//! These live here (rather than in consumer crates) because Rust's orphan
//! rules require the impl to be in the crate of either the trait or the type.

use crate::point::Affine;
use crate::schnorr::{PublicKey, Signature};
use crate::u256::U256;
use teechain_util::codec::{Decode, Encode, Reader, WireError};

impl Encode for U256 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_be_bytes().encode(out);
    }
}

impl Decode for U256 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(U256::from_be_bytes(&r.read::<[u8; 32]>()?))
    }
}

impl Encode for PublicKey {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bytes().encode(out);
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.read::<[u8; 64]>()?;
        PublicKey::from_bytes(&bytes).ok_or(WireError::InvalidValue("public key not on curve"))
    }
}

impl Encode for Signature {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bytes().encode(out);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.read::<[u8; 96]>()?;
        Signature::from_bytes(&bytes).ok_or(WireError::InvalidValue("signature R not on curve"))
    }
}

impl Encode for Affine {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bytes().encode(out);
    }
}

impl Decode for Affine {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.read::<[u8; 64]>()?;
        Affine::from_bytes(&bytes).ok_or(WireError::InvalidValue("point not on curve"))
    }
}

#[cfg(test)]
mod tests {
    use crate::schnorr::Keypair;
    use teechain_util::codec::{Decode, Encode};

    #[test]
    fn pubkey_roundtrip() {
        use crate::schnorr::PublicKey;
        let k = Keypair::from_seed(&[1; 32]);
        let decoded = PublicKey::decode_exact(&k.pk.encode_to_vec()).unwrap();
        assert_eq!(decoded, k.pk);
    }

    #[test]
    fn bad_point_rejected() {
        use crate::schnorr::PublicKey;
        let junk = [3u8; 64].encode_to_vec();
        assert!(PublicKey::decode_exact(&junk).is_err());
    }

    #[test]
    fn signature_roundtrip() {
        use crate::schnorr::Signature;
        let k = Keypair::from_seed(&[2; 32]);
        let sig = k.sign(b"wire");
        let decoded = Signature::decode_exact(&sig.encode_to_vec()).unwrap();
        assert_eq!(decoded, sig);
    }
}
