//! Topology builders matching the paper's evaluation setups.
//!
//! * [`Region`] and [`fig3_link`] — the Fig. 3 testbed: 30 machines in the
//!   UK, one in the US, two in Israel, with the measured WAN RTTs.
//! * [`HubSpoke`] — the Fig. 5 three-tier hub-and-spoke overlay with
//!   100 ms links between machines.
//! * [`complete_pairs`] — all pairs of a complete payment-channel graph.

use crate::engine::NodeId;
use crate::link::LinkSpec;

/// Geographic placement of a machine in the Fig. 3 testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// London cluster (UK1..UK30): 0.5 ms LAN at 1 Gb/s.
    Uk,
    /// The single US machine.
    Us,
    /// The Israeli machines (IL1, IL2): 0.5 ms LAN at 100 Mb/s.
    Il,
}

/// The WAN/LAN link between two regions, with Fig. 3's RTTs and
/// bandwidths. The assignment of the three WAN RTTs (90/140/60 ms) to the
/// (UK,US)/(US,IL)/(UK,IL) pairs is the one consistent with Table 1: the
/// no-fault-tolerance payment (one UK↔US round trip) measures 86 ms, and
/// one replica in IL adds ≈206 ms (one US↔IL plus one UK↔IL round trip).
pub fn fig3_link(a: Region, b: Region) -> LinkSpec {
    use Region::*;
    match (a, b) {
        (Uk, Uk) => LinkSpec::from_rtt_ms(0.5, 1000.0),
        (Il, Il) => LinkSpec::from_rtt_ms(0.5, 100.0),
        (Us, Us) => LinkSpec::from_rtt_ms(0.1, 1000.0),
        (Uk, Us) | (Us, Uk) => LinkSpec::from_rtt_ms(84.0, 150.0),
        (Us, Il) | (Il, Us) => LinkSpec::from_rtt_ms(140.0, 90.0),
        (Uk, Il) | (Il, Uk) => LinkSpec::from_rtt_ms(60.0, 180.0),
    }
}

/// The Fig. 3 testbed: returns the region of each of the 33 machines.
/// Index 0 is the US machine, 1–2 are IL1/IL2, 3–32 are UK1..UK30.
pub fn fig3_regions() -> Vec<Region> {
    let mut regions = vec![Region::Us, Region::Il, Region::Il];
    regions.extend(std::iter::repeat_n(Region::Uk, 30));
    regions
}

/// Applies Fig. 3 links to a simulator-sized region list: yields
/// `(a, b, LinkSpec)` for every ordered pair (callers apply symmetric).
pub fn region_links(regions: &[Region]) -> Vec<(NodeId, NodeId, LinkSpec)> {
    let mut out = Vec::new();
    for i in 0..regions.len() {
        for j in (i + 1)..regions.len() {
            out.push((
                NodeId(i as u32),
                NodeId(j as u32),
                fig3_link(regions[i], regions[j]),
            ));
        }
    }
    out
}

/// All unordered node pairs of a complete graph over `n` nodes — the §7.4
/// complete-graph deployment, where every pair shares a direct channel.
pub fn complete_pairs(n: u32) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((NodeId(i), NodeId(j)));
        }
    }
    out
}

/// The Fig. 5 hub-and-spoke overlay: three tiers of connectivity.
///
/// * Tier 1 — fully interconnected hubs.
/// * Tier 2 — each connected to every tier-1 hub.
/// * Tier 3 — each connected to exactly one tier-2 node (round-robin).
#[derive(Debug, Clone)]
pub struct HubSpoke {
    /// Number of tier-1 hubs.
    pub tier1: u32,
    /// Number of tier-2 nodes.
    pub tier2: u32,
    /// Number of tier-3 leaves.
    pub tier3: u32,
}

impl HubSpoke {
    /// The 30-machine configuration used in §7.4: 3 hubs, 9 mid-tier,
    /// 18 leaves.
    pub fn paper_default() -> Self {
        HubSpoke {
            tier1: 3,
            tier2: 9,
            tier3: 18,
        }
    }

    /// A generated large-scale overlay with `total` nodes — the shape of
    /// Fig. 5 grown to simulator-stress sizes (the §7.4 deployment is 30
    /// machines; the `scale` benchmark runs 10k+). The hub tier grows
    /// slowly (hubs are fully meshed, so their edge count is quadratic),
    /// the mid tier at ~4% of nodes, and everything else is leaves, so
    /// the channel count stays linear in `total`.
    ///
    /// # Panics
    ///
    /// Panics if `total < 30` (use [`HubSpoke::paper_default`] for small
    /// overlays).
    pub fn scaled(total: u32) -> Self {
        assert!(total >= 30, "scaled overlays start at 30 nodes");
        let tier1 = (total / 1000).clamp(3, 16);
        let tier2 = (total / 25).clamp(9, 2000);
        HubSpoke {
            tier1,
            tier2,
            tier3: total - tier1 - tier2,
        }
    }

    /// Total number of nodes.
    pub fn total(&self) -> u32 {
        self.tier1 + self.tier2 + self.tier3
    }

    /// The tier (1, 2 or 3) of a node id.
    pub fn tier_of(&self, id: NodeId) -> u8 {
        if id.0 < self.tier1 {
            1
        } else if id.0 < self.tier1 + self.tier2 {
            2
        } else {
            3
        }
    }

    /// The payment-channel edges of the overlay.
    pub fn channel_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        // Tier 1: complete among hubs.
        for i in 0..self.tier1 {
            for j in (i + 1)..self.tier1 {
                out.push((NodeId(i), NodeId(j)));
            }
        }
        // Tier 2: each to every hub.
        for k in 0..self.tier2 {
            let id = self.tier1 + k;
            for hub in 0..self.tier1 {
                out.push((NodeId(hub), NodeId(id)));
            }
        }
        // Tier 3: each to one tier-2 node, round-robin.
        for k in 0..self.tier3 {
            let id = self.tier1 + self.tier2 + k;
            let parent = self.tier1 + (k % self.tier2);
            out.push((NodeId(parent), NodeId(id)));
        }
        out
    }

    /// Address-ownership weights from §7.4: 50% of addresses on tier 1,
    /// 35% on tier 2, 15% on tier 3 (divided evenly within a tier).
    pub fn address_weight(&self, id: NodeId) -> f64 {
        match self.tier_of(id) {
            1 => 0.50 / self.tier1 as f64,
            2 => 0.35 / self.tier2 as f64,
            _ => 0.15 / self.tier3 as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_33_machines() {
        let regions = fig3_regions();
        assert_eq!(regions.len(), 33);
        assert_eq!(regions.iter().filter(|r| **r == Region::Uk).count(), 30);
        assert_eq!(regions.iter().filter(|r| **r == Region::Il).count(), 2);
    }

    #[test]
    fn wan_rtts_match_calibration() {
        // One UK↔US round trip ≈ 84 ms (Table 1 no-FT latency 86 ms with
        // jitter); see module docs.
        assert_eq!(fig3_link(Region::Uk, Region::Us).latency_ns, 42_000_000);
        assert_eq!(fig3_link(Region::Us, Region::Il).latency_ns, 70_000_000);
        assert_eq!(fig3_link(Region::Il, Region::Uk).latency_ns, 30_000_000);
        // Symmetry.
        assert_eq!(
            fig3_link(Region::Us, Region::Uk),
            fig3_link(Region::Uk, Region::Us)
        );
    }

    #[test]
    fn complete_graph_edge_count() {
        assert_eq!(complete_pairs(5).len(), 10);
        assert_eq!(complete_pairs(30).len(), 435);
    }

    #[test]
    fn hub_spoke_shape() {
        let hs = HubSpoke::paper_default();
        assert_eq!(hs.total(), 30);
        let pairs = hs.channel_pairs();
        // 3 hub-hub + 9*3 tier2-hub + 18 tier3 edges.
        assert_eq!(pairs.len(), 3 + 27 + 18);
        assert_eq!(hs.tier_of(NodeId(0)), 1);
        assert_eq!(hs.tier_of(NodeId(3)), 2);
        assert_eq!(hs.tier_of(NodeId(12)), 3);
    }

    #[test]
    fn address_weights_sum_to_one() {
        let hs = HubSpoke::paper_default();
        let total: f64 = (0..hs.total()).map(|i| hs.address_weight(NodeId(i))).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_overlay_keeps_edges_linear() {
        for total in [30u32, 1_000, 10_032, 50_000] {
            let hs = HubSpoke::scaled(total);
            assert_eq!(hs.total(), total, "node count preserved");
            assert!(hs.tier1 >= 3 && hs.tier2 >= 9 && hs.tier3 >= 1);
            let edges = hs.channel_pairs().len() as u32;
            // hub mesh + tier2*hubs + one edge per leaf: linear overall.
            assert_eq!(
                edges,
                hs.tier1 * (hs.tier1 - 1) / 2 + hs.tier2 * hs.tier1 + hs.tier3
            );
            assert!(edges < 2 * total, "edge count stays linear ({edges})");
            // The §7.4 address skew still normalizes.
            let sum: f64 = (0..total).map(|i| hs.address_weight(NodeId(i))).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tier3_nodes_have_one_edge() {
        let hs = HubSpoke::paper_default();
        let pairs = hs.channel_pairs();
        for k in 0..hs.tier3 {
            let id = NodeId(hs.tier1 + hs.tier2 + k);
            let degree = pairs.iter().filter(|(a, b)| *a == id || *b == id).count();
            assert_eq!(degree, 1);
        }
    }
}
