//! Network link models.

use teechain_util::rng::Xoshiro256;

/// A directed link's characteristics. Delivery time for a message of `n`
/// bytes is `latency * (1 + U[0, jitter_frac)) + n*8/bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation delay in nanoseconds.
    pub latency_ns: u64,
    /// Multiplicative jitter bound (e.g. 0.06 = up to +6%).
    pub jitter_frac: f64,
    /// Bandwidth in bits per second (`None` = infinite).
    pub bandwidth_bps: Option<u64>,
}

impl LinkSpec {
    /// A symmetric link described by its round-trip time in milliseconds
    /// and bandwidth in megabits per second — the units of Fig. 3.
    pub fn from_rtt_ms(rtt_ms: f64, bandwidth_mbps: f64) -> Self {
        LinkSpec {
            latency_ns: (rtt_ms / 2.0 * 1_000_000.0) as u64,
            jitter_frac: 0.06,
            bandwidth_bps: Some((bandwidth_mbps * 1_000_000.0) as u64),
        }
    }

    /// An ideal link (zero latency, infinite bandwidth) for unit tests.
    pub fn ideal() -> Self {
        LinkSpec {
            latency_ns: 0,
            jitter_frac: 0.0,
            bandwidth_bps: None,
        }
    }

    /// Samples the one-way delay for a message of `bytes` bytes.
    pub fn sample_delay(&self, bytes: usize, rng: &mut Xoshiro256) -> u64 {
        let jitter = if self.jitter_frac > 0.0 {
            (self.latency_ns as f64 * self.jitter_frac * rng.next_f64()) as u64
        } else {
            0
        };
        let serialization = match self.bandwidth_bps {
            Some(bps) if bps > 0 => (bytes as u64 * 8).saturating_mul(1_000_000_000) / bps,
            _ => 0,
        };
        self.latency_ns + jitter + serialization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_conversion() {
        let l = LinkSpec::from_rtt_ms(90.0, 150.0);
        assert_eq!(l.latency_ns, 45_000_000);
        assert_eq!(l.bandwidth_bps, Some(150_000_000));
    }

    #[test]
    fn ideal_link_is_instant() {
        let mut rng = Xoshiro256::new(1);
        assert_eq!(LinkSpec::ideal().sample_delay(1_000_000, &mut rng), 0);
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let mut rng = Xoshiro256::new(1);
        let mut l = LinkSpec::from_rtt_ms(0.0, 8.0); // 8 Mb/s = 1 byte/µs
        l.jitter_frac = 0.0;
        assert_eq!(l.sample_delay(1000, &mut rng), 1000 * 1000);
    }

    #[test]
    fn jitter_bounded() {
        let mut rng = Xoshiro256::new(7);
        let l = LinkSpec {
            latency_ns: 1_000_000,
            jitter_frac: 0.1,
            bandwidth_bps: None,
        };
        for _ in 0..1000 {
            let d = l.sample_delay(0, &mut rng);
            assert!((1_000_000..1_100_000).contains(&d));
        }
    }
}
