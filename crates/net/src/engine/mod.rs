//! The discrete-event engine family.
//!
//! The original monolithic `sim.rs` event loop is split into a small
//! module family behind one [`Engine`] abstraction:
//!
//! * [`seq`] — the sequential binary-heap loop (the original
//!   `Simulator`, unchanged semantics, bit-for-bit compatible with the
//!   calibrated test suite).
//! * [`sharded`] — a conservative-parallel engine: nodes are partitioned
//!   into per-thread shards, each with its own event heap, deferred
//!   inboxes and per-node RNG lanes, synchronized by lookahead windows
//!   derived from the minimum link latency.
//! * [`queue`] — the event-key and heap building blocks both engines
//!   share.
//!
//! [`AnyEngine`] packages both behind one concrete type so harnesses can
//! select an engine at runtime ([`EngineKind`], also readable from the
//! `TEECHAIN_ENGINE` / `TEECHAIN_SHARDS` environment) and convert a
//! quiescent simulation from one engine to the other
//! ([`AnyEngine::into_kind`] — build a large topology once on the cheap
//! sequential path, then fan the measured phase out across shards).
//!
//! # Determinism
//!
//! The sequential engine orders events by `(time, global seq)`; the
//! sharded engine orders by `(time, origin node, per-origin seq)` and is
//! deterministic *for any shard count* — see the [`sharded`] module docs
//! for the full argument. The two engines therefore agree with
//! themselves across runs and (for the sharded engine) across shard
//! counts, but not bit-for-bit with each other: tie-breaking among
//! same-instant events and the RNG lane layout differ.

pub mod queue;
pub mod seq;
pub mod sharded;

use crate::link::LinkSpec;
use std::collections::HashMap;
use teechain_util::rng::Xoshiro256;

pub use seq::SeqEngine;
pub use sharded::ShardedEngine;

/// Back-compatible name for the sequential engine.
pub type Simulator<N> = SeqEngine<N>;

/// Identifies a node within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Behaviour of a simulated node.
pub trait SimNode {
    /// Called once at simulation start (time 0).
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Vec<u8>);

    /// Called when a timer set with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }
}

pub(crate) enum Action {
    Send { to: NodeId, msg: Vec<u8> },
    Timer { delay_ns: u64, token: u64 },
    Busy { ns: u64 },
}

/// Handler context: lets a node observe time, send messages, set timers and
/// account CPU service time.
pub struct Ctx<'a> {
    pub(crate) now: u64,
    pub(crate) self_id: NodeId,
    pub(crate) actions: &'a mut Vec<Action>,
    pub(crate) rng: &'a mut Xoshiro256,
}

impl Ctx<'_> {
    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now
    }

    /// This node's id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to`; it will be delivered after the link delay.
    pub fn send(&mut self, to: NodeId, msg: Vec<u8>) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Schedules [`SimNode::on_timer`] with `token` after `delay_ns`.
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) {
        self.actions.push(Action::Timer { delay_ns, token });
    }

    /// Accounts `ns` of CPU service time for handling the current event:
    /// the node will not process further events before `now + ns`. This is
    /// the single-server queue that converts per-operation costs into
    /// throughput ceilings.
    pub fn busy(&mut self, ns: u64) {
        self.actions.push(Action::Busy { ns });
    }

    /// Deterministic randomness. Under the sequential engine this is one
    /// per-simulation stream; under the sharded engine it is a per-node
    /// lane (which is what makes results independent of shard count).
    pub fn rng(&mut self) -> &mut Xoshiro256 {
        self.rng
    }
}

pub(crate) enum EventKind {
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: Vec<u8>,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    /// Internal: a busy node re-checks its inbox.
    Wake {
        node: NodeId,
    },
}

impl EventKind {
    pub(crate) fn target(&self) -> NodeId {
        match self {
            EventKind::Deliver { to, .. } => *to,
            EventKind::Timer { node, .. } | EventKind::Wake { node } => *node,
        }
    }
}

/// Aggregate simulation counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Messages delivered.
    pub messages: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
    /// Events processed (messages + timers).
    pub events: u64,
    /// Messages and timers dropped because the target node was down
    /// (crash fault injection).
    pub dropped: u64,
}

impl SimStats {
    /// Folds another counter set into this one. Shards accumulate their
    /// own counters during a window; the engine merges them on demand, so
    /// the aggregate is identical for any shard count.
    pub fn merge(&mut self, other: &SimStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.events += other.events;
        self.dropped += other.dropped;
    }

    /// [`SimStats::merge`] as an expression.
    pub fn merged(mut self, other: &SimStats) -> SimStats {
        self.merge(other);
        self
    }
}

/// Which engine implementation a simulation runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The sequential binary-heap loop.
    Seq,
    /// The conservative-parallel engine with this many shards (each shard
    /// gets its own worker thread during large windows).
    Sharded {
        /// Number of shards (at least 1).
        shards: usize,
    },
}

impl EngineKind {
    /// Parses `"seq"`, `"sharded"` (8 shards, clamped to the node count
    /// at construction) or `"sharded:<n>"`.
    pub fn parse(s: &str) -> Option<EngineKind> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("seq") {
            return Some(EngineKind::Seq);
        }
        if s.eq_ignore_ascii_case("sharded") {
            return Some(EngineKind::Sharded { shards: 8 });
        }
        let n = s
            .strip_prefix("sharded:")
            .or_else(|| s.strip_prefix("SHARDED:"))?;
        Some(EngineKind::Sharded {
            shards: n.trim().parse().ok().filter(|&n: &usize| n > 0)?,
        })
    }

    /// Reads `TEECHAIN_ENGINE` (`seq` / `sharded` / `sharded:<n>`) and
    /// `TEECHAIN_SHARDS` (shard-count override); defaults to [`Seq`].
    /// This is how CI runs the whole determinism suite at several shard
    /// counts without code changes.
    ///
    /// [`Seq`]: EngineKind::Seq
    pub fn from_env() -> EngineKind {
        let base = std::env::var("TEECHAIN_ENGINE")
            .ok()
            .and_then(|v| EngineKind::parse(&v));
        let shards = std::env::var("TEECHAIN_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        match (base, shards) {
            (Some(EngineKind::Seq), _) => EngineKind::Seq,
            (Some(EngineKind::Sharded { shards: s }), n) => EngineKind::Sharded {
                shards: n.unwrap_or(s),
            },
            (None, Some(n)) => EngineKind::Sharded { shards: n },
            (None, None) => EngineKind::Seq,
        }
    }

    /// Shard count implied by this kind (1 for the sequential engine).
    pub fn shards(&self) -> usize {
        match self {
            EngineKind::Seq => 1,
            EngineKind::Sharded { shards } => (*shards).max(1),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Seq => write!(f, "seq"),
            EngineKind::Sharded { shards } => write!(f, "sharded:{shards}"),
        }
    }
}

/// The engine-independent snapshot of a quiescent simulation, used to
/// convert between engine implementations ([`AnyEngine::into_kind`]).
pub(crate) struct EngineState<N> {
    pub(crate) nodes: Vec<N>,
    pub(crate) busy_until: Vec<u64>,
    pub(crate) offline: Vec<bool>,
    pub(crate) links: HashMap<(u32, u32), LinkSpec>,
    pub(crate) default_link: LinkSpec,
    /// Last scheduled arrival per (src, dst) — carried so per-connection
    /// FIFO holds across a conversion.
    pub(crate) last_arrival: HashMap<(u32, u32), u64>,
    pub(crate) now: u64,
    pub(crate) seed: u64,
    pub(crate) stats: SimStats,
    pub(crate) started: bool,
}

/// A runtime-selected engine. This is the type harness layers hold: it
/// exposes the whole [`Engine`] surface as inherent methods (so existing
/// call sites keep working) and implements the trait for generic code.
pub enum AnyEngine<N> {
    /// The sequential engine (boxed: the engine bodies differ a lot in
    /// size and harnesses move `AnyEngine` values around).
    Seq(Box<SeqEngine<N>>),
    /// The sharded conservative-parallel engine.
    Sharded(Box<ShardedEngine<N>>),
}

macro_rules! delegate {
    ($self:expr, $e:ident => $body:expr) => {
        match $self {
            AnyEngine::Seq($e) => $body,
            AnyEngine::Sharded($e) => $body,
        }
    };
}

impl<N: SimNode + Send> AnyEngine<N> {
    /// Creates an engine of the requested kind over `nodes`.
    pub fn new(kind: EngineKind, nodes: Vec<N>, default_link: LinkSpec, seed: u64) -> Self {
        match kind {
            EngineKind::Seq => AnyEngine::Seq(Box::new(SeqEngine::new(nodes, default_link, seed))),
            EngineKind::Sharded { shards } => AnyEngine::Sharded(Box::new(ShardedEngine::new(
                nodes,
                default_link,
                seed,
                shards,
            ))),
        }
    }

    /// The kind of the running engine.
    pub fn kind(&self) -> EngineKind {
        match self {
            AnyEngine::Seq(_) => EngineKind::Seq,
            AnyEngine::Sharded(e) => EngineKind::Sharded {
                shards: e.num_shards(),
            },
        }
    }

    /// Forces the sharded engine's window work stealing on or off
    /// (no-op on the sequential engine); see
    /// [`ShardedEngine::set_steal`]. Scheduling only — results are
    /// identical either way.
    pub fn set_steal(&mut self, steal: bool) {
        if let AnyEngine::Sharded(e) = self {
            e.set_steal(steal);
        }
    }

    /// Converts a **quiescent** simulation (empty event queue — e.g.
    /// after [`AnyEngine::run_to_idle`]) to another engine kind, carrying
    /// nodes, links, clock, busy periods, offline flags, per-connection
    /// FIFO state and counters across. RNG streams are re-derived from
    /// the seed deterministically. This is how the `scale` benchmark
    /// builds one topology sequentially and then measures every engine
    /// configuration on it.
    ///
    /// # Panics
    ///
    /// Panics if events are still queued.
    pub fn into_kind(self, kind: EngineKind) -> Self {
        let state = match self {
            AnyEngine::Seq(e) => e.into_state(),
            AnyEngine::Sharded(e) => e.into_state(),
        };
        match kind {
            EngineKind::Seq => AnyEngine::Seq(Box::new(SeqEngine::from_state(state))),
            EngineKind::Sharded { shards } => {
                AnyEngine::Sharded(Box::new(ShardedEngine::from_state(state, shards)))
            }
        }
    }

    /// Sets the (symmetric) link between two nodes.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        delegate!(self, e => e.set_link(a, b, spec))
    }

    /// Takes a node down or brings it back up (crash fault injection).
    pub fn set_offline(&mut self, id: NodeId, offline: bool) {
        delegate!(self, e => e.set_offline(id, offline))
    }

    /// True while `id` is crashed.
    pub fn is_offline(&self, id: NodeId) -> bool {
        delegate!(self, e => e.is_offline(id))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        delegate!(self, e => e.len())
    }

    /// True if the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current simulated time.
    pub fn now_ns(&self) -> u64 {
        delegate!(self, e => e.now_ns())
    }

    /// Aggregate counters (merged across shards where applicable).
    pub fn stats(&self) -> SimStats {
        delegate!(self, e => e.stats())
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &N {
        delegate!(self, e => e.node(id))
    }

    /// Mutable access to a node (setup / between-run inspection).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        delegate!(self, e => e.node_mut(id))
    }

    /// Invokes `f` on a node with a live [`Ctx`] at the current time,
    /// then applies the resulting actions.
    pub fn call<R>(&mut self, id: NodeId, f: impl FnOnce(&mut N, &mut Ctx<'_>) -> R) -> R {
        delegate!(self, e => e.call(id, f))
    }

    /// Runs until the queue drains past `deadline_ns`; returns events
    /// processed.
    pub fn run_until(&mut self, deadline_ns: u64) -> u64 {
        delegate!(self, e => e.run_until(deadline_ns))
    }

    /// Runs until idle (or ≈`max_events`, a runaway guard; the sharded
    /// engine checks the budget at window boundaries). Returns events
    /// processed.
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        delegate!(self, e => e.run_to_idle(max_events))
    }
}

/// The common surface of every engine implementation. Harnesses hold an
/// [`AnyEngine`] directly; generic drivers and tests can abstract over
/// implementations with this trait.
pub trait Engine<N: SimNode> {
    /// Number of nodes.
    fn len(&self) -> usize;
    /// True if the simulation has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Current simulated time in nanoseconds.
    fn now_ns(&self) -> u64;
    /// Aggregate counters.
    fn stats(&self) -> SimStats;
    /// Immutable node access.
    fn node(&self, id: NodeId) -> &N;
    /// Mutable node access.
    fn node_mut(&mut self, id: NodeId) -> &mut N;
    /// Sets the (symmetric) link between two nodes.
    fn set_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec);
    /// Crash fault injection.
    fn set_offline(&mut self, id: NodeId, offline: bool);
    /// True while `id` is crashed.
    fn is_offline(&self, id: NodeId) -> bool;
    /// Invokes `f` on a node with a live [`Ctx`], applying its actions.
    fn call<R>(&mut self, id: NodeId, f: impl FnOnce(&mut N, &mut Ctx<'_>) -> R) -> R
    where
        Self: Sized;
    /// Runs until the queue drains past `deadline_ns`.
    fn run_until(&mut self, deadline_ns: u64) -> u64;
    /// Runs until idle or ≈`max_events`.
    fn run_to_idle(&mut self, max_events: u64) -> u64;
}

impl<N: SimNode + Send> Engine<N> for AnyEngine<N> {
    fn len(&self) -> usize {
        AnyEngine::len(self)
    }
    fn now_ns(&self) -> u64 {
        AnyEngine::now_ns(self)
    }
    fn stats(&self) -> SimStats {
        AnyEngine::stats(self)
    }
    fn node(&self, id: NodeId) -> &N {
        AnyEngine::node(self, id)
    }
    fn node_mut(&mut self, id: NodeId) -> &mut N {
        AnyEngine::node_mut(self, id)
    }
    fn set_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        AnyEngine::set_link(self, a, b, spec)
    }
    fn set_offline(&mut self, id: NodeId, offline: bool) {
        AnyEngine::set_offline(self, id, offline)
    }
    fn is_offline(&self, id: NodeId) -> bool {
        AnyEngine::is_offline(self, id)
    }
    fn call<R>(&mut self, id: NodeId, f: impl FnOnce(&mut N, &mut Ctx<'_>) -> R) -> R {
        AnyEngine::call(self, id, f)
    }
    fn run_until(&mut self, deadline_ns: u64) -> u64 {
        AnyEngine::run_until(self, deadline_ns)
    }
    fn run_to_idle(&mut self, max_events: u64) -> u64 {
        AnyEngine::run_to_idle(self, max_events)
    }
}

/// Test-only node used by both engines' unit tests: echoes messages,
/// records receipts and timers, optionally burns CPU.
#[cfg(test)]
pub(crate) mod testutil {
    use super::{Ctx, NodeId, SimNode};

    pub(crate) struct Echo {
        pub(crate) received: Vec<(u64, NodeId, Vec<u8>)>,
        pub(crate) timers: Vec<(u64, u64)>,
        pub(crate) echo: bool,
        pub(crate) cost_ns: u64,
    }

    impl Echo {
        pub(crate) fn new(echo: bool) -> Self {
            Echo {
                received: Vec::new(),
                timers: Vec::new(),
                echo,
                cost_ns: 0,
            }
        }
    }

    impl SimNode for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Vec<u8>) {
            self.received.push((ctx.now_ns(), from, msg.clone()));
            if self.cost_ns > 0 {
                ctx.busy(self.cost_ns);
            }
            if self.echo {
                ctx.send(from, msg);
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.timers.push((ctx.now_ns(), token));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_stats_merge_sums_fields() {
        let a = SimStats {
            messages: 3,
            bytes: 100,
            events: 7,
            dropped: 1,
        };
        let b = SimStats {
            messages: 2,
            bytes: 50,
            events: 4,
            dropped: 0,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(
            m,
            SimStats {
                messages: 5,
                bytes: 150,
                events: 11,
                dropped: 1
            }
        );
        // merged() is merge() as an expression.
        assert_eq!(a.merged(&b), m);
        // Identity element.
        assert_eq!(a.merged(&SimStats::default()), a);
    }

    #[test]
    fn engine_kind_parse() {
        assert_eq!(EngineKind::parse("seq"), Some(EngineKind::Seq));
        assert_eq!(EngineKind::parse(" SEQ "), Some(EngineKind::Seq));
        assert_eq!(
            EngineKind::parse("sharded:4"),
            Some(EngineKind::Sharded { shards: 4 })
        );
        assert_eq!(
            EngineKind::parse("sharded"),
            Some(EngineKind::Sharded { shards: 8 })
        );
        assert_eq!(EngineKind::parse("sharded:0"), None);
        assert_eq!(EngineKind::parse("parallel"), None);
        assert_eq!(EngineKind::Sharded { shards: 4 }.to_string(), "sharded:4");
    }
}
