//! The sharded conservative-parallel engine.
//!
//! Nodes are partitioned round-robin into `S` shards (`node i → shard
//! i mod S`). Each shard owns its nodes' full per-node state — event
//! heap, busy periods, deferred inboxes, per-node RNG lanes and
//! per-connection FIFO clamps — so a window of events can be processed
//! by `S` worker threads with no shared mutable state. Shards
//! synchronize on **conservative lookahead windows**:
//!
//! 1. The coordinator takes the globally earliest pending event time
//!    `T` and opens the window `[T, T + L)`, where the lookahead `L` is
//!    the **per-cut minimum**: the minimum latency over the links that
//!    are *currently cross-shard* under the round-robin partition
//!    (clamped to ≥ 1 ns, see below). Intra-shard links do not bound
//!    the window — a shard processes its own heap strictly in key
//!    order, so a low-latency local hop can never be observed early.
//!    With one shard there is no cut at all and the window is
//!    unbounded. The cut minimum is recomputed only when a link
//!    changes, from the partition arithmetic (`node i → shard i mod
//!    S`), not by scanning pairs per window.
//! 2. Every shard independently processes *all* of its events scheduled
//!    before `T + L`, buffering cross-shard deliveries.
//! 3. At the window barrier the buffered deliveries are merged into the
//!    target shards' heaps, and the next window opens.
//!
//! A cross-shard message sent at time `t ≥ T` travels a cross-shard
//! link, whose sampled delay is at least its configured latency
//! (jitter and serialization are additive) and therefore at least `L`:
//! it arrives at `t + delay ≥ T + L` — outside the current window — so
//! no shard can ever receive an event "in the past": the classic
//! conservative-synchronization argument (Chandy–Misra–Bryant
//! lookahead, here derived from link latency the way the paper's WAN
//! testbed would justify), tightened from the global minimum to the
//! minimum over the cut.
//!
//! # Scheduling: work stealing at the barrier
//!
//! Above a small pending-event threshold, windows fan out to a worker
//! pool of `min(available CPUs, shards)` threads. Workers *claim*
//! shards from a shared atomic counter: a worker that drains a light
//! shard immediately claims the next unclaimed one instead of spinning
//! at the barrier behind a heavy shard. Which worker processes a shard
//! cannot affect results — shards share no mutable state inside a
//! window and the barrier merge orders buffered deliveries by their
//! `(time, origin, seq)` keys — so stealing changes wall-clock only.
//! `TEECHAIN_STEAL=0` (or [`ShardedEngine::set_steal`]) falls back to
//! one thread per shard.
//!
//! # Determinism across shard counts
//!
//! The engine produces bit-for-bit identical results for *any* shard
//! count (including 1), which the integration suite asserts. The
//! argument:
//!
//! * **Per-node total order.** Every event carries the key `(time,
//!   origin node, per-origin seq)`. A node's actions are applied in its
//!   own deterministic handler order, so the key of every event is
//!   independent of the partition. A shard's heap pops its nodes'
//!   events in global key order, and cross-shard arrivals always carry
//!   times beyond anything the target has processed (previous point),
//!   so each node observes its events in the same total order no matter
//!   where its peers live.
//! * **Per-node RNG lanes.** Link jitter is sampled from the *sender's*
//!   lane and handler randomness from the *handling node's* lane, so
//!   the random streams consumed by a node are a function of that
//!   node's own deterministic event sequence — never of thread
//!   interleaving.
//! * **Partition-independent event order.** The per-node total order
//!   above is a function of event keys alone; window boundaries only
//!   decide *when* a pending event is dispatched, never its key or its
//!   relative order at the target node. Widening or narrowing windows —
//!   as the per-cut lookahead does when the shard count changes — can
//!   therefore never change an observable trace. The one
//!   partition-*dependent* artifact is the `run_to_idle` event budget:
//!   it is checked at window granularity (per event for a single shard,
//!   whose window is unbounded), so *where* a run stops when the
//!   runaway guard actually binds may differ across shard counts. The
//!   budget is a backstop against non-quiescing simulations, not a
//!   semantic knob; the determinism suites all use budgets that never
//!   bind.
//! * **Minimum link delay.** Zero-latency ("ideal") links would make
//!   the lookahead zero, and a zero-delay cross-node message could
//!   interleave with the target's same-instant events differently
//!   under different partitions. The sharded engine therefore clamps
//!   every message delay to ≥ 1 ns — a physical link has nonzero
//!   latency — which makes every cross-node event strictly future and
//!   restores the argument. (This is the one visible semantic
//!   difference from the sequential engine on ideal links.)
//!
//! The escape hatch from this guarantee is shared state *outside* the
//! engine: node handlers that mutate a cross-node shared structure
//! (e.g. broadcasting a settlement transaction to the shared
//! blockchain) are serialized by a lock, not by event order. The
//! Teechain workloads keep such operations in the harness-driven setup
//! and settlement phases; the payment hot path touches per-node state
//! only.

use super::queue::{Ev, LaneKey, LaneQueue};
use super::{Action, Ctx, EngineState, EventKind, NodeId, SimNode, SimStats};
use crate::link::LinkSpec;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use teechain_util::rng::{SplitMix64, Xoshiro256};

/// Every sampled message delay is clamped to at least this (see the
/// module docs' determinism argument).
pub const MIN_DELAY_NS: u64 = 1;

/// Below this many queued events a window is processed inline on the
/// calling thread: spawning workers for a handful of events (handshake
/// chatter during setup) costs more than it saves. The threshold only
/// affects wall-clock, never results — both paths run the identical
/// per-shard algorithm.
const PARALLEL_THRESHOLD: usize = 384;

/// Link lookup shared read-only by every worker during a window.
///
/// The table knows the engine's round-robin partition (`node i → shard
/// i mod S`) so it can maintain the **per-cut** lookahead: the minimum
/// clamped latency over links whose endpoints live on *different*
/// shards. Intra-shard links never bound a window (a shard pops its own
/// heap in key order), so a fast local link does not force tiny windows
/// on everyone else.
struct LinkTable {
    links: HashMap<(u32, u32), LinkSpec>,
    default_link: LinkSpec,
    num_nodes: usize,
    num_shards: usize,
    /// Minimum clamped latency over the currently cross-shard links
    /// (the default link included unless every cross pair is
    /// overridden); `u64::MAX` for a single shard, whose cut is empty.
    lookahead: u64,
}

impl LinkTable {
    fn new(default_link: LinkSpec, num_nodes: usize, num_shards: usize) -> Self {
        let mut t = LinkTable {
            links: HashMap::new(),
            default_link,
            num_nodes,
            num_shards,
            lookahead: MIN_DELAY_NS,
        };
        t.recompute();
        t
    }

    fn link_for(&self, a: NodeId, b: NodeId) -> LinkSpec {
        *self.links.get(&(a.0, b.0)).unwrap_or(&self.default_link)
    }

    fn set(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.links.insert((a.0, b.0), spec);
        self.links.insert((b.0, a.0), spec);
        self.recompute();
    }

    /// Recomputes the per-cut lookahead. Called only on topology change
    /// (link overrides are rare), never per window, so the cost of the
    /// override scan is irrelevant; whether the *default* link still
    /// sits on the cut is decided by counting, not enumerating, the
    /// cross pairs.
    fn recompute(&mut self) {
        let (n, s) = (self.num_nodes, self.num_shards);
        if s <= 1 || n <= 1 {
            // No cut: nothing a shard does can surprise another shard.
            self.lookahead = u64::MAX;
            return;
        }
        // Unordered cross-shard pairs under the round-robin partition:
        // all pairs minus the pairs internal to each shard.
        let total_pairs = n * (n - 1) / 2;
        let intra_pairs: usize = (0..s)
            .map(|r| {
                let size = n / s + usize::from(r < n % s);
                size * (size - 1) / 2
            })
            .sum();
        let cross_pairs = total_pairs - intra_pairs;
        let mut l = u64::MAX;
        let mut overridden = 0usize;
        for (&(a, b), spec) in &self.links {
            // Overrides are stored in both orientations; count each
            // unordered pair once.
            if a < b && (a as usize % s) != (b as usize % s) {
                overridden += 1;
                l = l.min(spec.latency_ns.max(MIN_DELAY_NS));
            }
        }
        if overridden < cross_pairs {
            // At least one cross pair still uses the default link.
            l = l.min(self.default_link.latency_ns.max(MIN_DELAY_NS));
        }
        self.lookahead = l;
    }
}

/// Everything one node owns: the node itself, its RNG lane, sequence
/// lane, CPU-queue state and sender-side FIFO clamps.
struct Slot<N> {
    node: N,
    rng: Xoshiro256,
    /// Per-origin event sequence lane (monotone, never reused).
    oseq: u64,
    busy_until: u64,
    inbox: VecDeque<EventKind>,
    wake_scheduled: bool,
    offline: bool,
    /// Last scheduled arrival per destination: links are FIFO
    /// (TCP-like), so jitter never reorders one connection.
    last_arrival: HashMap<u32, u64>,
}

impl<N> Slot<N> {
    fn new(node: N, engine_seed: u64, id: u64) -> Self {
        // Lane seed: decorrelate node lanes from each other and from the
        // sequential engine's global stream.
        let lane =
            SplitMix64::new(engine_seed ^ (id + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
        Slot {
            node,
            rng: Xoshiro256::new(lane),
            oseq: 0,
            busy_until: 0,
            inbox: VecDeque::new(),
            wake_scheduled: false,
            offline: false,
            last_arrival: HashMap::new(),
        }
    }
}

/// One shard: a disjoint subset of nodes plus their event heap.
struct Shard<N> {
    index: usize,
    num_shards: usize,
    slots: Vec<Slot<N>>,
    queue: LaneQueue,
    /// Cross-shard deliveries buffered during a window, indexed by
    /// destination shard; merged at the window barrier. Buffers are
    /// recycled at the barrier (capacity survives the drain) so steady
    /// state allocates nothing here.
    outbound: Vec<Vec<Ev>>,
    /// Action scratch reused across every handler invocation on this
    /// shard — one arena-style allocation instead of a fresh `Vec` per
    /// event.
    scratch: Vec<Action>,
    now: u64,
    stats: SimStats,
}

impl<N: SimNode> Shard<N> {
    fn local(&self, id: NodeId) -> usize {
        id.0 as usize / self.num_shards
    }

    fn route(&mut self, ev: Ev) {
        let dst = ev.kind.target().0 as usize % self.num_shards;
        if dst == self.index {
            self.queue.push(ev);
        } else {
            self.outbound[dst].push(ev);
        }
    }

    /// Applies (and drains) a handler's actions on behalf of `from` at
    /// time `now`. Draining instead of consuming lets the caller keep
    /// the buffer's capacity for the next invocation.
    fn apply_actions(
        &mut self,
        now: u64,
        from: NodeId,
        actions: &mut Vec<Action>,
        links: &LinkTable,
    ) {
        let local = self.local(from);
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    let ev = {
                        let slot = &mut self.slots[local];
                        let link = links.link_for(from, to);
                        let delay = link
                            .sample_delay(msg.len(), &mut slot.rng)
                            .max(MIN_DELAY_NS);
                        // Outputs leave once the node finishes its
                        // accounted processing.
                        let depart = now.max(slot.busy_until);
                        let mut time = depart + delay;
                        let last = slot.last_arrival.entry(to.0).or_insert(0);
                        time = time.max(*last);
                        *last = time;
                        let key = LaneKey {
                            time,
                            origin: from.0,
                            oseq: slot.oseq,
                        };
                        slot.oseq += 1;
                        Ev {
                            key,
                            kind: EventKind::Deliver { to, from, msg },
                        }
                    };
                    self.route(ev);
                }
                Action::Timer { delay_ns, token } => {
                    let slot = &mut self.slots[local];
                    let key = LaneKey {
                        time: now + delay_ns,
                        origin: from.0,
                        oseq: slot.oseq,
                    };
                    slot.oseq += 1;
                    // A timer always targets its own node — same shard.
                    self.queue.push(Ev {
                        key,
                        kind: EventKind::Timer { node: from, token },
                    });
                }
                Action::Busy { ns } => {
                    let slot = &mut self.slots[local];
                    slot.busy_until = slot.busy_until.max(now) + ns;
                }
            }
        }
    }

    /// Runs `f` on a node with a live [`Ctx`] at the shard clock, then
    /// applies the resulting actions.
    fn invoke<R>(
        &mut self,
        id: NodeId,
        links: &LinkTable,
        f: impl FnOnce(&mut N, &mut Ctx<'_>) -> R,
    ) -> R {
        let mut actions = std::mem::take(&mut self.scratch);
        debug_assert!(actions.is_empty());
        let now = self.now;
        let local = self.local(id);
        let r = {
            let slot = &mut self.slots[local];
            let mut ctx = Ctx {
                now,
                self_id: id,
                actions: &mut actions,
                rng: &mut slot.rng,
            };
            f(&mut slot.node, &mut ctx)
        };
        self.apply_actions(now, id, &mut actions, links);
        self.scratch = actions;
        r
    }

    /// Ensures a wake event is scheduled for a node whose inbox holds
    /// deferred events.
    fn ensure_wake(&mut self, node: NodeId) {
        let local = self.local(node);
        let slot = &mut self.slots[local];
        if slot.offline || slot.wake_scheduled || slot.inbox.is_empty() {
            return;
        }
        slot.wake_scheduled = true;
        let key = LaneKey {
            time: slot.busy_until.max(self.now),
            origin: node.0,
            oseq: slot.oseq,
        };
        slot.oseq += 1;
        self.queue.push(Ev {
            key,
            kind: EventKind::Wake { node },
        });
    }

    fn dispatch(&mut self, kind: EventKind, links: &LinkTable) {
        self.stats.events += 1;
        match kind {
            EventKind::Deliver { to, from, msg } => {
                self.stats.messages += 1;
                self.stats.bytes += msg.len() as u64;
                self.invoke(to, links, |node, ctx| node.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, token } => {
                self.invoke(node, links, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::Wake { .. } => unreachable!("wake handled in process_window"),
        }
    }

    /// Processes every local event scheduled strictly before `w_end`,
    /// up to `budget` events. Same per-event semantics as the
    /// sequential engine's `step`. Multi-shard windows pass
    /// `u64::MAX` — stopping a shard mid-window would break the
    /// barrier contract — while the single-shard path (whose one
    /// window is unbounded) uses the budget to honor `run_to_idle`'s
    /// runaway guard per event.
    fn process_window(&mut self, w_end: u64, links: &LinkTable, budget: u64) -> u64 {
        let mut processed = 0;
        while processed < budget {
            let Some(ev) = self.queue.pop_before(w_end) else {
                break;
            };
            processed += 1;
            self.now = self.now.max(ev.key.time);
            let node = ev.kind.target();
            let local = self.local(node);
            if self.slots[local].offline {
                // The machine is down: in-flight traffic and timers die.
                if let EventKind::Wake { .. } = ev.kind {
                    self.slots[local].wake_scheduled = false;
                } else {
                    self.stats.dropped += 1;
                }
                continue;
            }
            if let EventKind::Wake { .. } = ev.kind {
                self.slots[local].wake_scheduled = false;
                if self.slots[local].busy_until > self.now {
                    // Busy period was extended after the wake was set.
                    self.ensure_wake(node);
                } else if let Some(deferred) = self.slots[local].inbox.pop_front() {
                    self.dispatch(deferred, links);
                    self.ensure_wake(node);
                }
                continue;
            }
            // A busy node defers the event into its inbox (single-server
            // queue); a free node with a non-empty inbox must also defer
            // to preserve per-connection FIFO.
            if self.slots[local].busy_until > self.now || !self.slots[local].inbox.is_empty() {
                self.slots[local].inbox.push_back(ev.kind);
                self.ensure_wake(node);
                continue;
            }
            self.dispatch(ev.kind, links);
            self.ensure_wake(node);
        }
        processed
    }
}

/// The sharded conservative-parallel engine (see module docs).
pub struct ShardedEngine<N> {
    shards: Vec<Shard<N>>,
    num_nodes: usize,
    links: LinkTable,
    now: u64,
    seed: u64,
    /// Counters carried over from an engine conversion.
    base_stats: SimStats,
    started: bool,
    /// Host CPUs available for window fan-out (cached once).
    workers: usize,
    /// Claim-based work stealing on the window fan-out (scheduling
    /// only — results are identical either way).
    steal: bool,
}

impl<N: SimNode + Send> ShardedEngine<N> {
    /// Creates an engine over `nodes` partitioned into `shards` shards
    /// (clamped to `1..=nodes.len()`).
    pub fn new(nodes: Vec<N>, default_link: LinkSpec, seed: u64, shards: usize) -> Self {
        let num_nodes = nodes.len();
        let s = shards.clamp(1, num_nodes.max(1));
        let mut built: Vec<Shard<N>> = (0..s)
            .map(|index| Shard {
                index,
                num_shards: s,
                slots: Vec::new(),
                queue: LaneQueue::new(),
                outbound: (0..s).map(|_| Vec::new()).collect(),
                scratch: Vec::new(),
                now: 0,
                stats: SimStats::default(),
            })
            .collect();
        for (i, node) in nodes.into_iter().enumerate() {
            built[i % s].slots.push(Slot::new(node, seed, i as u64));
        }
        ShardedEngine {
            shards: built,
            num_nodes,
            links: LinkTable::new(default_link, num_nodes, s),
            now: 0,
            seed,
            base_stats: SimStats::default(),
            started: false,
            workers: std::thread::available_parallelism().map_or(1, |p| p.get()),
            steal: std::env::var("TEECHAIN_STEAL").map_or(true, |v| v != "0"),
        }
    }

    /// Rebuilds from a quiescent snapshot (see `AnyEngine::into_kind`).
    /// RNG lanes restart from the seed.
    pub(crate) fn from_state(state: EngineState<N>, shards: usize) -> Self {
        let mut engine = ShardedEngine::new(state.nodes, state.default_link, state.seed, shards);
        let s = engine.shards.len();
        for (i, busy) in state.busy_until.iter().enumerate() {
            engine.shards[i % s].slots[i / s].busy_until = *busy;
        }
        for (i, off) in state.offline.iter().enumerate() {
            engine.shards[i % s].slots[i / s].offline = *off;
        }
        for ((src, dst), t) in state.last_arrival {
            engine.shards[src as usize % s].slots[src as usize / s]
                .last_arrival
                .insert(dst, t);
        }
        for ((a, b), spec) in state.links {
            // Insert raw (recompute once below): set() would recompute
            // the lookahead per entry.
            engine.links.links.insert((a, b), spec);
        }
        engine.links.recompute();
        for shard in &mut engine.shards {
            shard.now = state.now;
        }
        engine.now = state.now;
        engine.base_stats = state.stats;
        engine.started = state.started;
        engine
    }

    /// Tears a **quiescent** engine down to the engine-independent
    /// snapshot.
    ///
    /// # Panics
    ///
    /// Panics if events are still queued or deferred.
    pub(crate) fn into_state(self) -> EngineState<N> {
        assert!(
            self.shards.iter().all(|sh| sh.queue.is_empty()
                && sh.slots.iter().all(|sl| sl.inbox.is_empty())
                && sh.outbound.iter().all(|o| o.is_empty())),
            "engine conversion requires a quiescent simulation \
             (run_to_idle first)"
        );
        let stats = self.stats();
        let s = self.shards.len();
        let n = self.num_nodes;
        let mut nodes: Vec<Option<N>> = (0..n).map(|_| None).collect();
        let mut busy_until = vec![0u64; n];
        let mut offline = vec![false; n];
        let mut last_arrival = HashMap::new();
        for (si, shard) in self.shards.into_iter().enumerate() {
            for (li, slot) in shard.slots.into_iter().enumerate() {
                let gid = li * s + si;
                busy_until[gid] = slot.busy_until;
                offline[gid] = slot.offline;
                for (dst, t) in slot.last_arrival {
                    last_arrival.insert((gid as u32, dst), t);
                }
                nodes[gid] = Some(slot.node);
            }
        }
        EngineState {
            nodes: nodes
                .into_iter()
                .map(|n| n.expect("every id filled"))
                .collect(),
            busy_until,
            offline,
            links: self.links.links,
            default_link: self.links.default_link,
            last_arrival,
            now: self.now,
            seed: self.seed,
            stats,
            started: self.started,
        }
    }

    /// Number of shards (worker lanes).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The conservative lookahead: the minimum clamped latency over the
    /// currently cross-shard links (`u64::MAX` for a single shard,
    /// whose cut is empty).
    pub fn lookahead_ns(&self) -> u64 {
        self.links.lookahead
    }

    /// Forces window work stealing on or off, overriding the
    /// `TEECHAIN_STEAL` environment default (on). Pure scheduling
    /// knob: results are bit-for-bit identical either way, which the
    /// determinism suites assert.
    pub fn set_steal(&mut self, steal: bool) {
        self.steal = steal;
    }

    /// Sets the (symmetric) link between two nodes.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.links.set(a, b, spec);
    }

    /// Takes a node down or brings it back up (crash fault injection).
    pub fn set_offline(&mut self, id: NodeId, offline: bool) {
        let s = self.shards.len();
        let shard = &mut self.shards[id.0 as usize % s];
        let local = shard.local(id);
        if offline {
            shard.stats.dropped += shard.slots[local].inbox.len() as u64;
            shard.slots[local].inbox.clear();
        }
        shard.slots[local].offline = offline;
    }

    /// True while `id` is crashed.
    pub fn is_offline(&self, id: NodeId) -> bool {
        let s = self.shards.len();
        let shard = &self.shards[id.0 as usize % s];
        shard.slots[shard.local(id)].offline
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.num_nodes
    }

    /// True if the engine has no nodes.
    pub fn is_empty(&self) -> bool {
        self.num_nodes == 0
    }

    /// Current simulated time.
    pub fn now_ns(&self) -> u64 {
        self.now
    }

    /// Aggregate counters, merged across shards.
    pub fn stats(&self) -> SimStats {
        self.shards
            .iter()
            .fold(self.base_stats, |acc, sh| acc.merged(&sh.stats))
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &N {
        let s = self.shards.len();
        let shard = &self.shards[id.0 as usize % s];
        &shard.slots[shard.local(id)].node
    }

    /// Mutable access to a node (setup / between-run inspection).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        let s = self.shards.len();
        let shard = &mut self.shards[id.0 as usize % s];
        let local = shard.local(id);
        &mut shard.slots[local].node
    }

    /// Invokes `f` on a node with a live [`Ctx`] at the current time,
    /// then applies any resulting actions.
    pub fn call<R>(&mut self, id: NodeId, f: impl FnOnce(&mut N, &mut Ctx<'_>) -> R) -> R {
        let s = self.shards.len();
        let si = id.0 as usize % s;
        self.shards[si].now = self.now;
        let r = self.shards[si].invoke(id, &self.links, f);
        self.exchange();
        r
    }

    /// Moves buffered cross-shard deliveries into their target heaps.
    /// Buffers go back where they came from so their capacity is
    /// reused next window.
    fn exchange(&mut self) {
        let s = self.shards.len();
        for src in 0..s {
            for dst in 0..s {
                if src == dst || self.shards[src].outbound[dst].is_empty() {
                    continue;
                }
                let mut evs = std::mem::take(&mut self.shards[src].outbound[dst]);
                self.shards[dst].queue.extend(evs.drain(..));
                self.shards[src].outbound[dst] = evs;
            }
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.num_nodes {
            let id = NodeId(i as u32);
            self.call(id, |node, ctx| node.on_start(ctx));
        }
    }

    /// Processes one lookahead window ending (exclusively) at `w_end`,
    /// in parallel when enough work is queued. `budget` caps events for
    /// the single-shard path only (see [`Shard::process_window`]).
    /// Returns events processed.
    fn run_window(&mut self, w_end: u64, budget: u64) -> u64 {
        let pending: usize = self.shards.iter().map(|sh| sh.queue.len()).sum();
        let steal = self.steal;
        let workers = self.workers.min(self.shards.len());
        let links = &self.links;
        let shards = &mut self.shards;
        let processed: u64 = if shards.len() == 1 {
            // One shard has no barrier to honor, so the event budget
            // can bind mid-window (its single window is unbounded).
            shards[0].process_window(w_end, links, budget)
        } else if pending < PARALLEL_THRESHOLD || workers <= 1 {
            // Handshake trickle, or nothing to gain from threads.
            shards
                .iter_mut()
                .map(|shard| shard.process_window(w_end, links, u64::MAX))
                .sum()
        } else if steal {
            // Claim-based pool: each worker grabs the next unclaimed
            // shard, so a worker that drains a light shard takes over a
            // waiting one instead of idling at the barrier. Claims are
            // unique (fetch_add), so each mutex is locked exactly once
            // — it exists to loan `&mut Shard` across threads, not to
            // arbitrate contention.
            let tasks: Vec<Mutex<&mut Shard<N>>> = shards.iter_mut().map(Mutex::new).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut done = 0u64;
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(task) = tasks.get(i) else {
                                    break;
                                };
                                let mut shard = task.lock().expect("claimed shard");
                                done += shard.process_window(w_end, links, u64::MAX);
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .sum()
            })
        } else {
            // Stealing disabled: one dedicated thread per shard.
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .map(|shard| scope.spawn(move || shard.process_window(w_end, links, u64::MAX)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .sum()
            })
        };
        self.exchange();
        processed
    }

    /// The window loop: picks the global minimum pending time, opens the
    /// lookahead window, fans out, merges, repeats.
    fn drive(&mut self, deadline: Option<u64>, max_events: u64) -> u64 {
        self.start_if_needed();
        let mut total: u64 = 0;
        while total < max_events {
            let Some(t_min) = self
                .shards
                .iter()
                .filter_map(|sh| sh.queue.next_time())
                .min()
            else {
                break;
            };
            if t_min == u64::MAX || deadline.is_some_and(|d| t_min > d) {
                break;
            }
            let mut w_end = t_min.saturating_add(self.links.lookahead);
            if let Some(d) = deadline {
                w_end = w_end.min(d.saturating_add(1));
            }
            total += self.run_window(w_end, max_events - total);
        }
        let frontier = self.shards.iter().map(|sh| sh.now).max().unwrap_or(0);
        self.now = self.now.max(frontier);
        total
    }

    /// Runs until the queue drains or `deadline_ns` passes. Returns the
    /// number of events processed.
    pub fn run_until(&mut self, deadline_ns: u64) -> u64 {
        let processed = self.drive(Some(deadline_ns), u64::MAX);
        self.now = self.now.max(deadline_ns);
        processed
    }

    /// Runs until the event queue is empty, or approximately `max_events`
    /// were processed (a runaway guard). With multiple shards the budget
    /// is checked at window boundaries and can overshoot by up to one
    /// window; with a single shard — whose one window is unbounded — it
    /// binds per event, exactly like the sequential engine. Returns the
    /// number of events processed.
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        self.drive(None, max_events)
    }
}

impl<N: SimNode + Send> super::Engine<N> for ShardedEngine<N> {
    fn len(&self) -> usize {
        ShardedEngine::len(self)
    }
    fn now_ns(&self) -> u64 {
        ShardedEngine::now_ns(self)
    }
    fn stats(&self) -> SimStats {
        ShardedEngine::stats(self)
    }
    fn node(&self, id: NodeId) -> &N {
        ShardedEngine::node(self, id)
    }
    fn node_mut(&mut self, id: NodeId) -> &mut N {
        ShardedEngine::node_mut(self, id)
    }
    fn set_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        ShardedEngine::set_link(self, a, b, spec)
    }
    fn set_offline(&mut self, id: NodeId, offline: bool) {
        ShardedEngine::set_offline(self, id, offline)
    }
    fn is_offline(&self, id: NodeId) -> bool {
        ShardedEngine::is_offline(self, id)
    }
    fn call<R>(&mut self, id: NodeId, f: impl FnOnce(&mut N, &mut Ctx<'_>) -> R) -> R {
        ShardedEngine::call(self, id, f)
    }
    fn run_until(&mut self, deadline_ns: u64) -> u64 {
        ShardedEngine::run_until(self, deadline_ns)
    }
    fn run_to_idle(&mut self, max_events: u64) -> u64 {
        ShardedEngine::run_to_idle(self, max_events)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Echo;
    use super::super::{AnyEngine, EngineKind};
    use super::*;
    use crate::MS;

    /// A mixed scenario: jittery links, per-link overrides, CPU costs,
    /// echo cascades, timers and a crash/recovery — run at a given shard
    /// count, returning a full fingerprint of everything observable.
    #[allow(clippy::type_complexity)]
    fn scenario(
        shards: usize,
    ) -> (
        Vec<Vec<(u64, NodeId, Vec<u8>)>>,
        Vec<Vec<(u64, u64)>>,
        SimStats,
        u64,
    ) {
        let default = LinkSpec {
            latency_ns: 2 * MS,
            jitter_frac: 0.10,
            bandwidth_bps: Some(100_000_000),
        };
        let n = 6;
        let nodes: Vec<Echo> = (0..n).map(|i| Echo::new(i % 2 == 1)).collect();
        let mut sim = ShardedEngine::new(nodes, default, 42, shards);
        sim.set_link(
            NodeId(0),
            NodeId(3),
            LinkSpec {
                latency_ns: 7 * MS,
                jitter_frac: 0.05,
                bandwidth_bps: None,
            },
        );
        for i in 0..n as u32 {
            sim.node_mut(NodeId(i)).cost_ns = (i as u64) * 300_000;
        }
        for i in 0..n as u32 {
            sim.call(NodeId(i), |_, ctx| {
                for k in 0..5u8 {
                    ctx.send(NodeId((i + 1) % n as u32), vec![i as u8, k]);
                    ctx.send(NodeId((i + 2) % n as u32), vec![i as u8, k, k]);
                }
                ctx.set_timer(((i as u64) + 1) * MS, i as u64);
            });
        }
        sim.run_until(9 * MS);
        sim.set_offline(NodeId(4), true);
        sim.call(NodeId(1), |_, ctx| ctx.send(NodeId(4), b"lost".to_vec()));
        sim.run_until(15 * MS);
        sim.set_offline(NodeId(4), false);
        sim.call(NodeId(1), |_, ctx| ctx.send(NodeId(4), b"back".to_vec()));
        sim.run_to_idle(100_000);
        let received = (0..n as u32)
            .map(|i| sim.node(NodeId(i)).received.clone())
            .collect();
        let timers = (0..n as u32)
            .map(|i| sim.node(NodeId(i)).timers.clone())
            .collect();
        (received, timers, sim.stats(), sim.now_ns())
    }

    #[test]
    fn identical_results_for_any_shard_count() {
        let baseline = scenario(1);
        for shards in [2, 3, 6, 8] {
            let run = scenario(shards);
            assert_eq!(
                run.0, baseline.0,
                "received traces differ at {shards} shards"
            );
            assert_eq!(run.1, baseline.1, "timer traces differ at {shards} shards");
            assert_eq!(run.2, baseline.2, "stats differ at {shards} shards");
            assert_eq!(run.3, baseline.3, "clock differs at {shards} shards");
        }
    }

    #[test]
    fn ideal_links_are_clamped_to_min_delay() {
        let mut sim = ShardedEngine::new(
            vec![Echo::new(false), Echo::new(false)],
            LinkSpec::ideal(),
            1,
            2,
        );
        assert_eq!(sim.lookahead_ns(), MIN_DELAY_NS);
        sim.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), b"x".to_vec()));
        sim.run_to_idle(10);
        // A "zero-latency" hop takes the 1 ns physical minimum.
        assert_eq!(sim.node(NodeId(1)).received[0].0, MIN_DELAY_NS);
    }

    #[test]
    fn lookahead_uses_only_cross_shard_links() {
        // Hub-spoke-ish layout at 2 shards: nodes {0,2} share shard 0,
        // {1,3} share shard 1. A fast link *inside* a shard must not
        // narrow the window; only cross-shard links sit on the cut.
        let default = LinkSpec {
            latency_ns: 5 * MS,
            jitter_frac: 0.0,
            bandwidth_bps: None,
        };
        let nodes: Vec<Echo> = (0..4).map(|_| Echo::new(false)).collect();
        let mut sim = ShardedEngine::new(nodes, default, 3, 2);
        assert_eq!(sim.lookahead_ns(), 5 * MS);
        // Intra-shard override (0 and 2 both map to shard 0): the
        // per-cut lookahead stays at the default — strictly wider than
        // the global minimum (1 ns) the old derivation would pick.
        sim.set_link(NodeId(0), NodeId(2), LinkSpec::ideal());
        assert_eq!(sim.lookahead_ns(), 5 * MS);
        // A cross-shard override does tighten the window.
        let cross = LinkSpec {
            latency_ns: 2 * MS,
            jitter_frac: 0.0,
            bandwidth_bps: None,
        };
        sim.set_link(NodeId(0), NodeId(1), cross);
        assert_eq!(sim.lookahead_ns(), 2 * MS);
        // One shard has an empty cut: the window is unbounded.
        let nodes: Vec<Echo> = (0..4).map(|_| Echo::new(false)).collect();
        let solo = ShardedEngine::new(nodes, default, 3, 1);
        assert_eq!(solo.lookahead_ns(), u64::MAX);
    }

    #[test]
    fn single_shard_budget_binds_per_event() {
        // The single-shard window is unbounded, so run_to_idle's guard
        // must bind inside the window, exactly like the sequential
        // engine.
        let link = LinkSpec {
            latency_ns: MS,
            jitter_frac: 0.0,
            bandwidth_bps: None,
        };
        let mut sim = ShardedEngine::new(vec![Echo::new(true), Echo::new(true)], link, 1, 1);
        // Two echo nodes bounce forever; without the in-window budget
        // this would never return.
        sim.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), b"ping".to_vec()));
        assert_eq!(sim.run_to_idle(25), 25);
    }

    #[test]
    fn stealing_matches_dedicated_workers() {
        // Same workload with the claim-based pool forced on and off:
        // traces and stats must be bit-for-bit identical (stealing is
        // scheduling only).
        let link = LinkSpec {
            latency_ns: MS,
            jitter_frac: 0.2,
            bandwidth_bps: None,
        };
        let run = |steal: bool| {
            let nodes: Vec<Echo> = (0..8).map(|i| Echo::new(i % 2 == 1)).collect();
            let mut sim = ShardedEngine::new(nodes, link, 13, 4);
            sim.set_steal(steal);
            for i in 0..8u32 {
                sim.call(NodeId(i), |_, ctx| {
                    for k in 0..150u16 {
                        ctx.send(NodeId((i + 3) % 8), k.to_le_bytes().to_vec());
                    }
                });
            }
            sim.run_to_idle(1_000_000);
            let trace: Vec<_> = (0..8u32)
                .map(|i| sim.node(NodeId(i)).received.clone())
                .collect();
            (trace, sim.stats(), sim.now_ns())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn per_connection_fifo_under_jitter() {
        let link = LinkSpec {
            latency_ns: MS,
            jitter_frac: 0.5,
            bandwidth_bps: None,
        };
        for shards in [1, 2] {
            let mut sim =
                ShardedEngine::new(vec![Echo::new(false), Echo::new(false)], link, 7, shards);
            sim.call(NodeId(0), |_, ctx| {
                for k in 0..50u8 {
                    ctx.send(NodeId(1), vec![k]);
                }
            });
            sim.run_to_idle(1000);
            let seen: Vec<u8> = sim
                .node(NodeId(1))
                .received
                .iter()
                .map(|(_, _, m)| m[0])
                .collect();
            assert_eq!(seen, (0..50u8).collect::<Vec<_>>(), "{shards} shards");
        }
    }

    #[test]
    fn busy_node_defers_like_sequential_engine() {
        // 1 ms links (no clamping distortion): service times must serialize.
        let link = LinkSpec {
            latency_ns: MS,
            jitter_frac: 0.0,
            bandwidth_bps: None,
        };
        let mut sim = ShardedEngine::new(vec![Echo::new(false), Echo::new(false)], link, 1, 2);
        sim.node_mut(NodeId(1)).cost_ns = 10 * MS;
        sim.call(NodeId(0), |_, ctx| {
            ctx.send(NodeId(1), b"a".to_vec());
            ctx.send(NodeId(1), b"b".to_vec());
            ctx.send(NodeId(1), b"c".to_vec());
        });
        sim.run_to_idle(100);
        let times: Vec<u64> = sim.node(NodeId(1)).received.iter().map(|r| r.0).collect();
        assert_eq!(times, vec![MS, 11 * MS, 21 * MS]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let link = LinkSpec {
            latency_ns: MS,
            jitter_frac: 0.0,
            bandwidth_bps: None,
        };
        let mut sim = ShardedEngine::new(vec![Echo::new(false), Echo::new(false)], link, 1, 2);
        sim.call(NodeId(0), |_, ctx| {
            ctx.set_timer(5 * MS, 1);
            ctx.set_timer(50 * MS, 2);
        });
        sim.run_until(20 * MS);
        assert_eq!(sim.node(NodeId(0)).timers.len(), 1);
        assert_eq!(sim.now_ns(), 20 * MS);
        sim.run_to_idle(100);
        assert_eq!(sim.node(NodeId(0)).timers.len(), 2);
    }

    #[test]
    fn threaded_windows_match_inline_windows() {
        // Enough pending events to cross PARALLEL_THRESHOLD and exercise
        // the worker-thread path; results must match a 1-shard run.
        let link = LinkSpec {
            latency_ns: MS,
            jitter_frac: 0.2,
            bandwidth_bps: None,
        };
        let run = |shards: usize| {
            let nodes: Vec<Echo> = (0..4).map(|i| Echo::new(i % 2 == 1)).collect();
            let mut sim = ShardedEngine::new(nodes, link, 9, shards);
            for i in 0..4u32 {
                sim.call(NodeId(i), |_, ctx| {
                    for k in 0..200u16 {
                        ctx.send(NodeId((i + 1) % 4), k.to_le_bytes().to_vec());
                    }
                });
            }
            sim.run_to_idle(1_000_000);
            let trace: Vec<_> = (0..4u32)
                .map(|i| sim.node(NodeId(i)).received.clone())
                .collect();
            (trace, sim.stats())
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn conversion_between_engines_preserves_world() {
        let link = LinkSpec {
            latency_ns: MS,
            jitter_frac: 0.0,
            bandwidth_bps: None,
        };
        let mut seq: AnyEngine<Echo> = AnyEngine::new(
            EngineKind::Seq,
            vec![Echo::new(false), Echo::new(true), Echo::new(false)],
            link,
            5,
        );
        seq.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), b"hello".to_vec()));
        seq.run_to_idle(100);
        let stats = seq.stats();
        let now = seq.now_ns();

        // Convert at quiescence and continue under the sharded engine:
        // history, clock and counters carry over.
        let mut sharded = seq.into_kind(EngineKind::Sharded { shards: 2 });
        assert_eq!(sharded.kind(), EngineKind::Sharded { shards: 2 });
        assert_eq!(sharded.now_ns(), now);
        assert_eq!(sharded.stats(), stats);
        assert_eq!(sharded.node(NodeId(1)).received.len(), 1);
        sharded.call(NodeId(0), |_, ctx| ctx.send(NodeId(2), b"more".to_vec()));
        sharded.run_to_idle(100);
        assert_eq!(sharded.node(NodeId(2)).received.len(), 1);
        assert_eq!(sharded.stats().messages, stats.messages + 1);

        // And back to sequential.
        let back = sharded.into_kind(EngineKind::Seq);
        assert_eq!(back.kind(), EngineKind::Seq);
        assert_eq!(back.node(NodeId(2)).received.len(), 1);
    }

    #[test]
    fn shard_count_does_not_change_converted_continuation() {
        // Continuing a converted quiescent world must agree across shard
        // counts too (this is the scale benchmark's usage pattern).
        let link = LinkSpec {
            latency_ns: 2 * MS,
            jitter_frac: 0.1,
            bandwidth_bps: None,
        };
        let continue_at = |shards: usize| {
            let mut seq: AnyEngine<Echo> = AnyEngine::new(
                EngineKind::Seq,
                (0..5).map(|i| Echo::new(i % 2 == 1)).collect(),
                link,
                11,
            );
            seq.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), b"setup".to_vec()));
            seq.run_to_idle(100);
            let mut sim = seq.into_kind(EngineKind::Sharded { shards });
            for i in 0..5u32 {
                sim.call(NodeId(i), |_, ctx| {
                    for k in 0..8u8 {
                        ctx.send(NodeId((i + 2) % 5), vec![k]);
                    }
                });
            }
            // Odd echo pairs ping-pong forever, so bound by *time*, not
            // by event budget: where a binding budget stops is window-
            // granular and thus partition-dependent (see module docs).
            sim.run_until(80 * MS);
            let trace: Vec<_> = (0..5u32)
                .map(|i| sim.node(NodeId(i)).received.clone())
                .collect();
            (trace, sim.stats(), sim.now_ns())
        };
        let base = continue_at(1);
        assert_eq!(continue_at(2), base);
        assert_eq!(continue_at(5), base);
    }
}
