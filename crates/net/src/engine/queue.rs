//! Event-queue building blocks shared by the engine implementations.
//!
//! The sequential engine orders events by `EventKey` `(time, global
//! seq)` — creation order breaks ties, which is well-defined because one
//! thread creates every event. The sharded engine cannot use a global
//! counter (shards would race for it), so it orders by `LaneKey`
//! `(time, origin node, per-origin seq)`: each node allocates sequence
//! numbers from its own lane, and since any one node's actions are
//! applied in a deterministic order, the key of every event is
//! independent of how nodes are partitioned into shards.

use super::EventKind;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Sequential-engine ordering key: global creation order breaks ties.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventKey {
    pub(crate) time: u64,
    pub(crate) seq: u64,
}

/// Sharded-engine ordering key: `(time, origin, per-origin seq)`.
/// Globally unique (a lane never reuses a sequence number), so heap
/// insertion order can never influence pop order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct LaneKey {
    pub(crate) time: u64,
    pub(crate) origin: u32,
    pub(crate) oseq: u64,
}

/// An event with its lane key and its body stored inline — the sharded
/// engine carries no side table, which is also what makes it cheaper per
/// event than the sequential engine's `HashMap` indirection.
pub(crate) struct Ev {
    pub(crate) key: LaneKey,
    pub(crate) kind: EventKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest key
        // on top without wrapping every element in `Reverse`.
        other.key.cmp(&self.key)
    }
}

/// A min-heap of [`Ev`]s (earliest [`LaneKey`] first).
#[derive(Default)]
pub(crate) struct LaneQueue {
    heap: BinaryHeap<Ev>,
}

impl LaneQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, ev: Ev) {
        self.heap.push(ev);
    }

    pub(crate) fn extend(&mut self, evs: impl IntoIterator<Item = Ev>) {
        self.heap.extend(evs);
    }

    /// Earliest queued event time, if any.
    pub(crate) fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|ev| ev.key.time)
    }

    /// Pops the earliest event if it is scheduled strictly before
    /// `bound` — the window-processing primitive.
    pub(crate) fn pop_before(&mut self, bound: u64) -> Option<Ev> {
        if self.heap.peek()?.key.time < bound {
            self.heap.pop()
        } else {
            None
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn ev(time: u64, origin: u32, oseq: u64) -> Ev {
        Ev {
            key: LaneKey { time, origin, oseq },
            kind: EventKind::Timer {
                node: NodeId(origin),
                token: oseq,
            },
        }
    }

    #[test]
    fn pops_in_time_origin_seq_order() {
        let mut q = LaneQueue::new();
        q.push(ev(5, 2, 0));
        q.push(ev(5, 1, 9));
        q.push(ev(3, 7, 4));
        q.push(ev(5, 1, 3));
        let mut keys = Vec::new();
        while let Some(e) = q.pop_before(u64::MAX) {
            keys.push((e.key.time, e.key.origin, e.key.oseq));
        }
        assert_eq!(keys, vec![(3, 7, 4), (5, 1, 3), (5, 1, 9), (5, 2, 0)]);
    }

    #[test]
    fn pop_before_respects_bound() {
        let mut q = LaneQueue::new();
        q.push(ev(10, 0, 0));
        q.push(ev(20, 0, 1));
        assert!(q.pop_before(10).is_none());
        assert!(q.pop_before(11).is_some());
        assert_eq!(q.next_time(), Some(20));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn insertion_order_never_matters() {
        // Keys are unique, so any permutation of pushes pops identically.
        let evs = [(4u64, 1u32, 0u64), (4, 0, 1), (2, 9, 9), (4, 0, 0)];
        let expect = vec![(2, 9, 9), (4, 0, 0), (4, 0, 1), (4, 1, 0)];
        // Try a few rotations of the insertion order.
        for rot in 0..evs.len() {
            let mut q = LaneQueue::new();
            for i in 0..evs.len() {
                let (t, o, s) = evs[(i + rot) % evs.len()];
                q.push(ev(t, o, s));
            }
            let mut got = Vec::new();
            while let Some(e) = q.pop_before(u64::MAX) {
                got.push((e.key.time, e.key.origin, e.key.oseq));
            }
            assert_eq!(got, expect);
        }
    }
}
