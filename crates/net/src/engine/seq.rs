//! The sequential discrete-event engine — the original `Simulator`.
//!
//! One binary heap orders every event by `(time, global seq)`; ties go to
//! creation order. Semantics are unchanged from the pre-refactor
//! `sim.rs`, so the calibrated suite keeps its exact timings.

use super::queue::EventKey;
use super::{Action, Ctx, EngineState, EventKind, NodeId, SimNode, SimStats};
use crate::link::LinkSpec;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use teechain_util::rng::Xoshiro256;

/// The sequential engine: owns all nodes, links and one event queue.
pub struct SeqEngine<N> {
    nodes: Vec<N>,
    busy_until: Vec<u64>,
    inbox: Vec<std::collections::VecDeque<EventKind>>,
    wake_scheduled: Vec<bool>,
    /// Crash fault injection: while a node is offline, every message and
    /// timer targeting it is dropped (the machine is down; TCP
    /// connections to it fail). Its volatile state is the owner's
    /// problem — see `teechain::testkit::Cluster::crash_node`.
    offline: Vec<bool>,
    links: HashMap<(u32, u32), LinkSpec>,
    /// Last scheduled arrival per (src, dst): links are FIFO (TCP-like),
    /// so jitter never reorders messages within one connection.
    last_arrival: HashMap<(u32, u32), u64>,
    default_link: LinkSpec,
    queue: BinaryHeap<Reverse<EventKey>>,
    events: HashMap<u64, EventKind>,
    now: u64,
    seq: u64,
    seed: u64,
    rng: Xoshiro256,
    stats: SimStats,
    started: bool,
}

impl<N: SimNode> SeqEngine<N> {
    /// Creates an engine over `nodes` with the given default link.
    pub fn new(nodes: Vec<N>, default_link: LinkSpec, seed: u64) -> Self {
        let n = nodes.len();
        Self {
            nodes,
            busy_until: vec![0; n],
            inbox: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
            wake_scheduled: vec![false; n],
            offline: vec![false; n],
            links: HashMap::new(),
            last_arrival: HashMap::new(),
            default_link,
            queue: BinaryHeap::new(),
            events: HashMap::new(),
            now: 0,
            seq: 0,
            seed,
            rng: Xoshiro256::new(seed),
            stats: SimStats::default(),
            started: false,
        }
    }

    /// Rebuilds a sequential engine from a quiescent snapshot (see
    /// `AnyEngine::into_kind`). The global RNG stream restarts from the
    /// seed.
    pub(crate) fn from_state(state: EngineState<N>) -> Self {
        let n = state.nodes.len();
        Self {
            nodes: state.nodes,
            busy_until: state.busy_until,
            inbox: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
            wake_scheduled: vec![false; n],
            offline: state.offline,
            links: state.links,
            last_arrival: state.last_arrival,
            default_link: state.default_link,
            queue: BinaryHeap::new(),
            events: HashMap::new(),
            now: state.now,
            seq: 0,
            seed: state.seed,
            rng: Xoshiro256::new(state.seed),
            stats: state.stats,
            started: state.started,
        }
    }

    /// Tears a **quiescent** engine down to the engine-independent
    /// snapshot.
    ///
    /// # Panics
    ///
    /// Panics if events are still queued or deferred.
    pub(crate) fn into_state(self) -> EngineState<N> {
        assert!(
            self.queue.is_empty() && self.inbox.iter().all(|q| q.is_empty()),
            "engine conversion requires a quiescent simulation \
             (run_to_idle first)"
        );
        EngineState {
            nodes: self.nodes,
            busy_until: self.busy_until,
            offline: self.offline,
            links: self.links,
            default_link: self.default_link,
            last_arrival: self.last_arrival,
            now: self.now,
            seed: self.seed,
            stats: self.stats,
            started: self.started,
        }
    }

    /// Sets the (symmetric) link between two nodes.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.links.insert((a.0, b.0), spec);
        self.links.insert((b.0, a.0), spec);
    }

    /// Takes a node down or brings it back up (crash fault injection).
    /// While down, every message and timer targeting the node is dropped
    /// and its deferred inbox is discarded — exactly what a machine
    /// losing power does to in-flight traffic. Bringing the node back up
    /// restores delivery only; recovering its *state* is the node
    /// owner's job (e.g. WAL replay).
    pub fn set_offline(&mut self, id: NodeId, offline: bool) {
        let idx = id.0 as usize;
        if offline {
            self.stats.dropped += self.inbox[idx].len() as u64;
            self.inbox[idx].clear();
        }
        self.offline[idx] = offline;
    }

    /// True while `id` is crashed.
    pub fn is_offline(&self, id: NodeId) -> bool {
        self.offline[id.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the simulator has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current simulated time.
    pub fn now_ns(&self) -> u64 {
        self.now
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Immutable access to a node (for assertions and result collection).
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a node. Intended for setup and for harness-driven
    /// actions *between* event processing; effects take place at the
    /// current simulation time via [`SeqEngine::call`].
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0 as usize]
    }

    /// Invokes `f` on a node with a live [`Ctx`] at the current time, then
    /// applies any resulting actions. This is how external drivers (the
    /// benchmark harness, examples) inject work.
    pub fn call<R>(&mut self, id: NodeId, f: impl FnOnce(&mut N, &mut Ctx<'_>) -> R) -> R {
        let mut actions = Vec::new();
        let r = {
            let mut ctx = Ctx {
                now: self.now,
                self_id: id,
                actions: &mut actions,
                rng: &mut self.rng,
            };
            f(&mut self.nodes[id.0 as usize], &mut ctx)
        };
        self.apply_actions(id, actions);
        r
    }

    fn link_for(&self, a: NodeId, b: NodeId) -> LinkSpec {
        *self.links.get(&(a.0, b.0)).unwrap_or(&self.default_link)
    }

    fn push_event(&mut self, time: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(EventKey { time, seq }));
        self.events.insert(seq, kind);
    }

    fn apply_actions(&mut self, from: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let link = self.link_for(from, to);
                    let delay = link.sample_delay(msg.len(), &mut self.rng);
                    // Outputs leave once the node finishes its accounted
                    // processing (Busy actions precede Sends in handler
                    // order), so e.g. attestation verification time shows
                    // up in handshake latency, not only in queueing.
                    let depart = self.now.max(self.busy_until[from.0 as usize]);
                    let mut time = depart + delay;
                    // FIFO per connection: never deliver before an earlier
                    // message on the same (src, dst) pair.
                    let last = self.last_arrival.entry((from.0, to.0)).or_insert(0);
                    time = time.max(*last);
                    *last = time;
                    self.push_event(time, EventKind::Deliver { to, from, msg });
                }
                Action::Timer { delay_ns, token } => {
                    let time = self.now + delay_ns;
                    self.push_event(time, EventKind::Timer { node: from, token });
                }
                Action::Busy { ns } => {
                    let idx = from.0 as usize;
                    self.busy_until[idx] = self.busy_until[idx].max(self.now) + ns;
                }
            }
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            self.call(id, |node, ctx| node.on_start(ctx));
        }
    }

    /// Ensures a wake event is scheduled for a node whose inbox holds
    /// deferred events.
    fn ensure_wake(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if self.offline[idx] || self.wake_scheduled[idx] || self.inbox[idx].is_empty() {
            return;
        }
        self.wake_scheduled[idx] = true;
        let at = self.busy_until[idx].max(self.now);
        self.push_event(at, EventKind::Wake { node });
    }

    /// Runs one event's handler at the current time.
    fn dispatch(&mut self, kind: EventKind) {
        self.stats.events += 1;
        match kind {
            EventKind::Deliver { to, from, msg } => {
                self.stats.messages += 1;
                self.stats.bytes += msg.len() as u64;
                self.call(to, |node, ctx| node.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, token } => {
                self.call(node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::Wake { .. } => unreachable!("wake handled in step"),
        }
    }

    /// Processes a single event; returns false if the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some(Reverse(key)) = self.queue.pop() else {
            return false;
        };
        let kind = self.events.remove(&key.seq).expect("event body");
        self.now = self.now.max(key.time);
        let node = kind.target();
        let idx = node.0 as usize;
        if self.offline[idx] {
            // The machine is down: in-flight traffic and timers are lost.
            if let EventKind::Wake { .. } = kind {
                self.wake_scheduled[idx] = false;
            } else {
                self.stats.dropped += 1;
            }
            return true;
        }
        if let EventKind::Wake { .. } = kind {
            self.wake_scheduled[idx] = false;
            if self.busy_until[idx] > self.now {
                // Busy period was extended after the wake was scheduled.
                self.ensure_wake(node);
            } else if let Some(deferred) = self.inbox[idx].pop_front() {
                self.dispatch(deferred);
                self.ensure_wake(node);
            }
            return true;
        }
        // A busy node defers the event into its inbox (single-server
        // queue). A free node with a non-empty inbox must also defer, or
        // the fresh event would overtake older deferred ones and break
        // per-connection FIFO.
        if self.busy_until[idx] > self.now || !self.inbox[idx].is_empty() {
            self.inbox[idx].push_back(kind);
            self.ensure_wake(node);
            return true;
        }
        self.dispatch(kind);
        self.ensure_wake(node);
        true
    }

    /// Runs until the queue drains or `deadline_ns` passes. Returns the
    /// number of events processed.
    pub fn run_until(&mut self, deadline_ns: u64) -> u64 {
        self.start_if_needed();
        let mut processed = 0;
        while let Some(Reverse(key)) = self.queue.peek() {
            if key.time > deadline_ns {
                break;
            }
            self.step();
            processed += 1;
        }
        self.now = self.now.max(deadline_ns);
        processed
    }

    /// Runs until the event queue is empty (or `max_events` were processed,
    /// as a runaway guard). Returns the number of events processed.
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        self.start_if_needed();
        let mut processed = 0;
        while processed < max_events && self.step() {
            processed += 1;
        }
        processed
    }
}

impl<N: SimNode> super::Engine<N> for SeqEngine<N> {
    fn len(&self) -> usize {
        SeqEngine::len(self)
    }
    fn now_ns(&self) -> u64 {
        SeqEngine::now_ns(self)
    }
    fn stats(&self) -> SimStats {
        SeqEngine::stats(self)
    }
    fn node(&self, id: NodeId) -> &N {
        SeqEngine::node(self, id)
    }
    fn node_mut(&mut self, id: NodeId) -> &mut N {
        SeqEngine::node_mut(self, id)
    }
    fn set_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        SeqEngine::set_link(self, a, b, spec)
    }
    fn set_offline(&mut self, id: NodeId, offline: bool) {
        SeqEngine::set_offline(self, id, offline)
    }
    fn is_offline(&self, id: NodeId) -> bool {
        SeqEngine::is_offline(self, id)
    }
    fn call<R>(&mut self, id: NodeId, f: impl FnOnce(&mut N, &mut Ctx<'_>) -> R) -> R {
        SeqEngine::call(self, id, f)
    }
    fn run_until(&mut self, deadline_ns: u64) -> u64 {
        SeqEngine::run_until(self, deadline_ns)
    }
    fn run_to_idle(&mut self, max_events: u64) -> u64 {
        SeqEngine::run_to_idle(self, max_events)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Echo;
    use super::*;
    use crate::MS;

    type Simulator = SeqEngine<Echo>;

    fn two_nodes(latency_ms: u64) -> Simulator {
        let link = LinkSpec {
            latency_ns: latency_ms * MS,
            jitter_frac: 0.0,
            bandwidth_bps: None,
        };
        Simulator::new(vec![Echo::new(false), Echo::new(true)], link, 1)
    }

    #[test]
    fn message_arrives_after_latency() {
        let mut sim = two_nodes(10);
        sim.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), b"ping".to_vec()));
        sim.run_to_idle(100);
        let (t, from, msg) = &sim.node(NodeId(1)).received[0];
        assert_eq!(*t, 10 * MS);
        assert_eq!(*from, NodeId(0));
        assert_eq!(msg, b"ping");
        // Echo arrives back after another 10 ms.
        assert_eq!(sim.node(NodeId(0)).received[0].0, 20 * MS);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = two_nodes(1);
        sim.call(NodeId(0), |_, ctx| {
            ctx.set_timer(5 * MS, 5);
            ctx.set_timer(2 * MS, 2);
            ctx.set_timer(9 * MS, 9);
        });
        sim.run_to_idle(100);
        let timers = &sim.node(NodeId(0)).timers;
        assert_eq!(
            timers,
            &vec![(2 * MS, 2u64), (5 * MS, 5u64), (9 * MS, 9u64)]
        );
    }

    #[test]
    fn busy_node_queues_messages() {
        let mut sim = two_nodes(0);
        sim.node_mut(NodeId(1)).cost_ns = 10 * MS;
        // Three back-to-back messages: service times 0,10,20 ms.
        sim.call(NodeId(0), |_, ctx| {
            ctx.send(NodeId(1), b"a".to_vec());
            ctx.send(NodeId(1), b"b".to_vec());
            ctx.send(NodeId(1), b"c".to_vec());
        });
        sim.run_to_idle(100);
        let times: Vec<u64> = sim.node(NodeId(1)).received.iter().map(|r| r.0).collect();
        assert_eq!(times, vec![0, 10 * MS, 20 * MS]);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = two_nodes(3);
            sim.call(NodeId(0), |_, ctx| {
                for i in 0..10u8 {
                    ctx.send(NodeId(1), vec![i]);
                }
            });
            sim.run_to_idle(1000);
            sim.node(NodeId(0))
                .received
                .iter()
                .map(|r| r.0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_link_overrides() {
        let mut sim = Simulator::new(
            vec![Echo::new(false), Echo::new(false), Echo::new(false)],
            LinkSpec {
                latency_ns: MS,
                jitter_frac: 0.0,
                bandwidth_bps: None,
            },
            1,
        );
        sim.set_link(
            NodeId(0),
            NodeId(2),
            LinkSpec {
                latency_ns: 50 * MS,
                jitter_frac: 0.0,
                bandwidth_bps: None,
            },
        );
        sim.call(NodeId(0), |_, ctx| {
            ctx.send(NodeId(1), b"fast".to_vec());
            ctx.send(NodeId(2), b"slow".to_vec());
        });
        sim.run_to_idle(100);
        assert_eq!(sim.node(NodeId(1)).received[0].0, MS);
        assert_eq!(sim.node(NodeId(2)).received[0].0, 50 * MS);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = two_nodes(10);
        sim.call(NodeId(0), |_, ctx| {
            ctx.set_timer(5 * MS, 1);
            ctx.set_timer(50 * MS, 2);
        });
        sim.run_until(20 * MS);
        assert_eq!(sim.node(NodeId(0)).timers.len(), 1);
        assert_eq!(sim.now_ns(), 20 * MS);
        sim.run_to_idle(10);
        assert_eq!(sim.node(NodeId(0)).timers.len(), 2);
    }

    #[test]
    fn offline_node_drops_traffic_then_recovers_delivery() {
        let mut sim = two_nodes(5);
        sim.set_offline(NodeId(1), true);
        sim.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), b"lost".to_vec()));
        sim.run_to_idle(100);
        assert!(sim.node(NodeId(1)).received.is_empty());
        assert_eq!(sim.stats().dropped, 1);
        sim.set_offline(NodeId(1), false);
        sim.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), b"arrives".to_vec()));
        sim.run_to_idle(100);
        assert_eq!(sim.node(NodeId(1)).received.len(), 1);
        assert_eq!(sim.node(NodeId(1)).received[0].2, b"arrives");
    }

    #[test]
    fn crash_discards_deferred_inbox_and_timers() {
        let mut sim = two_nodes(0);
        sim.node_mut(NodeId(1)).cost_ns = 10 * MS;
        sim.call(NodeId(0), |_, ctx| {
            ctx.send(NodeId(1), b"a".to_vec());
            ctx.send(NodeId(1), b"b".to_vec());
            ctx.send(NodeId(1), b"c".to_vec());
        });
        // Process only the first; b and c sit deferred in the inbox.
        sim.step();
        sim.call(NodeId(1), |_, ctx| ctx.set_timer(50 * MS, 9));
        sim.set_offline(NodeId(1), true);
        sim.run_to_idle(1000);
        assert_eq!(sim.node(NodeId(1)).received.len(), 1);
        assert!(
            sim.node(NodeId(1)).timers.is_empty(),
            "timer died with the node"
        );
        assert!(sim.stats().dropped >= 2, "deferred inbox was discarded");
        assert!(sim.is_offline(NodeId(1)));
    }

    #[test]
    fn throughput_limited_by_service_time() {
        // With a 1 ms service time, 1000 messages take ~1 s to drain:
        // the single-server queue caps throughput at 1/cost.
        let mut sim = two_nodes(0);
        sim.node_mut(NodeId(1)).cost_ns = MS;
        sim.call(NodeId(0), |_, ctx| {
            for _ in 0..1000 {
                ctx.send(NodeId(1), vec![0]);
            }
        });
        sim.run_to_idle(10_000);
        let last = sim.node(NodeId(1)).received.last().unwrap().0;
        assert_eq!(last, 999 * MS);
    }

    #[test]
    fn state_roundtrip_preserves_nodes_and_clock() {
        let mut sim = two_nodes(2);
        sim.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), b"x".to_vec()));
        sim.run_to_idle(100);
        let stats = sim.stats();
        let now = sim.now_ns();
        sim.set_offline(NodeId(1), true);
        let state = sim.into_state();
        let sim2 = SeqEngine::from_state(state);
        assert_eq!(sim2.now_ns(), now);
        assert_eq!(sim2.stats(), stats);
        assert!(sim2.is_offline(NodeId(1)));
        assert_eq!(sim2.node(NodeId(1)).received.len(), 1);
    }

    #[test]
    #[should_panic(expected = "quiescent")]
    fn conversion_rejects_pending_events() {
        let mut sim = two_nodes(2);
        sim.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), b"x".to_vec()));
        let _ = sim.into_state();
    }
}
