//! Wire framing shared by the socket transports.
//!
//! Every socket backend speaks the same byte format: a `u32`
//! little-endian length prefix followed by a codec-encoded frame body
//! (`teechain_util::codec`, the workspace's bit-stable wire format).
//! [`TcpNet`](super::TcpNet) bodies are `(from, payload)`;
//! [`ReactorNet`](super::ReactorNet) multiplexes many logical
//! connections over one socket, so its bodies add the destination:
//! `(from, to, payload)`. Both reuse [`FrameBuffer`] for incremental
//! reassembly — partial frames survive short reads, read timeouts and
//! `WouldBlock` returns from nonblocking sockets.

use teechain_util::codec::{Decode, Encode, Reader as WireReader, WireError};

/// Upper bound on a single frame body; anything larger is junk (the
/// biggest legitimate protocol message is a sealed snapshot, well under
/// this).
pub(crate) const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// One point-to-point wire frame (the [`TcpNet`](super::TcpNet) body):
/// who sent it and the payload bytes. The destination is implied by the
/// socket the frame arrives on.
pub(crate) struct Frame {
    pub(crate) from: u32,
    pub(crate) payload: Vec<u8>,
}

impl Encode for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.payload.encode(out);
    }
}

impl Decode for Frame {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Frame {
            from: r.read()?,
            payload: r.read()?,
        })
    }
}

/// One multiplexed wire frame (the [`ReactorNet`](super::ReactorNet)
/// body): the [`Frame`] fields plus the destination, because a pooled
/// socket carries many (source, destination) flows at once.
pub(crate) struct MuxFrame {
    pub(crate) from: u32,
    pub(crate) to: u32,
    pub(crate) payload: Vec<u8>,
}

impl Encode for MuxFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.to.encode(out);
        self.payload.encode(out);
    }
}

impl Decode for MuxFrame {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(MuxFrame {
            from: r.read()?,
            to: r.read()?,
            payload: r.read()?,
        })
    }
}

/// Appends the length-prefixed encoding of `body` to `out` (one
/// syscall-sized buffer instead of two small writes).
pub(crate) fn encode_frame<T: Encode>(body: &T, out: &mut Vec<u8>) {
    let bytes = body.encode_to_vec();
    (bytes.len() as u32).encode(out);
    out.extend_from_slice(&bytes);
}

/// Incremental frame parser: bytes accumulate across reads, so a read
/// timeout or `WouldBlock` in the middle of a frame (stalled sender,
/// segmented delivery) never loses the partial prefix — `read_exact`
/// would.
pub(crate) struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    pub(crate) fn new() -> Self {
        FrameBuffer { buf: Vec::new() }
    }

    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are
    /// needed, `Err` if the stream is corrupt (oversized or undecodable
    /// frame — the connection must be dropped, resynchronization is
    /// impossible).
    pub(crate) fn next_frame<T: Decode>(&mut self) -> Result<Option<T>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes"));
        if len > MAX_FRAME {
            return Err(WireError::InvalidValue("frame exceeds MAX_FRAME"));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = T::decode_exact(&self.buf[4..total])?;
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mux_frame_roundtrip() {
        let f = MuxFrame {
            from: 3,
            to: 9,
            payload: vec![1, 2, 3, 4],
        };
        let body = f.encode_to_vec();
        let back = MuxFrame::decode_exact(&body).unwrap();
        assert_eq!((back.from, back.to, back.payload), (3, 9, vec![1, 2, 3, 4]));
    }

    #[test]
    fn frame_buffer_reassembles_dribbled_bytes() {
        let mut wire = Vec::new();
        encode_frame(
            &MuxFrame {
                from: 1,
                to: 2,
                payload: b"abc".to_vec(),
            },
            &mut wire,
        );
        let mut fb = FrameBuffer::new();
        for b in &wire[..wire.len() - 1] {
            fb.extend(std::slice::from_ref(b));
            assert!(fb.next_frame::<MuxFrame>().unwrap().is_none());
        }
        fb.extend(&wire[wire.len() - 1..]);
        let f = fb.next_frame::<MuxFrame>().unwrap().expect("complete");
        assert_eq!((f.from, f.to, &f.payload[..]), (1, 2, &b"abc"[..]));
    }

    #[test]
    fn oversized_frame_is_an_error() {
        let mut fb = FrameBuffer::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert!(fb.next_frame::<MuxFrame>().is_err());
    }
}
