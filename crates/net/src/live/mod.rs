//! Live execution: real threads, real sockets, real clocks.
//!
//! Everything else in this crate *simulates* a network; this module runs
//! one. The protocol state machines stay byte-identical — a node is still
//! driven through the same handler signatures and the same [`Ctx`]
//! surface — but the substrate is an operating system instead of an event
//! heap:
//!
//! * [`Transport`] — the abstraction over a real message substrate: an
//!   endpoint per node, split into an independently-owned sending half
//!   ([`TransportTx`]) and receiving half ([`TransportRx`]) so a node's
//!   event loop can send while a pump thread blocks on receive.
//! * [`thread`] — the in-process backend: one `std::sync::mpsc` channel
//!   per node, endpoints wired into a full mesh ([`ThreadNet`]). Delivery
//!   is reliable and FIFO per (source, destination) pair, which is the
//!   same per-connection ordering contract the simulated links enforce.
//! * [`tcp`] — the localhost socket backend ([`TcpNet`]): one TCP
//!   listener per node, lazily-established peer connections, frames
//!   encoded with the workspace wire codec (`teechain_util::codec`). TCP
//!   gives the FIFO-per-connection guarantee for free.
//! * [`reactor`] — the non-blocking backend ([`ReactorNet`]): every
//!   (source, destination) flow multiplexed over a small fixed pool of
//!   nonblocking sockets swept by a single poller thread, so transport
//!   thread count is O(1) in cluster size instead of O(N²). Same codec
//!   framing, extended with the destination id.
//! * [`drive`] — runs a node handler *outside* any engine, returning the
//!   [`NodeAction`]s it emitted so a live event loop can perform them as
//!   real I/O (send on the transport, arm a wall-clock timer) instead of
//!   scheduling simulated events.
//!
//! What deliberately does **not** carry over from the simulation: link
//! latency models (the kernel and the wire provide the real thing), the
//! single-server CPU queue ([`NodeAction::Busy`] is accounting advice a
//! live loop ignores — real handlers burn real CPU), and global
//! determinism (threads race; only per-connection FIFO is promised).
//! Protocol *outcomes* remain comparable across substrates — the
//! sim-vs-live equivalence suite in `crates/core` asserts exactly that.

mod framing;
pub mod reactor;
pub mod tcp;
pub mod thread;

pub use reactor::{InboundSink, ReactorHandle, ReactorNet, ReactorTx};
pub use tcp::TcpNet;
pub use thread::ThreadNet;

use super::engine::{Action, Ctx, NodeId};
use std::time::Duration;
use teechain_util::rng::Xoshiro256;

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The destination endpoint is gone (its receiver was dropped or its
    /// socket closed) — the live analogue of sending to a crashed node.
    Disconnected(NodeId),
    /// The receiving half is closed: every peer endpoint has shut down,
    /// so no further message can ever arrive.
    Closed,
    /// An OS-level I/O failure (socket backend), flattened to a string so
    /// the error stays `Clone` + `PartialEq`.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected(id) => write!(f, "endpoint {id} is disconnected"),
            TransportError::Closed => write!(f, "transport closed: no senders remain"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// One node's endpoint on a real message substrate.
///
/// An endpoint is created by a network constructor ([`ThreadNet::mesh`],
/// [`TcpNet::localhost`]) and then [`split`](Transport::split) into its
/// two halves: the event loop owns the sender, a pump thread owns the
/// receiver. Both backends promise reliable, FIFO-per-(source,
/// destination) delivery while the destination endpoint is alive — the
/// ordering contract the Teechain session layer requires and the
/// simulated links also enforce.
pub trait Transport: Send + 'static {
    /// The independently-owned sending half.
    type Tx: TransportTx;
    /// The independently-owned receiving half.
    type Rx: TransportRx;

    /// This endpoint's node id.
    fn local_id(&self) -> NodeId;

    /// Number of endpoints in the network this endpoint belongs to.
    fn len(&self) -> usize;

    /// True for a degenerate zero-endpoint network.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits the endpoint into its sending and receiving halves.
    fn split(self) -> (Self::Tx, Self::Rx);
}

/// The sending half of a [`Transport`] endpoint.
pub trait TransportTx: Send + 'static {
    /// Queues `msg` for delivery to `to`. Returns
    /// [`TransportError::Disconnected`] once the destination endpoint is
    /// gone; messages to live endpoints are delivered reliably and in
    /// FIFO order per (source, destination) pair.
    fn send(&mut self, to: NodeId, msg: Vec<u8>) -> Result<(), TransportError>;
}

/// The receiving half of a [`Transport`] endpoint.
pub trait TransportRx: Send + 'static {
    /// Blocks up to `timeout` for the next inbound message. `Ok(None)`
    /// means the timeout elapsed with nothing to deliver;
    /// [`TransportError::Closed`] means every sender is gone and no
    /// message can ever arrive again.
    fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(NodeId, Vec<u8>)>, TransportError>;
}

/// An action emitted by a node handler, in emission order — the public
/// mirror of the engine-internal action list, returned by [`drive`] so a
/// live event loop can perform real I/O where an engine would schedule
/// simulated events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeAction {
    /// Deliver `msg` to `to` (live loops: [`TransportTx::send`]).
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload bytes.
        msg: Vec<u8>,
    },
    /// Invoke the node's timer handler with `token` after `delay_ns`
    /// (live loops: arm a wall-clock timer).
    Timer {
        /// Nanoseconds from the handler's `now`.
        delay_ns: u64,
        /// Token passed back to the timer handler.
        token: u64,
    },
    /// CPU service-time accounting. Meaningful only under the simulated
    /// single-server queue; live handlers burn real CPU, so live loops
    /// ignore it.
    Busy {
        /// Accounted nanoseconds.
        ns: u64,
    },
}

/// Runs `f` on `node` with a live [`Ctx`] *outside* any engine and
/// returns `f`'s result together with the actions the handler emitted.
///
/// This is the bridge a live runtime uses to execute the unmodified
/// protocol state machines: `now_ns` is the caller's clock (a real
/// monotonic clock in live loops, where engines would pass simulated
/// time), `rng` is the caller's deterministic stream (per-node, like the
/// sharded engine's lanes), and the returned [`NodeAction`]s are the
/// sends, timers and busy-accounting the handler produced, in order.
pub fn drive<N, R>(
    node: &mut N,
    self_id: NodeId,
    now_ns: u64,
    rng: &mut Xoshiro256,
    f: impl FnOnce(&mut N, &mut Ctx<'_>) -> R,
) -> (R, Vec<NodeAction>) {
    let mut actions = Vec::new();
    let r = {
        let mut ctx = Ctx {
            now: now_ns,
            self_id,
            actions: &mut actions,
            rng,
        };
        f(node, &mut ctx)
    };
    let actions = actions
        .into_iter()
        .map(|a| match a {
            Action::Send { to, msg } => NodeAction::Send { to, msg },
            Action::Timer { delay_ns, token } => NodeAction::Timer { delay_ns, token },
            Action::Busy { ns } => NodeAction::Busy { ns },
        })
        .collect();
    (r, actions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_collects_actions_in_order() {
        let mut rng = Xoshiro256::new(1);
        let mut node = (); // The "node" can be any state the closure drives.
        let (out, actions) = drive(&mut node, NodeId(3), 42, &mut rng, |_, ctx| {
            assert_eq!(ctx.now_ns(), 42);
            assert_eq!(ctx.self_id(), NodeId(3));
            ctx.busy(10);
            ctx.send(NodeId(1), b"hi".to_vec());
            ctx.set_timer(5, 77);
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(
            actions,
            vec![
                NodeAction::Busy { ns: 10 },
                NodeAction::Send {
                    to: NodeId(1),
                    msg: b"hi".to_vec()
                },
                NodeAction::Timer {
                    delay_ns: 5,
                    token: 77
                },
            ]
        );
    }

    #[test]
    fn transport_error_display() {
        assert_eq!(
            TransportError::Disconnected(NodeId(4)).to_string(),
            "endpoint n4 is disconnected"
        );
        assert_eq!(
            TransportError::Closed.to_string(),
            "transport closed: no senders remain"
        );
        assert!(TransportError::Io("boom".into())
            .to_string()
            .contains("boom"));
    }
}
