//! The in-process transport backend: one `std::sync::mpsc` channel per
//! node, endpoints wired into a full mesh.
//!
//! This is the cheapest real substrate — no serialization beyond the
//! payload bytes themselves, no kernel round-trips — which makes it the
//! reference backend for the sim-vs-live equivalence suite and the
//! upper-bound backend for the live throughput bench. Per-connection
//! FIFO holds because each sending node performs all of its sends to a
//! given peer from its own event-loop thread, and an mpsc channel never
//! reorders messages from one producer.

use super::{Transport, TransportError, TransportRx, TransportTx};
use crate::engine::NodeId;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// The in-process channel network: a factory for mesh-wired
/// [`ThreadEndpoint`]s.
pub struct ThreadNet;

impl ThreadNet {
    /// Creates `n` endpoints wired into a full mesh. Endpoint `i` is for
    /// node `i`; hand each to its node's event loop and
    /// [`split`](Transport::split) it there.
    pub fn mesh(n: usize) -> Vec<ThreadEndpoint> {
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel();
            txs.push(tx);
            rxs.push(rx);
        }
        rxs.into_iter()
            .enumerate()
            .map(|(i, rx)| ThreadEndpoint {
                id: NodeId(i as u32),
                peers: txs.clone(),
                rx,
            })
            .collect()
    }
}

/// One node's endpoint on the in-process channel mesh.
pub struct ThreadEndpoint {
    id: NodeId,
    peers: Vec<Sender<(NodeId, Vec<u8>)>>,
    rx: Receiver<(NodeId, Vec<u8>)>,
}

impl Transport for ThreadEndpoint {
    type Tx = ThreadTx;
    type Rx = ThreadRx;

    fn local_id(&self) -> NodeId {
        self.id
    }

    fn len(&self) -> usize {
        self.peers.len()
    }

    fn split(self) -> (ThreadTx, ThreadRx) {
        (
            ThreadTx {
                id: self.id,
                peers: self.peers,
            },
            ThreadRx { rx: self.rx },
        )
    }
}

/// Sending half of a [`ThreadEndpoint`].
pub struct ThreadTx {
    id: NodeId,
    peers: Vec<Sender<(NodeId, Vec<u8>)>>,
}

impl TransportTx for ThreadTx {
    fn send(&mut self, to: NodeId, msg: Vec<u8>) -> Result<(), TransportError> {
        let peer = self
            .peers
            .get(to.0 as usize)
            .ok_or(TransportError::Disconnected(to))?;
        peer.send((self.id, msg))
            .map_err(|_| TransportError::Disconnected(to))
    }
}

/// Receiving half of a [`ThreadEndpoint`].
pub struct ThreadRx {
    rx: Receiver<(NodeId, Vec<u8>)>,
}

impl TransportRx for ThreadRx {
    fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(NodeId, Vec<u8>)>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_delivers_and_orders_per_connection() {
        let mut eps = ThreadNet::mesh(3).into_iter();
        let a = eps.next().unwrap();
        let b = eps.next().unwrap();
        assert_eq!(a.local_id(), NodeId(0));
        assert_eq!(a.len(), 3);
        let (mut atx, _arx) = a.split();
        let (_btx, mut brx) = b.split();
        for i in 0..10u8 {
            atx.send(NodeId(1), vec![i]).unwrap();
        }
        for i in 0..10u8 {
            let (from, msg) = brx
                .recv_timeout(Duration::from_secs(1))
                .unwrap()
                .expect("message");
            assert_eq!(from, NodeId(0));
            assert_eq!(msg, vec![i]);
        }
        assert_eq!(brx.recv_timeout(Duration::from_millis(1)), Ok(None));
    }

    #[test]
    fn closed_when_every_sender_is_gone() {
        let mut eps = ThreadNet::mesh(2).into_iter();
        let a = eps.next().unwrap();
        let b = eps.next().unwrap();
        let (atx, mut arx) = a.split();
        let (btx, brx) = b.split();
        drop((atx, btx, brx)); // All senders into a's channel are gone.
        assert_eq!(
            arx.recv_timeout(Duration::from_millis(1)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn send_to_unknown_node_is_disconnected() {
        let mut eps = ThreadNet::mesh(1).into_iter();
        let (mut tx, _rx) = eps.next().unwrap().split();
        assert_eq!(
            tx.send(NodeId(9), vec![]),
            Err(TransportError::Disconnected(NodeId(9)))
        );
    }

    #[test]
    fn cross_thread_echo() {
        let mut eps = ThreadNet::mesh(2).into_iter();
        let (mut atx, mut arx) = eps.next().unwrap().split();
        let (mut btx, mut brx) = eps.next().unwrap().split();
        let echo = std::thread::spawn(move || {
            while let Ok(Some((from, msg))) = brx.recv_timeout(Duration::from_secs(1)) {
                if msg == b"stop" {
                    break;
                }
                btx.send(from, msg).unwrap();
            }
        });
        atx.send(NodeId(1), b"ping".to_vec()).unwrap();
        let (from, msg) = arx
            .recv_timeout(Duration::from_secs(1))
            .unwrap()
            .expect("echo");
        assert_eq!((from, msg), (NodeId(1), b"ping".to_vec()));
        atx.send(NodeId(1), b"stop".to_vec()).unwrap();
        echo.join().unwrap();
    }
}
