//! The non-blocking reactor transport backend.
//!
//! [`TcpNet`](super::TcpNet) spends threads the way the paper's testbed
//! spends machines: one acceptor per node plus one reader per accepted
//! connection, so an N-node box burns O(N²) threads just moving bytes.
//! [`ReactorNet`] moves the same protocol bytes with **one** thread.
//!
//! # Design
//!
//! The vendored-dependency environment rules out tokio/mio, so the
//! readiness loop is hand-rolled on `std::net` primitives: every socket
//! is switched to nonblocking mode and a single *poller* thread runs a
//! level-triggered sweep — try to accept, try to flush each connection's
//! write buffer, try to read from each connection, and park briefly on
//! the command channel when a full sweep moved nothing. There is no
//! epoll handle to wait on without `libc`, but the sweep is cheap
//! because the socket count is fixed:
//!
//! * The net binds **one** listener for the whole cluster.
//! * Outbound frames are multiplexed over a small fixed pool of
//!   connections to that listener ([`POOL`] by default). Each logical
//!   (source, destination) flow is pinned to one pooled connection by a
//!   deterministic hash, and the single poller writes a flow's frames in
//!   submission order — so the per-(source, destination) FIFO contract
//!   holds even though thousands of flows share a socket. This is the
//!   flow/session separation of LDN-style transports: sessions are
//!   kernel sockets, flows are frame-tagged.
//! * Frames extend the [`TcpNet`](super::TcpNet) codec body with the
//!   destination id (`u32 len | from | to | payload`, the `MuxFrame`
//!   body) because the socket no longer implies it.
//!
//! Connections are dialed lazily (first frame that needs a pooled slot
//! dials it), partial frames reassemble in per-connection
//! `FrameBuffer`s, and per-connection write buffers absorb
//! `WouldBlock`. Backpressure is two-stage: senders block on the bounded
//! command channel, and the poller stops draining commands while any
//! write buffer sits above its high watermark — so a slow kernel socket
//! propagates pressure to producers instead of growing buffers without
//! bound.
//!
//! # Delivery modes
//!
//! * [`ReactorNet::localhost`] — [`Transport`] endpoints like every
//!   other backend (per-endpoint inbound queues); drop every receiving
//!   half and the poller winds down.
//! * [`ReactorNet::localhost_sink`] — inbound frames are handed to one
//!   caller-provided sink instead of per-endpoint queues. This is the
//!   mode the live node scheduler uses: the sink enqueues straight into
//!   per-node run queues, so inbound traffic marks nodes ready without a
//!   pump thread per node.

use super::framing::{encode_frame, FrameBuffer, MuxFrame};
use super::{Transport, TransportError, TransportRx, TransportTx};
use crate::engine::NodeId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default number of pooled outbound connections all (source,
/// destination) flows are multiplexed over.
pub const POOL: usize = 4;

/// Bound on the command channel from senders into the poller: senders
/// block once this many frames are queued (first backpressure stage).
const CMD_QUEUE: usize = 4096;

/// Per-connection write-buffer high watermark: while any connection's
/// buffer exceeds this, the poller stops draining sender commands
/// (second backpressure stage) and concentrates on flushing.
const WRITE_HIGH_WATER: usize = 1 << 20;

/// Longest the poller parks when a full sweep moved nothing. A new
/// command wakes it immediately (the park *is* the command-channel
/// receive); inbound bytes wait at most this long.
const IDLE_PARK: Duration = Duration::from_micros(500);

/// A sink for inbound frames: `(destination, source, payload)`.
pub type InboundSink = Box<dyn FnMut(NodeId, NodeId, Vec<u8>) + Send>;

/// A frame queued by a sender for the poller to put on the wire.
struct Cmd {
    from: NodeId,
    to: NodeId,
    payload: Vec<u8>,
}

/// What [`ReactorNet::build`] hands back: the sending halves, the
/// per-endpoint inbound queues (empty in sink mode) and the poller's
/// handle.
type BuiltNet = (
    Vec<ReactorTx>,
    Vec<Receiver<(NodeId, Vec<u8>)>>,
    ReactorHandle,
);

/// The reactor network: a factory for endpoints whose shared poller
/// thread is already running when the constructor returns.
pub struct ReactorNet;

impl ReactorNet {
    /// Creates `n` [`Transport`] endpoints multiplexed over one listener
    /// and the default connection pool. Endpoint `i` is for node `i`.
    /// The poller exits once every receiving half has been dropped.
    pub fn localhost(n: usize) -> std::io::Result<Vec<ReactorEndpoint>> {
        let (txs, rx_queues, handle) = Self::build(n, POOL, None)?;
        let live_rx = Arc::new(AtomicUsize::new(n));
        let handle = Arc::new(handle);
        Ok(txs
            .into_iter()
            .zip(rx_queues)
            .map(|(tx, rx)| ReactorEndpoint {
                tx,
                rx,
                live_rx: live_rx.clone(),
                handle: handle.clone(),
            })
            .collect())
    }

    /// Creates `n` sending halves whose inbound frames are delivered to
    /// `sink` from the poller thread, plus the [`ReactorHandle`] that
    /// owns the poller. No per-endpoint queues, no pump threads: the
    /// scheduler's run queues are fed directly.
    pub fn localhost_sink(
        n: usize,
        pool: usize,
        sink: InboundSink,
    ) -> std::io::Result<(Vec<ReactorTx>, ReactorHandle)> {
        let (txs, _queues, handle) = Self::build(n, pool.max(1), Some(sink))?;
        Ok((txs, handle))
    }

    fn build(n: usize, pool: usize, sink: Option<InboundSink>) -> std::io::Result<BuiltNet> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (cmd_tx, cmd_rx) = mpsc::sync_channel::<Cmd>(CMD_QUEUE);
        let stop = Arc::new(AtomicBool::new(false));
        let (route_txs, rx_queues) = match sink {
            Some(_) => (Vec::new(), Vec::new()),
            None => {
                let mut txs = Vec::with_capacity(n);
                let mut rxs = Vec::with_capacity(n);
                for _ in 0..n {
                    let (tx, rx) = mpsc::channel();
                    txs.push(tx);
                    rxs.push(rx);
                }
                (txs, rxs)
            }
        };
        let poller = Poller {
            listener,
            addr,
            cmds: cmd_rx,
            dialed: (0..pool).map(|_| None).collect(),
            accepted: Vec::new(),
            routes: route_txs,
            sink,
            stop: stop.clone(),
            n,
        };
        let thread = std::thread::Builder::new()
            .name("teechain-reactor".into())
            .spawn(move || poller.run())
            .expect("spawn reactor poller");
        let txs = (0..n)
            .map(|i| ReactorTx {
                id: NodeId(i as u32),
                n,
                cmds: cmd_tx.clone(),
            })
            .collect();
        Ok((
            txs,
            rx_queues,
            ReactorHandle {
                stop,
                thread: Some(thread),
            },
        ))
    }
}

/// Owns the poller thread. [`shutdown`](ReactorHandle::shutdown) (or
/// drop) stops the readiness loop and joins it — the clean winddown the
/// scheduler calls after its workers have quiesced.
pub struct ReactorHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Stops the poller and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One pooled or accepted connection with its reassembly and write
/// buffers.
struct Conn {
    stream: TcpStream,
    inbuf: FrameBuffer,
    outbuf: Vec<u8>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: FrameBuffer::new(),
            outbuf: Vec::new(),
        }
    }

    /// Writes as much of the buffered output as the kernel accepts.
    /// Returns false if the connection died.
    fn flush(&mut self) -> bool {
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => return false,
                Ok(wrote) => {
                    self.outbuf.drain(..wrote);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }
}

/// The single readiness-loop thread: owns every socket in the net.
struct Poller {
    listener: TcpListener,
    addr: SocketAddr,
    cmds: Receiver<Cmd>,
    /// Lazily-dialed outbound pool; flows hash onto slots.
    dialed: Vec<Option<Conn>>,
    /// Accepted inbound connections (the other end of the pool).
    accepted: Vec<Conn>,
    /// Per-endpoint inbound queues ([`ReactorNet::localhost`] mode).
    routes: Vec<mpsc::Sender<(NodeId, Vec<u8>)>>,
    /// Inbound sink ([`ReactorNet::localhost_sink`] mode).
    sink: Option<InboundSink>,
    stop: Arc<AtomicBool>,
    n: usize,
}

impl Poller {
    /// Which pooled connection carries the (from, to) flow. Stable for
    /// the net's lifetime, so the flow's frames stay FIFO.
    fn slot(&self, from: NodeId, to: NodeId) -> usize {
        (from.0 as usize)
            .wrapping_mul(31)
            .wrapping_add(to.0 as usize)
            % self.dialed.len()
    }

    /// True while any write buffer is above the high watermark — the
    /// signal to stop draining sender commands.
    fn over_watermark(&self) -> bool {
        self.dialed
            .iter()
            .flatten()
            .any(|c| c.outbuf.len() > WRITE_HIGH_WATER)
    }

    /// Queues one frame onto its flow's pooled connection, dialing the
    /// slot on first use.
    fn enqueue(&mut self, cmd: Cmd) {
        let slot = self.slot(cmd.from, cmd.to);
        if self.dialed[slot].is_none() {
            let Ok(stream) = TcpStream::connect(self.addr) else {
                return; // Listener gone mid-winddown: drop the frame.
            };
            let _ = stream.set_nodelay(true);
            stream
                .set_nonblocking(true)
                .expect("set_nonblocking on dialed stream");
            self.dialed[slot] = Some(Conn::new(stream));
        }
        let conn = self.dialed[slot].as_mut().expect("slot dialed");
        encode_frame(
            &MuxFrame {
                from: cmd.from.0,
                to: cmd.to.0,
                payload: cmd.payload,
            },
            &mut conn.outbuf,
        );
    }

    /// Accepts every connection currently pending on the listener.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nonblocking(true)
                        .expect("set_nonblocking on accepted stream");
                    self.accepted.push(Conn::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Routes one reassembled frame to its destination endpoint or the
    /// sink. Frames for dropped endpoints vanish, like traffic to a
    /// crashed machine.
    fn deliver(&mut self, frame: MuxFrame) {
        if frame.to as usize >= self.n {
            return;
        }
        if let Some(sink) = self.sink.as_mut() {
            sink(NodeId(frame.to), NodeId(frame.from), frame.payload);
        } else if let Some(route) = self.routes.get(frame.to as usize) {
            let _ = route.send((NodeId(frame.from), frame.payload));
        }
    }

    /// Reads whatever the kernel has on one accepted connection.
    /// Returns false if the connection died, and how many frames moved.
    fn read_ready(conn: &mut Conn, chunk: &mut [u8], frames: &mut Vec<MuxFrame>) -> bool {
        loop {
            match conn.stream.read(chunk) {
                Ok(0) => return false,
                Ok(got) => {
                    conn.inbuf.extend(&chunk[..got]);
                    loop {
                        match conn.inbuf.next_frame::<MuxFrame>() {
                            Ok(Some(frame)) => frames.push(frame),
                            Ok(None) => break,
                            Err(_) => return false, // Corrupt stream.
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    fn run(mut self) {
        let mut chunk = vec![0u8; 64 * 1024];
        let mut frames: Vec<MuxFrame> = Vec::new();
        loop {
            let mut progressed = false;

            // 1. Sender commands — unless backpressured by a full write
            //    buffer, in which case flushing comes first.
            if !self.over_watermark() {
                for _ in 0..CMD_QUEUE {
                    match self.cmds.try_recv() {
                        Ok(cmd) => {
                            self.enqueue(cmd);
                            progressed = true;
                        }
                        Err(_) => break,
                    }
                }
            }

            // 2. Flush pending writes (level-triggered retry).
            for slot in 0..self.dialed.len() {
                if let Some(conn) = self.dialed[slot].as_mut() {
                    let before = conn.outbuf.len();
                    if !conn.flush() {
                        self.dialed[slot] = None; // Dead: drop buffered bytes.
                    } else if conn.outbuf.len() != before {
                        progressed = true;
                    }
                }
            }

            // 3. New inbound connections.
            self.accept_ready();

            // 4. Read sweep over accepted connections.
            let mut i = 0;
            while i < self.accepted.len() {
                let alive = Self::read_ready(&mut self.accepted[i], &mut chunk, &mut frames);
                if !frames.is_empty() {
                    progressed = true;
                    for frame in frames.drain(..) {
                        self.deliver(frame);
                    }
                }
                if alive {
                    i += 1;
                } else {
                    self.accepted.swap_remove(i);
                }
            }

            // Winddown: the last dropped receiving half (localhost
            // mode) or the owning handle (sink mode) flips this flag.
            if self.stop.load(Ordering::Relaxed) {
                break;
            }

            // 5. Nothing moved: park on the command channel so the next
            //    send wakes the loop instantly.
            if !progressed {
                match self.cmds.recv_timeout(IDLE_PARK) {
                    Ok(cmd) => self.enqueue(cmd),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        // Every sender is gone; drain reads until the
                        // stop flag or quiescence ends the loop.
                        if self.stop.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::sleep(IDLE_PARK);
                    }
                }
            }
        }
    }
}

/// One node's [`Transport`] endpoint on the reactor net
/// ([`ReactorNet::localhost`] mode).
pub struct ReactorEndpoint {
    tx: ReactorTx,
    rx: Receiver<(NodeId, Vec<u8>)>,
    live_rx: Arc<AtomicUsize>,
    handle: Arc<ReactorHandle>,
}

impl Transport for ReactorEndpoint {
    type Tx = ReactorTx;
    type Rx = ReactorRx;

    fn local_id(&self) -> NodeId {
        self.tx.id
    }

    fn len(&self) -> usize {
        self.tx.n
    }

    fn split(self) -> (ReactorTx, ReactorRx) {
        (
            self.tx,
            ReactorRx {
                rx: self.rx,
                live_rx: self.live_rx,
                handle: self.handle,
            },
        )
    }
}

/// Sending half of a reactor endpoint: hands frames to the shared
/// poller over the bounded command channel (blocking there is the first
/// backpressure stage).
pub struct ReactorTx {
    id: NodeId,
    n: usize,
    cmds: SyncSender<Cmd>,
}

impl TransportTx for ReactorTx {
    fn send(&mut self, to: NodeId, msg: Vec<u8>) -> Result<(), TransportError> {
        if to.0 as usize >= self.n {
            return Err(TransportError::Disconnected(to));
        }
        let mut cmd = Cmd {
            from: self.id,
            to,
            payload: msg,
        };
        loop {
            match self.cmds.try_send(cmd) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(c)) => {
                    // Backpressure: wait for the poller to drain. A
                    // bounded blocking send would do the same thing but
                    // could not observe a concurrent poller shutdown.
                    cmd = c;
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(TrySendError::Disconnected(_)) => return Err(TransportError::Closed),
            }
        }
    }
}

/// Receiving half of a reactor endpoint. Dropping the last one stops
/// the shared poller.
pub struct ReactorRx {
    rx: Receiver<(NodeId, Vec<u8>)>,
    live_rx: Arc<AtomicUsize>,
    handle: Arc<ReactorHandle>,
}

impl TransportRx for ReactorRx {
    fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(NodeId, Vec<u8>)>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }
}

impl Drop for ReactorRx {
    fn drop(&mut self) {
        if self.live_rx.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver gone: nobody can observe another frame.
            self.handle.stop.store(true, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_delivers_fifo_per_flow() {
        let mut eps = ReactorNet::localhost(3).unwrap().into_iter();
        let a = eps.next().unwrap();
        let b = eps.next().unwrap();
        assert_eq!((a.local_id(), a.len()), (NodeId(0), 3));
        let (mut atx, _arx) = a.split();
        let (_btx, mut brx) = b.split();
        for i in 0..50u8 {
            atx.send(NodeId(1), vec![i; 5]).unwrap();
        }
        for i in 0..50u8 {
            let (from, msg) = brx
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("frame");
            assert_eq!(from, NodeId(0));
            assert_eq!(msg, vec![i; 5]);
        }
    }

    #[test]
    fn many_flows_share_the_pool_without_cross_talk() {
        // 8 nodes all sending to node 0 over a 2-connection pool: each
        // flow must arrive FIFO and intact despite the multiplexing.
        let n = 8;
        let eps = ReactorNet::localhost(n).unwrap();
        let mut parts: Vec<_> = eps.into_iter().map(|e| e.split()).collect();
        let (_tx0, mut rx0) = parts.remove(0);
        let senders: Vec<std::thread::JoinHandle<()>> = parts
            .into_iter()
            .enumerate()
            .map(|(k, (mut tx, _rx))| {
                std::thread::spawn(move || {
                    for i in 0..40u8 {
                        tx.send(NodeId(0), vec![(k + 1) as u8, i]).unwrap();
                    }
                })
            })
            .collect();
        let mut next: Vec<u8> = vec![0; n];
        for _ in 0..(40 * (n - 1)) {
            let (from, msg) = rx0
                .recv_timeout(Duration::from_secs(10))
                .unwrap()
                .expect("frame");
            assert_eq!(msg[0] as u32, from.0); // Tag matches source.
            assert_eq!(msg[1], next[from.0 as usize], "per-flow FIFO broken");
            next[from.0 as usize] += 1;
        }
        for s in senders {
            s.join().unwrap();
        }
    }

    #[test]
    fn bidirectional_echo_across_threads() {
        let mut eps = ReactorNet::localhost(2).unwrap().into_iter();
        let (mut atx, mut arx) = eps.next().unwrap().split();
        let (mut btx, mut brx) = eps.next().unwrap().split();
        let echo = std::thread::spawn(move || {
            while let Ok(Some((from, msg))) = brx.recv_timeout(Duration::from_secs(5)) {
                if msg == b"stop" {
                    break;
                }
                btx.send(from, msg).unwrap();
            }
        });
        for _ in 0..5 {
            atx.send(NodeId(1), b"ping".to_vec()).unwrap();
            let (from, msg) = arx
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("echo");
            assert_eq!((from, &msg[..]), (NodeId(1), &b"ping"[..]));
        }
        atx.send(NodeId(1), b"stop".to_vec()).unwrap();
        echo.join().unwrap();
    }

    #[test]
    fn send_to_unknown_node_is_disconnected() {
        let mut eps = ReactorNet::localhost(1).unwrap().into_iter();
        let (mut tx, _rx) = eps.next().unwrap().split();
        assert_eq!(
            tx.send(NodeId(9), vec![]),
            Err(TransportError::Disconnected(NodeId(9)))
        );
    }

    #[test]
    fn sink_mode_feeds_frames_without_per_node_queues() {
        let (got_tx, got_rx) = mpsc::channel();
        let (mut txs, handle) = ReactorNet::localhost_sink(
            4,
            2,
            Box::new(move |to, from, payload| {
                let _ = got_tx.send((to, from, payload));
            }),
        )
        .unwrap();
        txs[2].send(NodeId(3), b"hello".to_vec()).unwrap();
        let (to, from, payload) = got_rx.recv_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(
            (to, from, &payload[..]),
            (NodeId(3), NodeId(2), &b"hello"[..])
        );
        handle.shutdown();
    }

    #[test]
    fn winddown_stops_the_poller_when_receivers_drop() {
        let eps = ReactorNet::localhost(2).unwrap();
        let handle = eps[0].handle.clone();
        let parts: Vec<_> = eps.into_iter().map(|e| e.split()).collect();
        drop(parts); // All Rx halves gone -> stop flag set.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !handle.stop.load(Ordering::Relaxed) {
            assert!(std::time::Instant::now() < deadline, "stop flag never set");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn large_frame_survives_pool_multiplexing() {
        // A frame bigger than the kernel's socket buffers must arrive
        // intact through the write-buffer / partial-read machinery.
        let mut eps = ReactorNet::localhost(2).unwrap().into_iter();
        let (mut atx, _arx) = eps.next().unwrap().split();
        let (_btx, mut brx) = eps.next().unwrap().split();
        let big: Vec<u8> = (0..3_000_000u32).map(|i| (i % 251) as u8).collect();
        let want = big.clone();
        let sender = std::thread::spawn(move || atx.send(NodeId(1), big));
        let (from, msg) = brx
            .recv_timeout(Duration::from_secs(30))
            .unwrap()
            .expect("big frame");
        assert_eq!(from, NodeId(0));
        assert_eq!(msg.len(), want.len());
        assert_eq!(msg, want);
        sender.join().unwrap().unwrap();
    }
}
