//! The localhost TCP transport backend.
//!
//! One listening socket per node; peer connections are established
//! lazily on first send and kept open. Frames on the wire use the
//! workspace codec (`teechain_util::codec`): a `u32` little-endian length
//! prefix followed by the codec-encoded `(sender id, payload)` body —
//! the same bit-stable format every protocol message already uses, so a
//! live node's bytes could in principle cross a real WAN. TCP itself
//! provides the reliable, FIFO-per-connection delivery contract.
//!
//! Threading: each endpoint spawns one acceptor thread at construction
//! and one reader thread per accepted connection. All of them watch a
//! shared stop flag (set when the receiving half is dropped), and the
//! winddown path additionally *nudges* every reader by calling
//! `shutdown(2)` on its socket — a blocked read returns immediately
//! instead of waiting out its poll timeout, so dropping the [`TcpRx`]
//! winds the whole endpoint down promptly and deterministically rather
//! than "within one timeout tick if the platform honors read timeouts".

use super::framing::{encode_frame, Frame, FrameBuffer};
use super::{Transport, TransportError, TransportRx, TransportTx};
use crate::engine::NodeId;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let mut buf = Vec::new();
    encode_frame(frame, &mut buf);
    stream.write_all(&buf)
}

/// The winddown switch shared by an endpoint's acceptor and readers:
/// the stop flag plus a registry of every accepted socket, so stopping
/// can interrupt reads that are currently blocked in the kernel instead
/// of waiting for their poll timeout to notice the flag.
struct Winddown {
    stop: AtomicBool,
    readers: Mutex<Vec<TcpStream>>,
}

impl Winddown {
    fn new() -> Arc<Winddown> {
        Arc::new(Winddown {
            stop: AtomicBool::new(false),
            readers: Mutex::new(Vec::new()),
        })
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Registers an accepted socket for the shutdown nudge. If the
    /// winddown already happened, shuts it down on the spot so a racing
    /// accept cannot leave a reader blocked forever.
    fn register(&self, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            let mut readers = self.readers.lock().expect("winddown registry");
            if self.stopped() {
                let _ = clone.shutdown(Shutdown::Both);
            } else {
                readers.push(clone);
            }
        }
    }

    /// Sets the stop flag and nudges every registered reader out of its
    /// blocking read.
    fn trigger(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for stream in self.readers.lock().expect("winddown registry").drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// The localhost TCP network: a factory for [`TcpEndpoint`]s whose
/// listeners are already accepting when the constructor returns.
pub struct TcpNet;

impl TcpNet {
    /// Binds `n` endpoints on ephemeral 127.0.0.1 ports and starts their
    /// acceptor threads. Endpoint `i` is for node `i`.
    pub fn localhost(n: usize) -> std::io::Result<Vec<TcpEndpoint>> {
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }
        let addrs = Arc::new(addrs);
        let endpoints = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let (inbound_tx, inbound_rx) = mpsc::channel();
                let winddown = Winddown::new();
                spawn_acceptor(listener, inbound_tx, winddown.clone());
                TcpEndpoint {
                    id: NodeId(i as u32),
                    addrs: addrs.clone(),
                    rx: inbound_rx,
                    winddown,
                }
            })
            .collect();
        Ok(endpoints)
    }
}

/// Accepts connections and spawns a frame-reader thread per peer.
fn spawn_acceptor(
    listener: TcpListener,
    inbound: Sender<(NodeId, Vec<u8>)>,
    winddown: Arc<Winddown>,
) {
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on listener");
    std::thread::spawn(move || {
        while !winddown.stopped() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    winddown.register(&stream);
                    spawn_reader(stream, inbound.clone(), winddown.clone());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        }
    });
}

/// Reads frames off one peer connection until EOF, error or stop. The
/// winddown path shuts the socket down out from under a blocked read,
/// so exit does not depend on the poll timeout firing.
fn spawn_reader(
    mut stream: TcpStream,
    inbound: Sender<(NodeId, Vec<u8>)>,
    winddown: Arc<Winddown>,
) {
    std::thread::spawn(move || {
        // The listener is nonblocking for stop-flag polling and some
        // platforms let accepted sockets inherit that; reads here must
        // block (with a timeout as a second line of defense should the
        // shutdown nudge ever be unavailable).
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let mut frames = FrameBuffer::new();
        let mut chunk = [0u8; 64 * 1024];
        'conn: while !winddown.stopped() {
            match stream.read(&mut chunk) {
                Ok(0) => break, // Peer closed (or the winddown nudge).
                Ok(n) => {
                    frames.extend(&chunk[..n]);
                    loop {
                        match frames.next_frame::<Frame>() {
                            Ok(Some(frame)) => {
                                if inbound.send((NodeId(frame.from), frame.payload)).is_err() {
                                    break 'conn; // Receiving half is gone.
                                }
                            }
                            Ok(None) => break,     // Await more bytes.
                            Err(_) => break 'conn, // Corrupt stream: drop it.
                        }
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue; // Timeout tick: re-check the stop flag.
                }
                Err(_) => break,
            }
        }
    });
}

/// One node's endpoint on the localhost TCP network.
pub struct TcpEndpoint {
    id: NodeId,
    addrs: Arc<Vec<SocketAddr>>,
    rx: Receiver<(NodeId, Vec<u8>)>,
    winddown: Arc<Winddown>,
}

impl Transport for TcpEndpoint {
    type Tx = TcpTx;
    type Rx = TcpRx;

    fn local_id(&self) -> NodeId {
        self.id
    }

    fn len(&self) -> usize {
        self.addrs.len()
    }

    fn split(self) -> (TcpTx, TcpRx) {
        (
            TcpTx {
                id: self.id,
                addrs: self.addrs.clone(),
                conns: (0..self.addrs.len()).map(|_| None).collect(),
            },
            TcpRx {
                rx: self.rx,
                winddown: self.winddown,
            },
        )
    }
}

/// Sending half of a [`TcpEndpoint`]: lazily connects to each peer's
/// listener and keeps the stream open.
pub struct TcpTx {
    id: NodeId,
    addrs: Arc<Vec<SocketAddr>>,
    conns: Vec<Option<TcpStream>>,
}

impl TcpTx {
    fn stream_for(&mut self, to: NodeId) -> Result<&mut TcpStream, TransportError> {
        let idx = to.0 as usize;
        if idx >= self.addrs.len() {
            return Err(TransportError::Disconnected(to));
        }
        if self.conns[idx].is_none() {
            let stream = TcpStream::connect(self.addrs[idx])
                .map_err(|_| TransportError::Disconnected(to))?;
            // Payments are latency-sensitive single small frames; never
            // let Nagle batch them.
            stream
                .set_nodelay(true)
                .map_err(|e| TransportError::Io(e.to_string()))?;
            self.conns[idx] = Some(stream);
        }
        Ok(self.conns[idx].as_mut().expect("just connected"))
    }
}

impl TransportTx for TcpTx {
    fn send(&mut self, to: NodeId, msg: Vec<u8>) -> Result<(), TransportError> {
        let from = self.id.0;
        let stream = self.stream_for(to)?;
        let frame = Frame { from, payload: msg };
        if write_frame(stream, &frame).is_err() {
            // The peer dropped the connection (e.g. it shut down): forget
            // the stream so a later send can re-dial a restarted peer.
            self.conns[to.0 as usize] = None;
            return Err(TransportError::Disconnected(to));
        }
        Ok(())
    }
}

/// Receiving half of a [`TcpEndpoint`]. Dropping it stops the endpoint's
/// acceptor and nudges every reader thread out of its blocking read.
pub struct TcpRx {
    rx: Receiver<(NodeId, Vec<u8>)>,
    winddown: Arc<Winddown>,
}

impl TransportRx for TcpRx {
    fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(NodeId, Vec<u8>)>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }
}

impl Drop for TcpRx {
    fn drop(&mut self) {
        self.winddown.trigger();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_util::codec::{Decode, Encode};

    #[test]
    fn frame_roundtrip() {
        let f = Frame {
            from: 7,
            payload: vec![1, 2, 3],
        };
        let body = f.encode_to_vec();
        let back = Frame::decode_exact(&body).unwrap();
        assert_eq!(back.from, 7);
        assert_eq!(back.payload, vec![1, 2, 3]);
    }

    #[test]
    fn localhost_mesh_delivers_fifo() {
        let mut eps = TcpNet::localhost(2).unwrap().into_iter();
        let a = eps.next().unwrap();
        let b = eps.next().unwrap();
        assert_eq!((a.local_id(), a.len()), (NodeId(0), 2));
        let (mut atx, _arx) = a.split();
        let (_btx, mut brx) = b.split();
        for i in 0..20u8 {
            atx.send(NodeId(1), vec![i; 3]).unwrap();
        }
        for i in 0..20u8 {
            let (from, msg) = brx
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("frame");
            assert_eq!(from, NodeId(0));
            assert_eq!(msg, vec![i; 3]);
        }
    }

    #[test]
    fn bidirectional_echo_across_threads() {
        let mut eps = TcpNet::localhost(2).unwrap().into_iter();
        let (mut atx, mut arx) = eps.next().unwrap().split();
        let (mut btx, mut brx) = eps.next().unwrap().split();
        let echo = std::thread::spawn(move || {
            while let Ok(Some((from, msg))) = brx.recv_timeout(Duration::from_secs(5)) {
                if msg == b"stop" {
                    break;
                }
                btx.send(from, msg).unwrap();
            }
        });
        for _ in 0..5 {
            atx.send(NodeId(1), b"ping".to_vec()).unwrap();
            let (from, msg) = arx
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("echo");
            assert_eq!((from, &msg[..]), (NodeId(1), &b"ping"[..]));
        }
        atx.send(NodeId(1), b"stop".to_vec()).unwrap();
        echo.join().unwrap();
    }

    #[test]
    fn frame_split_across_slow_writes_survives_read_timeouts() {
        // A frame whose length prefix and body arrive in separate TCP
        // segments, with pauses longer than the reader's 50 ms poll
        // timeout, must still be delivered intact: the reader buffers
        // partial bytes instead of losing them to a timed-out read.
        let eps = TcpNet::localhost(1).unwrap();
        let addr = eps[0].addrs[0];
        let (_tx, mut rx) = eps.into_iter().next().unwrap().split();
        let mut raw = TcpStream::connect(addr).unwrap();
        let body = Frame {
            from: 5,
            payload: b"slowly".to_vec(),
        }
        .encode_to_vec();
        let mut wire = (body.len() as u32).encode_to_vec();
        wire.extend_from_slice(&body);
        // Dribble it out: 2 bytes (half the length prefix), pause past
        // the poll timeout, then the rest one byte at a time.
        raw.write_all(&wire[..2]).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(120));
        for b in &wire[2..] {
            raw.write_all(&[*b]).unwrap();
            raw.flush().unwrap();
        }
        let (from, msg) = rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("split frame delivered");
        assert_eq!((from, &msg[..]), (NodeId(5), &b"slowly"[..]));
    }

    #[test]
    fn dropping_rx_unblocks_reader_threads_immediately() {
        // Regression (winddown race): the reader used to notice the stop
        // flag only between blocking reads, so a harness drop while a
        // reader sat mid-read left winddown at the mercy of the poll
        // timeout. The nudge shuts the socket out from under the read.
        let eps = TcpNet::localhost(1).unwrap();
        let addr = eps[0].addrs[0];
        let (_tx, rx) = eps.into_iter().next().unwrap().split();
        let mut raw = TcpStream::connect(addr).unwrap();
        // Half a length prefix: the reader blocks mid-frame.
        raw.write_all(&[1, 2]).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(100)); // Acceptor registers it.
        drop(rx); // Harness drop: must nudge the blocked reader.
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let start = std::time::Instant::now();
        let mut buf = [0u8; 16];
        // The nudge shuts the socket both ways, so the raw peer observes
        // EOF (or a reset) promptly.
        match raw.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("unexpected {n} bytes from a wound-down endpoint"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "winddown nudge did not interrupt the blocked reader"
        );
    }

    #[test]
    fn oversized_frame_rejected_by_reader() {
        // A raw socket writing an absurd length prefix must not make the
        // reader allocate or deliver anything.
        let eps = TcpNet::localhost(1).unwrap();
        let addr = eps[0].addrs[0];
        let (_tx, mut rx) = eps.into_iter().next().unwrap().split();
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(200)), Ok(None));
    }
}
