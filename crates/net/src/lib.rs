//! The network substrate: a deterministic discrete-event simulator and a
//! live runtime over real threads and sockets.
//!
//! The paper's evaluation runs on a 33-machine testbed spanning the UK, the
//! US and Israel (Fig. 3). This crate reproduces that substrate twice —
//! once in simulation, once for real:
//!
//! * [`engine`] — the event-loop family behind the [`Engine`] trait:
//!   message delivery, timers, and a per-node single-server CPU model (a
//!   node busy processing one message queues the next), which is what
//!   turns per-operation costs into throughput limits. Two
//!   implementations: the sequential loop ([`SeqEngine`], the original
//!   `Simulator`) and the sharded conservative-parallel engine
//!   ([`ShardedEngine`]) whose results are identical for any shard count.
//! * [`live`] — the real substrate: the [`Transport`] abstraction with an
//!   in-process channel backend ([`ThreadNet`]) and a localhost TCP
//!   backend ([`TcpNet`]), plus the [`live::drive`] bridge that runs the
//!   unmodified node handlers outside any engine so a live event loop can
//!   perform their actions as actual I/O.
//! * [`link`] — per-link latency, jitter and bandwidth (simulation only;
//!   live links are as fast as the kernel and the wire).
//! * [`topology`] — the Fig. 3 WAN testbed, complete graphs and the Fig. 5
//!   hub-and-spoke overlay (including generated large-scale variants).
//! * [`stats`] — latency histograms (mean / p50 / p99, as reported in the
//!   paper's tables), mergeable across shards and runs.
//!
//! Simulation is deterministic given a seed: two runs of the same scenario
//! produce identical traces. Live runs race like any real system; they
//! promise only per-connection FIFO delivery, and the sim-vs-live
//! equivalence suite in `crates/core` checks that protocol *outcomes*
//! agree across both substrates.

pub mod engine;
pub mod link;
pub mod live;
pub mod stats;
pub mod topology;

pub use engine::{
    AnyEngine, Ctx, Engine, EngineKind, NodeId, SeqEngine, ShardedEngine, SimNode, SimStats,
    Simulator,
};
pub use link::LinkSpec;
pub use live::{
    NodeAction, ReactorNet, TcpNet, ThreadNet, Transport, TransportError, TransportRx, TransportTx,
};
pub use stats::Histogram;

/// Nanoseconds per microsecond.
pub const US: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const MS: u64 = 1_000_000;
/// Nanoseconds per second.
pub const SEC: u64 = 1_000_000_000;
