//! A deterministic discrete-event network simulator.
//!
//! The paper's evaluation runs on a 33-machine testbed spanning the UK, the
//! US and Israel (Fig. 3). This crate reproduces that substrate in
//! simulation:
//!
//! * [`engine`] — the event-loop family behind the [`Engine`] trait:
//!   message delivery, timers, and a per-node single-server CPU model (a
//!   node busy processing one message queues the next), which is what
//!   turns per-operation costs into throughput limits. Two
//!   implementations: the sequential loop ([`SeqEngine`], the original
//!   `Simulator`) and the sharded conservative-parallel engine
//!   ([`ShardedEngine`]) whose results are identical for any shard count.
//! * [`link`] — per-link latency, jitter and bandwidth.
//! * [`topology`] — the Fig. 3 WAN testbed, complete graphs and the Fig. 5
//!   hub-and-spoke overlay (including generated large-scale variants).
//! * [`stats`] — latency histograms (mean / p50 / p99, as reported in the
//!   paper's tables), mergeable across shards and runs.
//!
//! Everything is deterministic given a seed: two runs of the same scenario
//! produce identical traces.

pub mod engine;
pub mod link;
pub mod stats;
pub mod topology;

pub use engine::{
    AnyEngine, Ctx, Engine, EngineKind, NodeId, SeqEngine, ShardedEngine, SimNode, SimStats,
    Simulator,
};
pub use link::LinkSpec;
pub use stats::Histogram;

/// Nanoseconds per microsecond.
pub const US: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const MS: u64 = 1_000_000;
/// Nanoseconds per second.
pub const SEC: u64 = 1_000_000_000;
