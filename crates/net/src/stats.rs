//! Latency statistics, matching the paper's reporting format
//! (average and 99th percentile).
//!
//! The histogram itself now lives in `teechain-trace` (the metrics
//! registry and the bench harness share it); this module re-exports it
//! so existing `teechain_net::stats::Histogram` users keep compiling.

pub use teechain_trace::Histogram;
