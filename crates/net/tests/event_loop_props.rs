//! Property tests of the event-loop invariants, run against **both**
//! engines under randomized link latencies, jitter, CPU costs, traffic
//! patterns and crash/offline toggles:
//!
//! 1. per-connection FIFO — a receiver never observes messages from one
//!    sender out of order, whatever the jitter;
//! 2. busy-queue deferral — a node charging `c` ns per message never
//!    processes two messages closer than `c` apart (the single-server
//!    queue);
//! 3. conservation — every sent message is either delivered or counted
//!    dropped by crash fault injection;
//! 4. shard-count invariance — the sharded engine's full receipt trace
//!    is bit-for-bit identical at 1 and 3 shards, with window work
//!    stealing forced on or off.

use proptest::prelude::*;
use teechain_net::{AnyEngine, Ctx, EngineKind, LinkSpec, NodeId, SimNode, SimStats, MS};

const NODES: u32 = 4;

/// Records receipts; charges a fixed CPU cost per message.
struct Recorder {
    received: Vec<(u64, u32, u32)>,
    cost_ns: u64,
}

impl SimNode for Recorder {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Vec<u8>) {
        let seq = u32::from_le_bytes([msg[0], msg[1], msg[2], msg[3]]);
        self.received.push((ctx.now_ns(), from.0, seq));
        if self.cost_ns > 0 {
            ctx.busy(self.cost_ns);
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// `from` sends `count` tagged messages to `to`.
    Send { from: u32, to: u32, count: u32 },
    /// Crash or recover a node.
    Offline { node: u32, down: bool },
    /// Advance simulated time.
    Run { ms: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..1 << 16).prop_map(|bits| Op::Send {
                from: (bits % NODES as u64) as u32,
                to: ((bits >> 2) % NODES as u64) as u32,
                count: (1 + (bits >> 4) % 6) as u32,
            }),
            (0u64..2 * NODES as u64).prop_map(|bits| Op::Offline {
                node: (bits % NODES as u64) as u32,
                down: bits >= NODES as u64,
            }),
            (1u64..25).prop_map(|ms| Op::Run { ms }),
        ],
        1..36,
    )
}

#[allow(clippy::type_complexity)]
fn run_case(
    kind: EngineKind,
    steal: Option<bool>,
    ops: &[Op],
    latency_ms: u64,
    jitter_pct: u64,
    costs: &[u64],
) -> (Vec<Vec<(u64, u32, u32)>>, SimStats, u64) {
    let link = LinkSpec {
        latency_ns: latency_ms * MS,
        jitter_frac: jitter_pct as f64 / 100.0,
        bandwidth_bps: Some(10_000_000),
    };
    let nodes = costs
        .iter()
        .map(|&cost_ns| Recorder {
            received: Vec::new(),
            cost_ns,
        })
        .collect();
    let mut eng: AnyEngine<Recorder> = AnyEngine::new(kind, nodes, link, 0xfeed);
    if let Some(steal) = steal {
        eng.set_steal(steal);
    }
    let mut next_seq = vec![0u32; (NODES * NODES) as usize];
    let mut sent = 0u64;
    for op in ops {
        match *op {
            Op::Send { from, to, count } => {
                let base = next_seq[(from * NODES + to) as usize];
                next_seq[(from * NODES + to) as usize] += count;
                eng.call(NodeId(from), |_, ctx| {
                    for k in 0..count {
                        ctx.send(NodeId(to), (base + k).to_le_bytes().to_vec());
                    }
                });
                sent += count as u64;
            }
            Op::Offline { node, down } => eng.set_offline(NodeId(node), down),
            Op::Run { ms } => {
                let t = eng.now_ns() + ms * MS;
                eng.run_until(t);
            }
        }
    }
    eng.run_to_idle(1_000_000);
    let traces = (0..NODES)
        .map(|i| eng.node(NodeId(i)).received.clone())
        .collect();
    (traces, eng.stats(), sent)
}

fn check_invariants(
    label: &str,
    traces: &[Vec<(u64, u32, u32)>],
    stats: &SimStats,
    sent: u64,
    costs: &[u64],
) -> Result<(), proptest::TestCaseError> {
    let mut delivered = 0u64;
    for (i, trace) in traces.iter().enumerate() {
        delivered += trace.len() as u64;
        // (1) Per-connection FIFO: per sender, seqs strictly increase.
        let mut last_seq: Vec<Option<u32>> = vec![None; NODES as usize];
        let mut last_t: Option<u64> = None;
        for &(t, from, seq) in trace {
            if let Some(prev) = last_seq[from as usize] {
                prop_assert!(
                    seq > prev,
                    "{label}: node {i} saw {from}'s #{seq} after #{prev}"
                );
            }
            last_seq[from as usize] = Some(seq);
            // (2) Single-server queue: receipts spaced by the CPU cost.
            if let Some(pt) = last_t {
                prop_assert!(
                    t >= pt + costs[i],
                    "{label}: node {i} processed at {t} < {pt} + cost {}",
                    costs[i]
                );
            }
            last_t = Some(t);
        }
    }
    // (3) Conservation: delivered + dropped accounts for every send.
    prop_assert!(
        delivered + stats.dropped == sent,
        "{label}: {delivered} delivered + {} dropped != {sent} sent",
        stats.dropped
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FIFO, busy-queue deferral and message conservation hold on both
    /// engines for random schedules; the sharded engine's trace is
    /// identical at 1 and 3 shards.
    #[test]
    fn prop_event_loop_invariants(
        ops in arb_ops(),
        latency_ms in 0u64..12,
        jitter_pct in 0u64..40,
        costs in proptest::collection::vec(0u64..2_000_000, 4..5),
    ) {
        let (seq_traces, seq_stats, seq_sent) =
            run_case(EngineKind::Seq, None, &ops, latency_ms, jitter_pct, &costs);
        check_invariants("seq", &seq_traces, &seq_stats, seq_sent, &costs)?;

        let one = run_case(
            EngineKind::Sharded { shards: 1 },
            None, &ops, latency_ms, jitter_pct, &costs,
        );
        check_invariants("sharded:1", &one.0, &one.1, one.2, &costs)?;

        let three = run_case(
            EngineKind::Sharded { shards: 3 },
            Some(true), &ops, latency_ms, jitter_pct, &costs,
        );
        check_invariants("sharded:3", &three.0, &three.1, three.2, &costs)?;

        // (4) Shard-count invariance, trace-exact.
        prop_assert!(one.0 == three.0, "sharded traces diverged");
        prop_assert!(one.1 == three.1, "sharded stats diverged");

        // (5) Scheduling invariance: the claim-based stealing pool is
        // scheduling only, so forcing it off changes nothing.
        let no_steal = run_case(
            EngineKind::Sharded { shards: 3 },
            Some(false), &ops, latency_ms, jitter_pct, &costs,
        );
        prop_assert!(three.0 == no_steal.0, "steal on/off traces diverged");
        prop_assert!(three.1 == no_steal.1, "steal on/off stats diverged");
    }
}
