//! Deterministic pseudo-random number generators.
//!
//! The simulators in this workspace must be reproducible bit-for-bit from a
//! seed, so we use small, well-known generators rather than OS entropy.
//! These are **not** cryptographically secure; enclave key generation mixes
//! in caller-provided entropy and is only as strong as that seed (which is
//! exactly the property the simulated TEE needs).

/// SplitMix64: a tiny, high-quality 64-bit generator, mainly used for
/// seeding [`Xoshiro256`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256++: the workhorse generator for simulation state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding the seed with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection sampling to avoid modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Returns a uniformly distributed value in `[lo, hi]` (inclusive).
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Returns a fresh 32-byte array of pseudo-random bytes.
    pub fn next_bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }

    /// Samples an index from a Zipf-like distribution over `n` items with
    /// exponent `s`, using inverse-CDF on a precomputed table is overkill
    /// here; this uses the rejection method of Devroye which is O(1).
    pub fn next_zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0);
        if s <= 0.0 {
            return self.next_below(n);
        }
        // Rejection sampling (Devroye, "Non-Uniform Random Variate
        // Generation", X.6.1). Valid for s != 1; nudge s at the pole.
        let s = if (s - 1.0).abs() < 1e-9 { 1.000001 } else { s };
        let b = 2f64.powf(s - 1.0);
        loop {
            let u = self.next_f64();
            let v = self.next_f64();
            let x = (u.powf(-1.0 / (s - 1.0))).floor();
            let t = (1.0 + 1.0 / x).powf(s - 1.0);
            if x <= n as f64 && v * x * (t - 1.0) / (b - 1.0) <= t / b {
                return (x as u64) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 computed by the canonical
        // SplitMix64 implementation.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism from equal seeds.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Xoshiro256::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut r = Xoshiro256::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = r.next_range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Xoshiro256::new(11);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn zipf_skewed_towards_small_indices() {
        let mut r = Xoshiro256::new(13);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            let v = r.next_zipf(10, 1.1) as usize;
            counts[v] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > counts[9]);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Xoshiro256::new(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
