//! A small, bit-stable binary wire codec.
//!
//! Transaction identifiers and enclave state digests are SHA-256 hashes of
//! serialized bytes, so serialization must be deterministic and stable. All
//! integers are little-endian; variable-length collections are prefixed with
//! a `u32` length.

use std::collections::BTreeMap;

/// Errors produced while decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// A length prefix or tag was outside the permitted range.
    InvalidValue(&'static str),
    /// Trailing bytes remained after decoding a top-level value.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::InvalidValue(what) => write!(f, "invalid value: {what}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Sequential reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Decodes a value of type `T` from the current position.
    pub fn read<T: Decode>(&mut self) -> Result<T, WireError> {
        T::decode(self)
    }
}

/// Types that can be serialized to the wire format.
pub trait Encode {
    /// Appends the serialized form of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Serializes `self` into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Types that can be deserialized from the wire format.
pub trait Decode: Sized {
    /// Decodes a value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Decodes a value that must consume the entire input.
    fn decode_exact(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        Ok(v)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().unwrap()))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i64);

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read::<u8>()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidValue("bool")),
        }
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.take(N)?.try_into().unwrap())
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.read::<u32>()? as usize;
        // Guard against absurd allocations from corrupt input.
        if len > r.remaining() {
            return Err(WireError::InvalidValue("vec length"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(r.read::<T>()?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read::<u8>()? {
            0 => Ok(None),
            1 => Ok(Some(r.read::<T>()?)),
            _ => Err(WireError::InvalidValue("option tag")),
        }
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.read::<u32>()? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidValue("utf8"))
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((r.read()?, r.read()?))
    }
}

impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.read::<u32>()? as usize;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = r.read::<K>()?;
            let v = r.read::<V>()?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// Implements `Encode`/`Decode` for a struct field-by-field.
#[macro_export]
macro_rules! impl_wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::codec::Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$field.encode(out);)+
            }
        }
        impl $crate::codec::Decode for $ty {
            fn decode(r: &mut $crate::codec::Reader<'_>) -> Result<Self, $crate::codec::WireError> {
                Ok(Self { $($field: r.read()?),+ })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ints_roundtrip() {
        let mut buf = Vec::new();
        42u8.encode(&mut buf);
        7u32.encode(&mut buf);
        u64::MAX.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(r.read::<u8>().unwrap(), 42);
        assert_eq!(r.read::<u32>().unwrap(), 7);
        assert_eq!(r.read::<u64>().unwrap(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn eof_detected() {
        let buf = [1u8, 2];
        let mut r = Reader::new(&buf);
        assert_eq!(r.read::<u32>(), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn bool_rejects_junk() {
        assert_eq!(
            bool::decode_exact(&[2]),
            Err(WireError::InvalidValue("bool"))
        );
    }

    #[test]
    fn option_roundtrip() {
        let v: Option<u32> = Some(9);
        assert_eq!(Option::<u32>::decode_exact(&v.encode_to_vec()).unwrap(), v);
        let n: Option<u32> = None;
        assert_eq!(Option::<u32>::decode_exact(&n.encode_to_vec()).unwrap(), n);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = 1u8.encode_to_vec();
        buf.push(0);
        assert_eq!(u8::decode_exact(&buf), Err(WireError::TrailingBytes));
    }

    #[test]
    fn vec_length_guard() {
        // Claims 2^32-1 elements with 0 bytes of payload.
        let buf = u32::MAX.encode_to_vec();
        assert!(Vec::<u8>::decode_exact(&buf).is_err());
    }

    #[test]
    fn map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "three".to_string());
        m.insert(1u32, "one".to_string());
        let decoded = BTreeMap::<u32, String>::decode_exact(&m.encode_to_vec()).unwrap();
        assert_eq!(decoded, m);
    }

    proptest! {
        #[test]
        fn prop_vec_u64_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..64)) {
            let decoded = Vec::<u64>::decode_exact(&v.encode_to_vec()).unwrap();
            prop_assert_eq!(decoded, v);
        }

        #[test]
        fn prop_string_roundtrip(s in ".{0,64}") {
            let decoded = String::decode_exact(&s.encode_to_vec()).unwrap();
            prop_assert_eq!(decoded, s);
        }

        #[test]
        fn prop_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Decoding arbitrary junk must fail gracefully, never panic.
            let _ = Vec::<u32>::decode_exact(&bytes);
            let _ = String::decode_exact(&bytes);
            let _ = Option::<u64>::decode_exact(&bytes);
        }
    }
}
