//! Shared utilities for the Teechain reproduction.
//!
//! This crate deliberately has no dependencies: the wire codec defined here
//! is used to compute transaction identifiers (hashes of serialized bytes),
//! so its output must be bit-stable across platforms and versions.

pub mod codec;
pub mod hex;
pub mod rng;

pub use codec::{Decode, Encode, Reader, WireError};
pub use rng::{SplitMix64, Xoshiro256};
