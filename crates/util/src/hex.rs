//! Minimal hexadecimal encoding and decoding.

/// Encodes `bytes` as a lowercase hexadecimal string.
///
/// # Examples
///
/// ```
/// assert_eq!(teechain_util::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

/// Decodes a hexadecimal string (upper or lower case) into bytes.
///
/// Returns `None` if the input has odd length or contains a non-hex digit.
///
/// # Examples
///
/// ```
/// assert_eq!(teechain_util::hex::decode("DEad"), Some(vec![0xde, 0xad]));
/// assert_eq!(teechain_util::hex::decode("xy"), None);
/// ```
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u8> = s
        .chars()
        .map(|c| c.to_digit(16).map(|d| d as u8))
        .collect::<Option<_>>()?;
    Some(digits.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

/// Decodes a hex string into a fixed-size array.
///
/// Returns `None` on bad digits or length mismatch.
pub fn decode_array<const N: usize>(s: &str) -> Option<[u8; N]> {
    let v = decode(s)?;
    v.try_into().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_odd_length() {
        assert_eq!(decode("abc"), None);
    }

    #[test]
    fn rejects_bad_digit() {
        assert_eq!(decode("zz"), None);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode(""), Some(vec![]));
    }

    #[test]
    fn fixed_size() {
        assert_eq!(decode_array::<2>("beef"), Some([0xbe, 0xef]));
        assert_eq!(decode_array::<3>("beef"), None);
    }
}
