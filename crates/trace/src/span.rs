//! Span-id derivation and offline causal-tree reconstruction.
//!
//! Span ids are 64-bit FNV-1a hashes of protocol state that *both*
//! endpoints of a causal edge already observe — an op's `(node, seq)`,
//! a sealed wire frame's `(from, to, seq)` header, a co-signing
//! request's `(req_id, origin)` — so the sender and the receiver of a
//! frame derive the same span id independently and no trace context
//! ever needs to ride on the wire (message bytes feed the simulator's
//! bandwidth model; envelope bytes would change timing).
//!
//! Collisions: 64-bit FNV over short structured keys; domain-separation
//! tags keep the key spaces disjoint. A collision would only smudge one
//! trace rendering, never protocol behaviour — acceptable for an
//! observability layer.

use std::collections::{BTreeMap, BTreeSet};

use crate::event::TraceEvent;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `tag || data`, remapped away from 0 (0 means "no span").
pub fn span_id(tag: u8, data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    h ^= tag as u64;
    h = h.wrapping_mul(FNV_PRIME);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    if h == 0 {
        1
    } else {
        h
    }
}

/// Root span of an operation: the submitting node and its op sequence
/// number (the `OpId` the typed API hands back).
pub fn op_span(node: u32, seq: u64) -> u64 {
    let mut key = [0u8; 12];
    key[..4].copy_from_slice(&node.to_le_bytes());
    key[4..].copy_from_slice(&seq.to_le_bytes());
    span_id(b'o', &key)
}

/// Span of one sealed wire frame, derived from the `(from, to, seq)`
/// header fields: the sender knows all three at send time, the receiver
/// at decode time, so both ends mint the same id with zero extra bytes
/// on the wire.
pub fn wire_span(from_pk: &[u8; 64], to_pk: &[u8; 64], seq: u64) -> u64 {
    let mut key = [0u8; 136];
    key[..64].copy_from_slice(from_pk);
    key[64..128].copy_from_slice(to_pk);
    key[128..].copy_from_slice(&seq.to_le_bytes());
    span_id(b'w', &key)
}

/// Span of a co-signing exchange leg (`dir` 0 = request, 1 = response),
/// keyed by the request id and the origin's public key.
pub fn sig_span(req_id: u64, origin_pk: &[u8; 64], dir: u8) -> u64 {
    let mut key = [0u8; 73];
    key[..8].copy_from_slice(&req_id.to_le_bytes());
    key[8..72].copy_from_slice(origin_pk);
    key[72] = dir;
    span_id(b's', &key)
}

/// Span grouping all hops of one multihop route.
pub fn route_span(route_id: u64) -> u64 {
    span_id(b'r', &route_id.to_le_bytes())
}

/// Span of the `n`-th enclave entry on `node`. The counter is
/// deterministic per node (incremented once per ecall in execution
/// order), so sim reruns mint identical ids.
pub fn ecall_span(node: u32, n: u64) -> u64 {
    let mut key = [0u8; 12];
    key[..4].copy_from_slice(&node.to_le_bytes());
    key[4..].copy_from_slice(&n.to_le_bytes());
    span_id(b'e', &key)
}

/// The causal tree reconstructed from a drained event stream.
///
/// Only span-*defining* events ([`crate::event::EventKind::defines_span`]: OpSubmit,
/// Ecall, WireSend) contribute parent edges; annotation events
/// (WireRecv, OpComplete, queue and admission markers) carry their
/// cause informationally but never re-parent a span. The first defining
/// event for a span wins — later defining events for the same span are
/// ignored (a frame span is defined once, at its send site).
#[derive(Debug, Default)]
pub struct SpanTree {
    parent: BTreeMap<u64, u64>,
}

impl SpanTree {
    /// Builds the tree from a merged event stream.
    pub fn build(events: &[TraceEvent]) -> SpanTree {
        let mut parent = BTreeMap::new();
        for e in events {
            if e.kind.defines_span() && e.span != 0 {
                parent.entry(e.span).or_insert(e.parent);
            }
        }
        SpanTree { parent }
    }

    /// The recorded tree parent of `span` (0 = root), or `None` if the
    /// span was never defined in the stream.
    pub fn parent(&self, span: u64) -> Option<u64> {
        self.parent.get(&span).copied()
    }

    /// Number of defined spans.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if no spans were defined.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// All spans whose parent chain reaches `root` (including `root`
    /// itself if defined). Walks each chain with a visited set, so
    /// cycles and dangling parents terminate.
    pub fn reachable_from(&self, root: u64) -> BTreeSet<u64> {
        let mut out = BTreeSet::new();
        for &span in self.parent.keys() {
            let mut cur = span;
            let mut hops = 0;
            while cur != 0 && hops <= self.parent.len() {
                if cur == root {
                    out.insert(span);
                    break;
                }
                match self.parent.get(&cur) {
                    Some(&p) => cur = p,
                    None => break,
                }
                hops += 1;
            }
        }
        out
    }

    /// True if every defined span's parent chain terminates at `root`
    /// (the single-rooted-tree property the causality suite asserts for
    /// a traced multihop payment).
    pub fn single_rooted_at(&self, root: u64) -> bool {
        !self.parent.is_empty() && self.reachable_from(root).len() == self.parent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn defining(span: u64, parent: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: 0,
            node: 0,
            kind: EventKind::Ecall,
            span,
            parent,
            a: 0,
            b: 0,
        }
    }

    fn annotation(span: u64, parent: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: 0,
            node: 0,
            kind: EventKind::OpComplete,
            span,
            parent,
            a: 1,
            b: 0,
        }
    }

    #[test]
    fn span_ids_are_stable_distinct_and_nonzero() {
        assert_eq!(op_span(3, 7), op_span(3, 7));
        assert_ne!(op_span(3, 7), op_span(7, 3));
        // Domain separation: same key bytes, different kind.
        assert_ne!(op_span(1, 2), ecall_span(1, 2));
        let a = [0u8; 64];
        let b = [1u8; 64];
        assert_ne!(wire_span(&a, &b, 5), wire_span(&b, &a, 5));
        assert_ne!(sig_span(9, &a, 0), sig_span(9, &a, 1));
        for id in [op_span(0, 0), route_span(0), ecall_span(0, 0)] {
            assert_ne!(id, 0);
        }
    }

    #[test]
    fn tree_follows_defining_events_only() {
        // root(10) <- 20 <- 30, plus an annotation claiming 20's cause
        // is 99 — which must not re-parent 20.
        let events = vec![
            defining(10, 0),
            defining(20, 10),
            annotation(20, 99),
            defining(30, 20),
        ];
        let t = SpanTree::build(&events);
        assert_eq!(t.len(), 3);
        assert_eq!(t.parent(20), Some(10));
        assert!(t.single_rooted_at(10));
        assert_eq!(t.reachable_from(10).len(), 3);
    }

    #[test]
    fn first_definition_wins() {
        let events = vec![defining(20, 10), defining(20, 55)];
        let t = SpanTree::build(&events);
        assert_eq!(t.parent(20), Some(10));
    }

    #[test]
    fn detects_forests_and_survives_cycles() {
        let forest = SpanTree::build(&[defining(10, 0), defining(20, 0), defining(30, 20)]);
        assert!(!forest.single_rooted_at(10));
        assert_eq!(forest.reachable_from(10), BTreeSet::from([10]));
        // A (corrupt) cyclic stream must not hang reconstruction.
        let cyclic = SpanTree::build(&[defining(1, 2), defining(2, 1)]);
        assert!(!cyclic.single_rooted_at(3));
    }
}
