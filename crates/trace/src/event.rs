//! The compact binary trace event — the only thing the flight recorder
//! stores.
//!
//! One event is a fixed 45-byte little-endian record; a drained trace is
//! just the concatenation ([`encode_all`]), so "byte-identical traces"
//! is a meaningful, testable property (the determinism suite compares
//! these bytes across reruns and shard counts).

/// What happened. The discriminant is the wire byte.
///
/// Three kinds *define* a span's position in the causal tree (their
/// `parent` field is the span's tree parent): [`EventKind::OpSubmit`],
/// [`EventKind::Ecall`] and [`EventKind::WireSend`]. Every other kind is
/// an *annotation inside* an existing span — its `parent` field carries
/// the recording site's current cause for flow rendering, but does not
/// re-parent the span (see [`crate::span::SpanTree`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// An operation was submitted; `span` is its root span, `a` the op
    /// sequence number.
    OpSubmit = 1,
    /// An operation resolved; `span` is its root span, `a` is 1 for
    /// success / 0 for a typed error, `parent` the resolving cause.
    OpComplete = 2,
    /// An enclave entry (command, delivery, pump); `parent` is the
    /// triggering span (op root, inbound wire frame, or 0 for a timer).
    Ecall = 3,
    /// A wire frame left this node; `span` is the frame span (derived
    /// from the sealed header both endpoints see), `a` the frame bytes.
    WireSend = 4,
    /// A wire frame arrived; same `span` as the sender's
    /// [`EventKind::WireSend`] — this is the cross-node causal stitch.
    WireRecv = 5,
    /// Work entered a wait queue (host throttle park, or `a` ops entered
    /// the in-enclave admission queues during the annotated ecall).
    QueueEnter = 6,
    /// Work left a wait queue (host throttle re-dispatch).
    QueueExit = 7,
    /// `a` inbound messages were deferred behind a locked channel.
    AdmitDefer = 8,
    /// `a` admission drain batches committed, applying `b` payments.
    AdmitBatch = 9,
    /// `a` ops were rerouted over an unlocked sibling channel.
    AdmitReroute = 10,
    /// `a` queued/deferred entries expired at their admission deadline.
    AdmitExpire = 11,
    /// A WAL commit record of `a` bytes was appended durably.
    WalAppend = 12,
    /// A sealed snapshot of `a` bytes was installed.
    WalSnapshot = 13,
    /// Free-form marker (tests, harnesses).
    Mark = 14,
}

impl EventKind {
    /// Decodes the wire byte.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::OpSubmit,
            2 => EventKind::OpComplete,
            3 => EventKind::Ecall,
            4 => EventKind::WireSend,
            5 => EventKind::WireRecv,
            6 => EventKind::QueueEnter,
            7 => EventKind::QueueExit,
            8 => EventKind::AdmitDefer,
            9 => EventKind::AdmitBatch,
            10 => EventKind::AdmitReroute,
            11 => EventKind::AdmitExpire,
            12 => EventKind::WalAppend,
            13 => EventKind::WalSnapshot,
            14 => EventKind::Mark,
            _ => return None,
        })
    }

    /// True if this kind's `parent` field defines its span's position in
    /// the causal tree (rather than annotating an existing span).
    pub fn defines_span(self) -> bool {
        matches!(
            self,
            EventKind::OpSubmit | EventKind::Ecall | EventKind::WireSend
        )
    }

    /// Stable display name (also the chrome://tracing event name).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::OpSubmit => "op_submit",
            EventKind::OpComplete => "op_complete",
            EventKind::Ecall => "ecall",
            EventKind::WireSend => "wire_send",
            EventKind::WireRecv => "wire_recv",
            EventKind::QueueEnter => "queue_enter",
            EventKind::QueueExit => "queue_exit",
            EventKind::AdmitDefer => "admit_defer",
            EventKind::AdmitBatch => "admit_batch",
            EventKind::AdmitReroute => "admit_reroute",
            EventKind::AdmitExpire => "admit_expire",
            EventKind::WalAppend => "wal_append",
            EventKind::WalSnapshot => "wal_snapshot",
            EventKind::Mark => "mark",
        }
    }
}

/// One flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When: simulated ns under the engines, monotonic ns since the
    /// cluster epoch under the live runtime.
    pub ts_ns: u64,
    /// Which node recorded it.
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
    /// The span this event belongs to (0 = uncorrelated).
    pub span: u64,
    /// Tree parent (defining kinds) or causal annotation (others).
    pub parent: u64,
    /// Kind-specific payload (counts, byte sizes, sequence numbers).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
}

impl TraceEvent {
    /// Fixed encoded size: ts(8) + node(4) + kind(1) + span(8) +
    /// parent(8) + a(8) + b(8).
    pub const ENCODED_LEN: usize = 45;

    /// Appends the fixed little-endian encoding.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ts_ns.to_le_bytes());
        out.extend_from_slice(&self.node.to_le_bytes());
        out.push(self.kind as u8);
        out.extend_from_slice(&self.span.to_le_bytes());
        out.extend_from_slice(&self.parent.to_le_bytes());
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
    }

    /// Decodes one record from the front of `bytes`.
    pub fn decode(bytes: &[u8]) -> Option<TraceEvent> {
        if bytes.len() < Self::ENCODED_LEN {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        Some(TraceEvent {
            ts_ns: u64_at(0),
            node: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            kind: EventKind::from_u8(bytes[12])?,
            span: u64_at(13),
            parent: u64_at(21),
            a: u64_at(29),
            b: u64_at(37),
        })
    }
}

/// Encodes a whole event stream as the concatenation of fixed records —
/// the byte string the determinism suite compares.
pub fn encode_all(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * TraceEvent::ENCODED_LEN);
    for e in events {
        e.encode_into(&mut out);
    }
    out
}

/// Decodes a concatenated stream; `None` on truncation or an unknown
/// kind byte.
pub fn decode_all(bytes: &[u8]) -> Option<Vec<TraceEvent>> {
    if !bytes.len().is_multiple_of(TraceEvent::ENCODED_LEN) {
        return None;
    }
    bytes
        .chunks_exact(TraceEvent::ENCODED_LEN)
        .map(TraceEvent::decode)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(k: EventKind) -> TraceEvent {
        TraceEvent {
            ts_ns: 123_456_789,
            node: 7,
            kind: k,
            span: 0xDEAD_BEEF_0102_0304,
            parent: 42,
            a: u64::MAX,
            b: 9,
        }
    }

    #[test]
    fn round_trips_every_kind() {
        for byte in 0..=u8::MAX {
            let Some(kind) = EventKind::from_u8(byte) else {
                continue;
            };
            let e = sample(kind);
            let mut buf = Vec::new();
            e.encode_into(&mut buf);
            assert_eq!(buf.len(), TraceEvent::ENCODED_LEN);
            assert_eq!(TraceEvent::decode(&buf), Some(e));
        }
    }

    #[test]
    fn stream_round_trip_and_truncation() {
        let events = vec![sample(EventKind::OpSubmit), sample(EventKind::WireRecv)];
        let bytes = encode_all(&events);
        assert_eq!(decode_all(&bytes), Some(events));
        assert_eq!(decode_all(&bytes[..bytes.len() - 1]), None);
        let mut bad = bytes.clone();
        bad[12] = 0xFF; // Unknown kind byte.
        assert_eq!(decode_all(&bad), None);
        assert_eq!(decode_all(&[]), Some(Vec::new()));
    }

    #[test]
    fn defining_kinds_are_exactly_the_tree_edges() {
        let defining: Vec<EventKind> = (0..=u8::MAX)
            .filter_map(EventKind::from_u8)
            .filter(|k| k.defines_span())
            .collect();
        assert_eq!(
            defining,
            vec![EventKind::OpSubmit, EventKind::Ecall, EventKind::WireSend]
        );
    }
}
