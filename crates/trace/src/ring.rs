//! The flight-recorder storage: a capacity-bounded ring of trace
//! events that overwrites the oldest entry on overflow.
//!
//! Allocation is lazy — a ring that never records (the common case: the
//! default-off tracer at every node of a 10k-node scale run) holds an
//! empty `VecDeque` and costs a few machine words, not `cap` slots.

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// Default per-node capacity: 64k events ≈ 2.8 MiB when full.
pub const DEFAULT_RING_CAP: usize = 65_536;

/// A bounded ring buffer of [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct Ring {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl Default for Ring {
    fn default() -> Self {
        Ring::new(DEFAULT_RING_CAP)
    }
}

impl Ring {
    /// Creates an empty ring holding at most `cap` events (`cap` 0 is
    /// clamped to 1 so `push` stays total).
    pub fn new(cap: usize) -> Ring {
        Ring {
            buf: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest (and counting it dropped)
    /// when full.
    pub fn push(&mut self, e: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(e);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// How many events were overwritten before they could be drained.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns all buffered events, oldest first. The
    /// dropped counter is preserved (it describes lifetime loss, not
    /// the current buffer).
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(a: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: a,
            node: 0,
            kind: EventKind::Mark,
            span: 1,
            parent: 0,
            a,
            b: 0,
        }
    }

    #[test]
    fn overwrites_oldest_and_counts_drops() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.drain().iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert!(r.is_empty());
        // Lifetime drop count survives the drain.
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn empty_ring_allocates_nothing() {
        let r = Ring::new(DEFAULT_RING_CAP);
        assert_eq!(r.buf.capacity(), 0);
        assert_eq!(r.cap(), DEFAULT_RING_CAP);
    }

    #[test]
    fn zero_cap_is_clamped() {
        let mut r = Ring::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.drain()[0].a, 2);
    }
}
