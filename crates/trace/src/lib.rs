//! `teechain-trace`: the observability layer of the reproduction.
//!
//! Three pillars, all hand-rolled (the workspace vendors every
//! dependency; no `tracing` crate):
//!
//! * **Causal spans** ([`span`]) — every operation, enclave ecall and
//!   wire frame gets a 64-bit span id, derived *deterministically* from
//!   protocol state that both endpoints of an edge already see (operation
//!   ids, sealed-frame `(from, to, seq)` headers, route ids). No trace
//!   context ever rides on the wire: message bytes feed the simulator's
//!   bandwidth model, so adding envelope bytes would change simulated
//!   timing and break the "tracing on == tracing off" determinism
//!   guarantee. Parent links are recorded host-side instead, and
//!   [`span::SpanTree`] rebuilds the causal tree offline.
//! * **Flight recorder** ([`Tracer`] over [`Ring`]) — a fixed-capacity
//!   per-node ring buffer of compact binary [`TraceEvent`]s, overwriting
//!   the oldest on overflow (counted, never silently). Host side only:
//!   the enclave's sealed state and the wire format are untouched.
//! * **Metrics registry** ([`Registry`]) — named counters, gauges and
//!   the exact [`Histogram`] behind one snapshot-able surface, merged
//!   across nodes/shards for `Cluster::observe()` and the `BENCH_*.json`
//!   artifacts.
//!
//! # Cost model
//!
//! Recording compiles out entirely without the `record` cargo feature:
//! [`Tracer::record`] is an inlined empty stub and
//! [`Tracer::enabled`] is a compile-time `false`, so guarded call sites
//! fold away. With the feature on, a *disabled* tracer (the default)
//! costs one branch per site and allocates nothing — rings allocate
//! lazily on first push. Timestamps are supplied by the caller: sim-time
//! under the engines, monotonic wall-clock under the live runtime, which
//! is what keeps sim traces bit-reproducible.

pub mod event;
pub mod hist;
pub mod metrics;
pub mod ring;
pub mod span;
pub mod tracer;

pub use event::{EventKind, TraceEvent};
pub use hist::Histogram;
pub use metrics::{HistSummary, Registry, Snapshot};
pub use ring::Ring;
pub use span::SpanTree;
pub use tracer::Tracer;

/// Merges per-node drained event streams into one deterministic
/// cluster-wide stream, ordered by `(ts_ns, node)` with each node's own
/// insertion order preserved (stable sort). Under the simulated engines
/// this order — and therefore [`event::encode_all`] of the result — is
/// identical for any shard count and across reruns.
pub fn merge_events(streams: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = streams.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.ts_ns, e.node));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_time_then_node_stably() {
        let ev = |ts, node, a| TraceEvent {
            ts_ns: ts,
            node,
            kind: EventKind::Mark,
            span: 1,
            parent: 0,
            a,
            b: 0,
        };
        let merged = merge_events(vec![
            vec![ev(5, 1, 0), ev(5, 1, 1)],
            vec![ev(3, 0, 2), ev(5, 0, 3)],
        ]);
        let key: Vec<(u64, u32, u64)> = merged.iter().map(|e| (e.ts_ns, e.node, e.a)).collect();
        assert_eq!(key, vec![(3, 0, 2), (5, 0, 3), (5, 1, 0), (5, 1, 1)]);
    }
}
