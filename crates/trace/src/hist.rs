//! Latency statistics, matching the paper's reporting format
//! (average and 99th percentile).
//!
//! Lived in `teechain-net` historically; moved here so the metrics
//! registry, the bench harness and the engines all share one type
//! (`teechain-net` re-exports it for compatibility).

/// A simple exact histogram: stores all samples.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample (e.g. a latency in nanoseconds).
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Folds another histogram's samples into this one — the shard/run
    /// aggregation primitive. Quantiles of the merged histogram are
    /// exact (samples are stored, not bucketed), so merging per-shard
    /// histograms gives the same percentiles as one global histogram.
    pub fn merge(&mut self, other: &Histogram) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0.0..=1.0) by nearest-rank; 0 if empty.
    pub fn quantile(&mut self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        self.ensure_sorted();
        let rank = ((self.samples.len() as f64) * q).ceil() as usize;
        self.samples[rank.clamp(1, self.samples.len()) - 1]
    }

    /// Median.
    pub fn p50(&mut self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile — the bracketed figure in Tables 1 and 2.
    pub fn p99(&mut self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the tail the per-op-kind latency sections
    /// report.
    pub fn p999(&mut self) -> u64 {
        self.quantile(0.999)
    }

    /// Maximum sample (0 if empty).
    pub fn max(&mut self) -> u64 {
        self.ensure_sorted();
        self.samples.last().copied().unwrap_or(0)
    }

    /// Minimum sample (0 if empty).
    pub fn min(&mut self) -> u64 {
        self.ensure_sorted();
        self.samples.first().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn mean_and_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.mean(), 50.5);
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.p999(), 100);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn p999_separates_from_p99_at_scale() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.p99(), 9_900);
        assert_eq!(h.p999(), 9_990);
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut h = Histogram::new();
        h.record(10);
        assert_eq!(h.p50(), 10);
        h.record(20);
        h.record(30);
        assert_eq!(h.p50(), 20);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn merge_equals_global_recording() {
        // Recording 1..=100 split across three shards and merging gives
        // exactly the same statistics as one global histogram.
        let mut global = Histogram::new();
        let mut shards = [Histogram::new(), Histogram::new(), Histogram::new()];
        for v in 1..=100u64 {
            global.record(v);
            shards[(v % 3) as usize].record(v);
        }
        let mut merged = Histogram::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.len(), global.len());
        assert_eq!(merged.mean(), global.mean());
        assert_eq!(merged.p50(), global.p50());
        assert_eq!(merged.p99(), global.p99());
        assert_eq!(merged.min(), global.min());
        assert_eq!(merged.max(), global.max());
    }

    #[test]
    fn merge_empty_is_identity_and_resets_sort() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(1);
        assert_eq!(h.p50(), 1); // Forces a sort.
        let empty = Histogram::new();
        h.merge(&empty);
        assert_eq!(h.len(), 2);
        let mut other = Histogram::new();
        other.record(0);
        h.merge(&other);
        // Still correct after merging into a previously-sorted histogram.
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 5);
        let mut into_empty = Histogram::new();
        into_empty.merge(&h);
        assert_eq!(into_empty.len(), 3);
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p99(), 42);
        assert_eq!(h.mean(), 42.0);
    }
}
