//! The unified metrics registry: named counters, gauges and exact
//! histograms behind one snapshot-able, mergeable surface.
//!
//! Counters add across nodes, gauges take the max (they are
//! high-watermarks), histograms merge sample-exactly — so folding
//! per-node registries into one gives the same numbers a single global
//! registry would have seen. `BTreeMap` keys keep iteration (and every
//! emitted JSON) deterministically ordered.

use std::collections::BTreeMap;

use crate::hist::Histogram;

/// A mergeable bag of named metrics.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `v` to the named counter (a zero add still materializes the
    /// key, so snapshots list the metric).
    pub fn counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets the named gauge to `v` (last write wins).
    pub fn gauge(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Raises the named gauge to `v` if higher — the high-watermark
    /// primitive.
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        if v > *g {
            *g = v;
        }
    }

    /// Records a sample into the named histogram.
    pub fn hist(&mut self, name: &str, sample: u64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(sample);
    }

    /// Merges a histogram wholesale under `name` (bench aggregation).
    pub fn hist_merge(&mut self, name: &str, h: &Histogram) {
        self.hists.entry(name.to_string()).or_default().merge(h);
    }

    /// Folds `other` in: counters add, gauges take the max, histograms
    /// merge their samples.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauge_max(k, *v);
        }
        for (k, h) in &other.hists {
            self.hist_merge(k, h);
        }
    }

    /// Reads a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge (0 if never set).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Freezes the current state into an ordered, summary-form snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), HistSummary::of(&mut h.clone())))
                .collect(),
        }
    }
}

/// A point-in-time, plain-data view of a [`Registry`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Snapshot {
    /// Monotonic totals.
    pub counters: BTreeMap<String, u64>,
    /// Levels / high-watermarks.
    pub gauges: BTreeMap<String, u64>,
    /// Summarized latency distributions.
    pub hists: BTreeMap<String, HistSummary>,
}

/// The summary form a histogram takes in snapshots and `BENCH_*.json`
/// latency sections.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Sample count.
    pub count: u64,
    /// Arithmetic mean, in the samples' unit (ns throughout this repo).
    pub mean_ns: f64,
    /// Minimum sample.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum sample.
    pub max: u64,
}

impl HistSummary {
    /// Summarizes a histogram (zeros if empty).
    pub fn of(h: &mut Histogram) -> HistSummary {
        HistSummary {
            count: h.len() as u64,
            mean_ns: h.mean(),
            min: h.min(),
            p50: h.p50(),
            p99: h.p99(),
            p999: h.p999(),
            max: h.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_gauges_max_hists_merge() {
        let mut a = Registry::new();
        a.counter("ops", 3);
        a.gauge_max("queue_depth_hwm", 5);
        a.hist("lat", 10);
        a.hist("lat", 30);

        let mut b = Registry::new();
        b.counter("ops", 4);
        b.gauge_max("queue_depth_hwm", 2);
        b.hist("lat", 20);

        a.merge(&b);
        assert_eq!(a.counter_value("ops"), 7);
        assert_eq!(a.gauge_value("queue_depth_hwm"), 5);
        let snap = a.snapshot();
        let lat = snap.hists["lat"];
        assert_eq!(lat.count, 3);
        assert_eq!(lat.min, 10);
        assert_eq!(lat.max, 30);
        assert_eq!(lat.p50, 20);
    }

    #[test]
    fn gauge_set_vs_max() {
        let mut r = Registry::new();
        r.gauge("depth", 9);
        r.gauge("depth", 4); // Plain set: last write wins.
        assert_eq!(r.gauge_value("depth"), 4);
        r.gauge_max("depth", 2); // Max: never lowers.
        assert_eq!(r.gauge_value("depth"), 4);
        r.gauge_max("depth", 11);
        assert_eq!(r.gauge_value("depth"), 11);
    }

    #[test]
    fn snapshot_is_ordered_and_zero_safe() {
        let mut r = Registry::new();
        r.counter("b", 1);
        r.counter("a", 0);
        let snap = r.snapshot();
        let keys: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(snap.counters["a"], 0);
        assert!(snap.hists.is_empty());
    }

    #[test]
    fn merged_registry_matches_global() {
        let mut global = Registry::new();
        let mut shards = vec![Registry::new(), Registry::new()];
        for v in 1..=50u64 {
            global.hist("lat", v);
            shards[(v % 2) as usize].hist("lat", v);
        }
        let mut merged = Registry::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(
            merged.snapshot().hists["lat"],
            global.snapshot().hists["lat"]
        );
    }
}
