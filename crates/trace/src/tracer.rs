//! The per-node recording handle: a runtime on/off switch, the current
//! causal context, the deterministic ecall counter and the flight ring.
//!
//! Cost model, in order of cheapness:
//!
//! * `record` feature off → [`Tracer::enabled`] is a compile-time
//!   `false` and [`Tracer::record`] an inlined empty stub, so guarded
//!   call sites (and the span-derivation work they protect) fold away.
//! * feature on, tracer off (the default) → one predictable branch per
//!   site, no allocation (the ring allocates on first push).
//! * feature on, tracer on → a ring push per event.

use crate::event::{EventKind, TraceEvent};
use crate::ring::{Ring, DEFAULT_RING_CAP};

/// Per-node flight recorder and causal-context holder.
#[derive(Debug)]
pub struct Tracer {
    on: bool,
    node: u32,
    /// The span causally responsible for whatever the node is doing
    /// right now (op root while dispatching, wire span while delivering,
    /// ecall span inside the enclave). 0 = no cause (e.g. a timer).
    cause: u64,
    /// Ecall counter feeding [`crate::span::ecall_span`]; monotonically
    /// increments per enclave entry, giving deterministic ids in sim.
    ecalls: u64,
    ring: Ring,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(0)
    }
}

impl Tracer {
    /// A disabled tracer for `node` with the default ring capacity.
    pub fn new(node: u32) -> Tracer {
        Tracer {
            on: false,
            node,
            cause: 0,
            ecalls: 0,
            ring: Ring::new(DEFAULT_RING_CAP),
        }
    }

    /// Turns recording on/off and (optionally) rebounds the ring.
    pub fn configure(&mut self, on: bool, cap: Option<usize>) {
        self.on = on;
        if let Some(cap) = cap {
            self.ring = Ring::new(cap);
        }
    }

    /// The node id stamped on recorded events.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Re-assigns the node id (used when a node is built before its
    /// final position is known).
    pub fn set_node(&mut self, node: u32) {
        self.node = node;
    }

    /// True only when recording is compiled in *and* switched on — a
    /// compile-time `false` without the `record` feature, so
    /// `if tracer.enabled() { ...derive spans... }` blocks fold away.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        cfg!(feature = "record") && self.on
    }

    /// Sets the current causal context (0 clears it).
    #[inline]
    pub fn set_cause(&mut self, span: u64) {
        self.cause = span;
    }

    /// The current causal context.
    #[inline]
    pub fn cause(&self) -> u64 {
        self.cause
    }

    /// Mints the span id for the next enclave entry. Counts every ecall
    /// (even with recording off) so enabling tracing mid-run never
    /// changes the ids an always-on run would mint.
    #[inline]
    pub fn next_ecall_span(&mut self) -> u64 {
        let n = self.ecalls;
        self.ecalls += 1;
        crate::span::ecall_span(self.node, n)
    }

    /// Records one event. An empty inlined stub without the `record`
    /// feature; a no-op when the tracer is off.
    #[inline]
    pub fn record(&mut self, ts_ns: u64, kind: EventKind, span: u64, parent: u64, a: u64, b: u64) {
        #[cfg(feature = "record")]
        if self.on {
            self.ring.push(TraceEvent {
                ts_ns,
                node: self.node,
                kind,
                span,
                parent,
                a,
                b,
            });
        }
        #[cfg(not(feature = "record"))]
        let _ = (ts_ns, kind, span, parent, a, b);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events overwritten before drain (ring overflow).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Drains the buffered events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.ring.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(1);
        t.record(10, EventKind::Mark, 1, 0, 0, 0);
        assert!(t.is_empty());
        assert!(!t.enabled());
    }

    #[cfg(feature = "record")]
    #[test]
    fn enabled_tracer_buffers_and_drains() {
        let mut t = Tracer::new(4);
        t.configure(true, Some(8));
        assert!(t.enabled());
        t.set_cause(77);
        t.record(10, EventKind::Mark, 5, t.cause(), 1, 2);
        let drained = t.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].node, 4);
        assert_eq!(drained[0].parent, 77);
        assert!(t.is_empty());
    }

    #[test]
    fn ecall_spans_are_deterministic_and_advance_when_off() {
        let mut a = Tracer::new(2);
        let mut b = Tracer::new(2);
        // `a` records, `b` doesn't — the minted ids must match anyway.
        a.configure(true, None);
        let ids_a: Vec<u64> = (0..3).map(|_| a.next_ecall_span()).collect();
        let ids_b: Vec<u64> = (0..3).map(|_| b.next_ecall_span()).collect();
        assert_eq!(ids_a, ids_b);
        assert_eq!(ids_a.len(), 3);
        assert!(ids_a.iter().all(|&s| s != 0));
    }
}
