//! The determinism suite: a fixed-seed cluster — setup, payments,
//! everything — produces identical `SimStats`, latency histograms and
//! final enclave balances for shard counts 1, 2 and 8.
//!
//! The compared shard counts come from `TEECHAIN_SHARDS` (a comma list,
//! default `1,2,8`); CI runs a matrix over pairs so a regression names
//! the offending count.

use teechain::ops::Completion;
use teechain_bench::report::fmt_thousands;
use teechain_bench::scenarios::{build_sparse_network, scale_jobs, wan_100ms};
use teechain_net::topology::HubSpoke;
use teechain_net::SimStats;

/// Everything observable about one end-to-end run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    completed: u64,
    queued: u64,
    batches: u64,
    batched_payments: u64,
    max_batch: u64,
    rerouted: u64,
    duration_ns: u64,
    sim_stats: SimStats,
    now_ns: u64,
    /// Latency samples in collection order (exact, not summarized).
    latencies: Vec<u64>,
    /// (channel, node, my_bal, remote_bal) for both ends of every
    /// channel, in deterministic order.
    balances: Vec<(u32, u64, u64)>,
    /// The merged completion stream of the measured phase: operation
    /// ids, outcomes AND times must be identical for any shard count.
    completions: Vec<Completion>,
    /// Per-node swap phase-transition counters
    /// (init, locked, redeemed, refunded): the cross-chain swap state
    /// machine — timers, alternate-chain mining, secret reveal — must
    /// schedule identically under every engine configuration.
    swap_phases: Vec<(u64, u64, u64, u64)>,
}

/// Builds the cluster AND runs the workload entirely under
/// `sharded:<shards>` (via the env knob every harness honors) with the
/// window scheduler's work stealing forced on or off, then fingerprints
/// the world.
fn run_at(shards: usize, steal: bool) -> Fingerprint {
    std::env::set_var("TEECHAIN_ENGINE", format!("sharded:{shards}"));
    std::env::set_var("TEECHAIN_STEAL", if steal { "1" } else { "0" });
    // A shrunk Fig. 5 overlay (same three-tier shape as paper_default,
    // fewer leaves) so three full setups stay fast in debug builds.
    let hs = HubSpoke {
        tier1: 3,
        tier2: 9,
        tier3: 9,
    };
    let mut net = build_sparse_network(&hs, wan_100ms(), 1234, 2);
    let jobs = scale_jobs(&net, &hs, 300, 99);
    for (i, j) in jobs {
        net.cluster.load(i, j, 8);
    }
    // Record the measured phase's completion streams: every operation's
    // terminal outcome (id, result, timestamp) must be bit-identical
    // across shard counts, like any other event.
    net.cluster.set_record_completions(true);
    let stats = net.cluster.run(50_000_000);
    // Swap phase: a deterministic batch of cross-chain swaps over the
    // first few channels — one of them griefed (that responder's host
    // never funds the HTLC) so the deadline-refund timers are part of
    // the fingerprint too. All channels share the hub as initiator, so
    // the grief knob must sit on a responder to hit exactly one swap.
    {
        let mut keys: Vec<_> = net.channels.keys().copied().collect();
        keys.sort();
        for (idx, key) in keys.iter().take(6).enumerate() {
            let chan = net.channels[key][0];
            let from = key.0 .0 as usize;
            if idx == 0 {
                net.cluster
                    .sim
                    .node_mut(key.1)
                    .host
                    .node
                    .swap_withhold_funding = true;
            }
            net.cluster.submit(
                from,
                teechain::enclave::Command::Swap {
                    swap: teechain::types::SwapId::from_label(&format!("det-swap-{idx}")),
                    channel: chan,
                    amount: 1,
                    alt_amount: 2,
                    // Roomy timelock: the six swaps share one alternate
                    // chain, and the enclave refuses locks whose refund
                    // path is near maturity (confirmations accrue with
                    // every concurrent mint/claim block).
                    timeout_blocks: 144,
                },
            );
        }
        net.cluster.settle();
    }
    let mut swap_phases = Vec::new();
    for i in 0..net.cluster.sim.len() {
        let r = net
            .cluster
            .sim
            .node(teechain_net::NodeId(i as u32))
            .host
            .node
            .registry();
        swap_phases.push((
            r.counter_value("swap.phase.init"),
            r.counter_value("swap.phase.locked"),
            r.counter_value("swap.phase.redeemed"),
            r.counter_value("swap.phase.refunded"),
        ));
    }
    let mut latencies = Vec::new();
    for i in 0..net.cluster.sim.len() {
        let node = net.cluster.sim.node(teechain_net::NodeId(i as u32));
        latencies.extend_from_slice(node.stats.latencies.samples());
    }
    let mut balances = Vec::new();
    let mut keys: Vec<_> = net.channels.keys().copied().collect();
    keys.sort();
    for key in keys {
        for chan in &net.channels[&key] {
            for node in [key.0, key.1] {
                let c = net
                    .cluster
                    .sim
                    .node(node)
                    .host
                    .node
                    .enclave
                    .program()
                    .and_then(|p| p.channel(chan))
                    .expect("channel exists on both ends");
                balances.push((node.0, c.my_bal, c.remote_bal));
            }
        }
    }
    Fingerprint {
        completed: stats.completed,
        queued: stats.queued,
        batches: stats.batches,
        batched_payments: stats.batched_payments,
        max_batch: stats.max_batch,
        rerouted: stats.rerouted,
        duration_ns: stats.duration_ns,
        sim_stats: net.cluster.sim.stats(),
        now_ns: net.cluster.sim.now_ns(),
        latencies,
        balances,
        completions: net.cluster.completion_log(),
        swap_phases,
    }
}

#[test]
fn fixed_seed_run_is_identical_across_shard_counts() {
    let counts: Vec<usize> = std::env::var("TEECHAIN_SHARDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 8]);
    let prev_engine = std::env::var("TEECHAIN_ENGINE").ok();
    let prev_steal = std::env::var("TEECHAIN_STEAL").ok();

    let baseline = run_at(counts[0], true);
    assert!(
        baseline.completed >= 250,
        "workload barely ran: {} completed",
        baseline.completed
    );
    assert!(!baseline.latencies.is_empty());
    assert!(
        baseline.completions.len() as u64 >= baseline.completed,
        "every logical payment resolves through a completion"
    );
    // The swap batch exercised every terminal path: at least one redeem
    // (cooperative) and at least one refund (the griefed channel).
    assert!(
        baseline.swap_phases.iter().any(|p| p.2 > 0),
        "no swap redeemed: {:?}",
        baseline.swap_phases
    );
    assert!(
        baseline.swap_phases.iter().any(|p| p.3 > 0),
        "no swap refunded: {:?}",
        baseline.swap_phases
    );
    println!(
        "baseline (sharded:{}): {} payments, {} events, {} queued, {} batches",
        counts[0],
        baseline.completed,
        fmt_thousands(baseline.sim_stats.events as f64),
        baseline.queued,
        baseline.batches,
    );
    // Every other shard count, with stealing both on and off: the
    // claim-based pool is scheduling only, so the full fingerprint —
    // completion stream, latency samples, balances, clocks — must be
    // bit-for-bit identical in all four cells of the matrix.
    for &shards in &counts[1..] {
        for steal in [true, false] {
            let run = run_at(shards, steal);
            assert_eq!(
                run, baseline,
                "sharded:{shards} (steal={steal}) diverged from sharded:{}",
                counts[0]
            );
        }
    }
    let run = run_at(counts[0], false);
    assert_eq!(
        run, baseline,
        "sharded:{} without stealing diverged from itself with stealing",
        counts[0]
    );

    match prev_engine {
        Some(v) => std::env::set_var("TEECHAIN_ENGINE", v),
        None => std::env::remove_var("TEECHAIN_ENGINE"),
    }
    match prev_steal {
        Some(v) => std::env::set_var("TEECHAIN_STEAL", v),
        None => std::env::remove_var("TEECHAIN_STEAL"),
    }
}
