//! Observability acceptance suite for `teechain-trace` (ISSUE 7).
//!
//! Three properties, each load-bearing for the tracing design:
//!
//! 1. **Passivity** — the flight recorder derives every span id from
//!    bytes both endpoints already see and never touches the simulated
//!    clock, RNG lanes or wire framing, so the completion history is
//!    identical with tracing on or off, at every shard count.
//! 2. **Reproducibility** — under the sim engines the merged trace
//!    stream (ordered by `(ts_ns, node)`) encodes to byte-identical
//!    buffers across reruns *and* across shard counts. A trace diff is
//!    therefore a behavior diff, never scheduler noise.
//! 3. **Causality** — a traced 3-hop multihop payment forms a single
//!    tree rooted at its `op_span`, on all four substrates: the
//!    sequential sim engine, the sharded sim engine, live OS threads,
//!    and live TCP sockets.
//!
//! The chrome://tracing export is exercised end-to-end through the
//! hand-rolled JSON parser so the artifact `--trace-out` writes is known
//! to be well-formed with paired flow arrows.

use std::collections::BTreeSet;
use teechain::live::{LiveCluster, LiveConfig};
use teechain::testkit::{Cluster, ClusterConfig};
use teechain::types::ChannelId;
use teechain_bench::report::JsonValue;
use teechain_bench::trace_out::chrome_trace_json;
use teechain_net::EngineKind;
use teechain_trace::{event, span, EventKind, SpanTree, TraceEvent};

/// One completion, reduced to the fields that must be engine- and
/// tracing-invariant.
type CompletionFp = (u64, u32, u64, bool);

/// Runs a fixed cross-traffic workload (bilateral pays on every hop of a
/// 5-node chain, concurrently with a 4-hop multihop) on the given
/// engine, with the flight recorder on or off. Returns the completion
/// fingerprint and the encoded trace bytes (empty when `tracing` is
/// off).
fn traced_run(engine: EngineKind, tracing: bool) -> (Vec<CompletionFp>, Vec<u8>) {
    // Non-zero link latency: with ideal links everything lands at t=0,
    // where the engines (legitimately) order zero-delay deliveries
    // differently. Jitter stays off because the engines draw from their
    // RNG lanes in different orders — seq-vs-sharded equality is only
    // promised for the jitter-free schedule.
    let mut c = Cluster::new(ClusterConfig {
        n: 5,
        seed: 42,
        engine,
        default_link: teechain_net::LinkSpec {
            latency_ns: 5_000_000,
            jitter_frac: 0.0,
            bandwidth_bps: Some(1_000_000_000),
        },
        ..ClusterConfig::default()
    });
    let chans: Vec<ChannelId> = (0..4)
        .map(|i| c.standard_channel(i, i + 1, &format!("det-{i}"), 1_000_000, 1))
        .collect();
    c.set_tracing(tracing);

    // In-flight concurrency: one bilateral payment per hop plus the
    // multihop, all pending at once before the network settles.
    let pends: Vec<_> = (0..4)
        .map(|i| c.handle(i).pay(chans[i], 7 + i as u64))
        .collect();
    let mh = c
        .handle(0)
        .pay_multihop(&[0, 1, 2, 3, 4], &chans, 5, "det-route");
    c.settle_network();
    for p in pends {
        c.wait(p).expect("bilateral payment");
    }
    c.wait(mh).expect("multihop delivery");

    let fp = c
        .completion_log()
        .iter()
        .map(|comp| {
            (
                comp.time_ns,
                comp.op.node,
                comp.op.seq,
                comp.outcome.is_ok(),
            )
        })
        .collect();
    let bytes = event::encode_all(&c.drain_trace());
    (fp, bytes)
}

/// Tracing is passive (identical completions on vs off) and sim traces
/// are bit-reproducible (byte-identical across reruns and shard counts).
#[test]
fn tracing_is_passive_and_sim_traces_are_reproducible() {
    let engines = [
        EngineKind::Seq,
        EngineKind::Sharded { shards: 1 },
        EngineKind::Sharded { shards: 2 },
        EngineKind::Sharded { shards: 8 },
    ];
    let mut reference: Option<(Vec<CompletionFp>, Vec<u8>)> = None;
    for engine in engines {
        let (fp_on, bytes_on) = traced_run(engine, true);
        let (fp_off, bytes_off) = traced_run(engine, false);
        assert_eq!(
            fp_on, fp_off,
            "{engine:?}: completion history must not depend on tracing"
        );
        assert!(
            bytes_off.is_empty(),
            "{engine:?}: recorder off must stay silent"
        );
        assert!(
            !bytes_on.is_empty(),
            "{engine:?}: recorder on must capture events"
        );
        match &reference {
            None => reference = Some((fp_on, bytes_on)),
            Some((fp0, bytes0)) => {
                assert_eq!(
                    &fp_on, fp0,
                    "{engine:?}: completion history differs from seq"
                );
                assert_eq!(
                    &bytes_on, bytes0,
                    "{engine:?}: trace bytes differ from the sequential engine"
                );
            }
        }
    }
    // Rerun: same engine, same seed, same bytes.
    let (_, again) = traced_run(EngineKind::Sharded { shards: 2 }, true);
    assert_eq!(
        again,
        reference.expect("ran").1,
        "rerun must be byte-identical"
    );
}

/// Asserts the events form one causal tree rooted at the multihop's op
/// span, with frames crossing at least 3 wire hops and enclave entries
/// on all 4 path nodes.
fn assert_multihop_causality(events: &[TraceEvent], root: u64, substrate: &str) {
    let tree = SpanTree::build(events);
    assert!(
        tree.single_rooted_at(root),
        "{substrate}: expected a single causal tree rooted at the op span \
         ({} spans, {} reachable from root)",
        tree.len(),
        tree.reachable_from(root).len()
    );
    let wire_sends = events
        .iter()
        .filter(|e| e.kind == EventKind::WireSend)
        .count();
    assert!(
        wire_sends >= 3,
        "{substrate}: a 3-hop payment must cross >=3 wire frames, saw {wire_sends}"
    );
    let ecall_nodes: BTreeSet<u32> = events
        .iter()
        .filter(|e| e.kind == EventKind::Ecall)
        .map(|e| e.node)
        .collect();
    assert_eq!(
        ecall_nodes.len(),
        4,
        "{substrate}: every path node must enter its enclave, saw {ecall_nodes:?}"
    );
    let completes = events
        .iter()
        .filter(|e| e.kind == EventKind::OpComplete && e.span == root && e.a == 1)
        .count();
    assert_eq!(
        completes, 1,
        "{substrate}: exactly one successful completion of the op"
    );
}

/// Builds a 4-node / 3-channel chain, traces one 3-hop multihop, and
/// returns the drained events plus the payment's root span.
fn sim_multihop_trace(engine: EngineKind) -> (Vec<TraceEvent>, u64) {
    let mut c = Cluster::new(ClusterConfig {
        n: 4,
        seed: 9,
        engine,
        ..ClusterConfig::default()
    });
    let chans: Vec<ChannelId> = (0..3)
        .map(|i| c.standard_channel(i, i + 1, &format!("hop-{i}"), 500_000, 1))
        .collect();
    // Recorder on only now: setup ops stay out of the trace, so the
    // multihop is the sole root.
    c.set_tracing(true);
    let p = c
        .handle(0)
        .pay_multihop(&[0, 1, 2, 3], &chans, 11, "causal-route");
    let root = span::op_span(p.op.node, p.op.seq);
    c.wait(p).expect("multihop delivery");
    (c.drain_trace(), root)
}

#[test]
fn multihop_trace_is_single_rooted_sim_seq() {
    let (events, root) = sim_multihop_trace(EngineKind::Seq);
    assert_multihop_causality(&events, root, "sim/seq");
}

#[test]
fn multihop_trace_is_single_rooted_sim_sharded() {
    let (events, root) = sim_multihop_trace(EngineKind::Sharded { shards: 8 });
    assert_multihop_causality(&events, root, "sim/sharded:8");
}

/// Live variant: tracing must be enabled from launch (`LiveConfig`), so
/// the setup window is drained and discarded before the traced payment.
/// The multihop is then the only `OpSubmit` in the second window.
fn live_multihop_trace(net: &LiveCluster, substrate: &str) {
    let chans: Vec<ChannelId> = (0..3)
        .map(|i| net.standard_channel(i, i + 1, &format!("hop-{i}"), 500_000, 1))
        .collect();
    // Let remote nodes finish recording their setup-era events before
    // the discard, so no span in the payment window parents into it.
    std::thread::sleep(std::time::Duration::from_millis(200));
    net.drain_trace(); // Discard setup noise.

    net.pay_multihop(&[0, 1, 2, 3], &chans, 11, "causal-route")
        .expect("multihop delivery");
    std::thread::sleep(std::time::Duration::from_millis(200));
    let events = net.drain_trace();

    let submits: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.kind == EventKind::OpSubmit)
        .collect();
    assert_eq!(
        submits.len(),
        1,
        "{substrate}: the multihop must be the only submission in the traced window"
    );
    assert_multihop_causality(&events, submits[0].span, substrate);
}

#[test]
fn multihop_trace_is_single_rooted_live_threads() {
    let net = LiveCluster::over_threads(LiveConfig {
        n: 4,
        seed: 0x0B5,
        tracing: true,
        ..LiveConfig::default()
    });
    live_multihop_trace(&net, "live/threads");
    net.shutdown();
}

#[test]
fn multihop_trace_is_single_rooted_live_tcp() {
    let net = LiveCluster::over_tcp(LiveConfig {
        n: 4,
        seed: 0x0B5,
        tracing: true,
        ..LiveConfig::default()
    })
    .expect("bind localhost listeners");
    live_multihop_trace(&net, "live/tcp");
    net.shutdown();
}

#[test]
fn multihop_trace_is_single_rooted_live_reactor() {
    // The fifth substrate: wire spans must stitch across the reactor's
    // multiplexed pool and the run-queue scheduler exactly as they do
    // across per-node sockets and threads.
    let net = LiveCluster::over_reactor(LiveConfig {
        n: 4,
        seed: 0x0B5,
        tracing: true,
        ..LiveConfig::default()
    })
    .expect("bind reactor listener");
    live_multihop_trace(&net, "live/reactor");
    net.shutdown();
}

/// The chrome://tracing export round-trips through the hand-rolled JSON
/// parser, and every flow arrow that starts also finishes (wire frames
/// stitch sender to receiver; op flows stitch submit to completion).
#[test]
fn chrome_export_is_well_formed_with_paired_flows() {
    let (events, _) = sim_multihop_trace(EngineKind::Seq);
    let doc = chrome_trace_json(&events);
    let parsed = JsonValue::parse(&doc.render()).expect("export must be valid JSON");
    let JsonValue::Arr(items) = parsed.get("traceEvents").expect("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    assert!(!items.is_empty());
    let mut starts: BTreeSet<String> = BTreeSet::new();
    let mut finishes: BTreeSet<String> = BTreeSet::new();
    for item in items {
        let ph = item.get("ph").and_then(JsonValue::as_str).expect("ph");
        let id = item.get("id").and_then(JsonValue::as_str);
        match ph {
            "s" => {
                starts.insert(id.expect("flow start id").to_string());
            }
            "f" => {
                finishes.insert(id.expect("flow finish id").to_string());
            }
            "i" => assert!(id.is_none(), "instants carry no flow id"),
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(!starts.is_empty(), "a multihop trace must emit flow arrows");
    assert_eq!(
        starts, finishes,
        "every flow start must have a matching finish"
    );
}

/// `Cluster::observe` exposes the unified registry: ecall counters and
/// queue high-watermarks from the nodes, delivery counters from the
/// engine — with or without the flight recorder running.
#[test]
fn observe_merges_node_and_engine_metrics() {
    let mut c = Cluster::new(ClusterConfig {
        n: 2,
        seed: 3,
        ..ClusterConfig::default()
    });
    let chan = c.standard_channel(0, 1, "obs", 10_000, 1);
    for _ in 0..5 {
        c.pay(0, chan, 1).expect("payment");
    }
    let snap = c.observe();
    assert!(
        snap.counters.get("node.completions").copied().unwrap_or(0) >= 5,
        "completion counter must accumulate: {:?}",
        snap.counters
    );
    assert!(
        snap.counters.get("sim.messages").copied().unwrap_or(0) > 0,
        "engine delivery counters must be merged in"
    );
    assert!(
        snap.gauges.contains_key("admit.queue_depth_hwm"),
        "admission high-watermark gauges must exist: {:?}",
        snap.gauges.keys().collect::<Vec<_>>()
    );
}
