//! Criterion micro-benchmarks of the substrates: crypto primitives,
//! transaction validation and a real end-to-end enclave payment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teechain::testkit::Cluster;
use teechain_crypto::aead::Aead;
use teechain_crypto::schnorr::{self, Keypair};
use teechain_crypto::sha256::sha256;

fn crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data = vec![0xabu8; 256];
    g.bench_function("sha256_256B", |b| b.iter(|| sha256(black_box(&data))));
    let kp = Keypair::from_seed(&[1; 32]);
    g.bench_function("schnorr_sign", |b| b.iter(|| kp.sign(black_box(&data))));
    let sig = kp.sign(&data);
    g.bench_function("schnorr_verify", |b| {
        b.iter(|| schnorr::verify(&kp.pk, black_box(&data), &sig))
    });
    let aead = Aead::new(&[7; 32]);
    g.bench_function("aead_seal_256B", |b| {
        b.iter(|| aead.seal(1, b"", black_box(&data)))
    });
    g.finish();
}

fn blockchain(c: &mut Criterion) {
    use teechain_blockchain::{Chain, ScriptPubKey, Transaction, TxIn, TxOut};
    let mut g = c.benchmark_group("blockchain");
    g.bench_function("validate_p2pk_spend", |b| {
        let mut chain = Chain::new();
        let kp = Keypair::from_seed(&[2; 32]);
        let op = chain.mint_p2pk(&kp.pk, 100);
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(op)],
            outputs: vec![TxOut {
                value: 100,
                script: ScriptPubKey::P2pk(kp.pk),
            }],
        };
        tx.sign_input(0, &kp.sk);
        b.iter(|| chain.validate(black_box(&tx)).unwrap());
    });
    g.finish();
}

fn enclave_payment(c: &mut Criterion) {
    // End-to-end cost of one payment round trip through two real enclaves
    // (AEAD seal/open, state update, ack) — the wall-clock cost that
    // bounds how many simulated payments per second the harness achieves.
    let mut g = c.benchmark_group("enclave");
    g.bench_function("payment_roundtrip", |b| {
        let mut cluster = Cluster::functional(2);
        let chan = cluster.standard_channel(0, 1, "bench", u64::MAX / 4, 1);
        b.iter(|| {
            cluster.pay(0, chan, 1).unwrap();
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = crypto, blockchain, enclave_payment
);
criterion_main!(benches);
