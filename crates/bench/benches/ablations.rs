//! Ablation benchmarks for DESIGN.md §6:
//!
//! * replication factor 0–2 — isolates the force-freeze overhead (C3);
//! * per-message AEAD vs full Schnorr signatures — quantifies the
//!   session-key design decision (every channel message would otherwise
//!   carry a 96-byte signature plus an expensive verification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use teechain::testkit::Cluster;
use teechain_crypto::aead::Aead;
use teechain_crypto::schnorr::{self, Keypair};

fn ablation_replication(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_replication");
    g.sample_size(10);
    for backups in [0usize, 1, 2] {
        g.bench_with_input(
            BenchmarkId::from_parameter(backups),
            &backups,
            |b, &backups| {
                let mut cluster = Cluster::functional(2 + backups);
                for k in 0..backups {
                    let tail = if k == 0 { 0 } else { 2 + k - 1 };
                    cluster.attach_backup(tail, 2 + k);
                }
                let chan = cluster.standard_channel(0, 1, "abl", u64::MAX / 4, 1);
                b.iter(|| cluster.pay(0, chan, 1).unwrap());
            },
        );
    }
    g.finish();
}

fn ablation_auth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_message_auth");
    let msg = vec![0x5au8; 96];
    let aead = Aead::new(&[3; 32]);
    g.bench_function("session_aead", |b| {
        b.iter(|| {
            let sealed = aead.seal(1, b"", black_box(&msg));
            aead.open(1, b"", &sealed).unwrap()
        })
    });
    let kp = Keypair::from_seed(&[9; 32]);
    g.bench_function("per_message_schnorr", |b| {
        b.iter(|| {
            let sig = kp.sign(black_box(&msg));
            assert!(schnorr::verify(&kp.pk, &msg, &sig));
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = ablation_replication, ablation_auth
);
criterion_main!(benches);
