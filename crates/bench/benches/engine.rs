//! Raw engine overhead: events/sec through empty nodes (no protocol, no
//! CPU model) for the sequential and sharded engines, on a token-passing
//! ring with 1 ns links.
//!
//! `single_token` is the worst case for the sharded engine — every
//! lookahead window holds exactly one event, so it prices the window
//! machinery itself. `fanout_64` keeps 64 tokens circulating, the shape
//! real workloads have. A custom `main` (not `criterion_main!`) persists
//! the measurements to `BENCH_engine_micro.json` for the perf
//! trajectory.

use criterion::Criterion;
use teechain_bench::report::BenchJson;
use teechain_net::{AnyEngine, Ctx, EngineKind, LinkSpec, NodeId, SimNode};

/// Forwards every message to the next node in the ring.
struct Forwarder {
    next: NodeId,
}

impl SimNode for Forwarder {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Vec<u8>) {
        ctx.send(self.next, msg);
    }
}

const RING: u32 = 64;

fn ring(kind: EngineKind, tokens: u32) -> AnyEngine<Forwarder> {
    let link = LinkSpec {
        latency_ns: 1,
        jitter_frac: 0.0,
        bandwidth_bps: None,
    };
    let nodes = (0..RING)
        .map(|i| Forwarder {
            next: NodeId((i + 1) % RING),
        })
        .collect();
    let mut eng = AnyEngine::new(kind, nodes, link, 3);
    for t in 0..tokens {
        eng.call(NodeId(t % RING), |_, ctx| {
            ctx.send(NodeId((t % RING + 1) % RING), vec![t as u8])
        });
    }
    eng
}

fn engines() -> Vec<(&'static str, EngineKind)> {
    vec![
        ("seq", EngineKind::Seq),
        ("sharded1", EngineKind::Sharded { shards: 1 }),
        ("sharded4", EngineKind::Sharded { shards: 4 }),
        ("sharded8", EngineKind::Sharded { shards: 8 }),
    ]
}

/// One token: every event is its own lookahead window.
fn single_token(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_single_token");
    for (name, kind) in engines() {
        // 10_000 sim-ns per iteration = 10_000 hops (1 ns per hop).
        let mut eng = ring(kind, 1);
        g.bench_function(name, |b| {
            b.iter(|| {
                let t = eng.now_ns() + 10_000;
                eng.run_until(t)
            })
        });
    }
    g.finish();
}

/// 64 tokens: windows carry real batches.
fn fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_fanout_64");
    for (name, kind) in engines() {
        let mut eng = ring(kind, 64);
        g.bench_function(name, |b| {
            b.iter(|| {
                let t = eng.now_ns() + 1_000;
                eng.run_until(t)
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    single_token(&mut c);
    fanout(&mut c);

    // Persist ns/event to the perf-trajectory artifact. Events per
    // iteration: single_token = 10_000 hops; fanout = 64 × 1_000 hops.
    let mut doc = BenchJson::new("engine_micro");
    for (id, ns_per_iter) in c.results() {
        let events_per_iter = if id.starts_with("engine_single_token") {
            10_000.0
        } else {
            64_000.0
        };
        let ns_per_event = ns_per_iter / events_per_iter;
        let key = id.replace('/', "_");
        doc.metric(&format!("{key}_ns_per_event"), ns_per_event);
        doc.metric(
            &format!("{key}_events_per_sec"),
            1e9 / ns_per_event.max(1e-12),
        );
    }
    doc.write().expect("write BENCH_engine_micro.json");
}
