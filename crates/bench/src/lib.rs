//! Benchmark harness for the Teechain reproduction.
//!
//! Regenerates every table and figure of the paper's evaluation (§7):
//!
//! | Binary  | Artifact |
//! |---------|----------|
//! | `table1` | Table 1 — single-channel throughput and latency |
//! | `table2` | Table 2 — channel operation latencies |
//! | `fig4`   | Fig. 4 + §7.3 — multi-hop latency and throughput vs hops |
//! | `fig6`   | Fig. 6 — complete-graph network throughput |
//! | `table3` | Table 3 — hub-and-spoke throughput (incl. dynamic routing) |
//! | `fig7`   | Fig. 7 — temporary channels |
//! | `table4` | Table 4 / §7.5 — blockchain cost |
//! | `persistence` | §6 persistence vs. replication cost + crash churn |
//! | `scale`  | engine scaling: a generated 10k+-node hub-and-spoke overlay measured under every engine configuration |
//! | `all`    | everything above |
//!
//! Every binary also writes a machine-readable `BENCH_<name>.json`
//! artifact (see [`report::BenchJson`]) so the perf trajectory is
//! tracked across PRs.
//!
//! `cargo bench` additionally runs Criterion micro-benchmarks of the
//! substrates, the ablations listed in DESIGN.md §6, and the raw
//! engine-overhead bench (`--bench engine`, which feeds
//! `BENCH_engine_micro.json`).

pub mod harness;
pub mod report;
pub mod scenarios;
pub mod trace_out;
pub mod workload;

pub use harness::{BenchCluster, BenchConfig, RunStats};
