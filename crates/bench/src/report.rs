//! Plain-text table/figure rendering for the experiment binaries, plus
//! the machine-readable `BENCH_<name>.json` artifacts that track the
//! perf trajectory across PRs.

use std::collections::BTreeMap;
use std::path::PathBuf;
use teechain_trace::{HistSummary, Histogram};

/// Renders a markdown-style table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = format!("\n## {}\n\n", self.title);
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// A JSON value for the benchmark artifacts. Hand-rolled (the workspace
/// is dependency-free): strings are escaped, non-finite numbers render
/// as `null`.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A number (rendered with full round-trip precision).
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, JsonValue)>),
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl JsonValue {
    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() < 9e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v:?}"));
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Object field lookup (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document (the inverse of [`JsonValue::render`],
    /// hand-rolled like the renderer). The trend tooling reads
    /// `BENCH_*.json` artifacts back through this; it accepts any
    /// standard JSON with `null` mapped to NaN (the renderer's own
    /// encoding of non-finite numbers).
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Recursive-descent JSON reader over raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            // `render` writes non-finite numbers as null; round-trip
            // them back to a non-finite number.
            Some(b'n') => self.lit("null", JsonValue::Num(f64::NAN)),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((k, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // BMP only — the renderer never emits
                            // surrogate pairs (it escapes only controls).
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// A machine-readable benchmark artifact, written as
/// `BENCH_<name>.json` next to the printed tables so the perf
/// trajectory is tracked across PRs. The directory defaults to the
/// current working directory and can be redirected with
/// `TEECHAIN_BENCH_DIR`.
pub struct BenchJson {
    name: String,
    metrics: Vec<(String, JsonValue)>,
    tables: Vec<JsonValue>,
    op_errors: std::collections::BTreeMap<String, u64>,
    latency: BTreeMap<String, Histogram>,
}

/// `BENCH_*.json` schema version (`"schema"` field). Bumped to 2 when
/// the per-kind `latency` section was added.
pub const BENCH_SCHEMA: u64 = 2;

impl BenchJson {
    /// Starts an artifact for the bench bin `name`.
    pub fn new(name: &str) -> BenchJson {
        BenchJson {
            name: name.to_string(),
            metrics: Vec::new(),
            tables: Vec::new(),
            op_errors: std::collections::BTreeMap::new(),
            latency: BTreeMap::new(),
        }
    }

    /// Records a named metric.
    pub fn metric(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        self.metrics.push((key.to_string(), value.into()));
        self
    }

    /// Folds typed-failure counts (per `OpError` label, from
    /// `BenchCluster::op_errors`) into the artifact's `op_errors`
    /// section. Call once per measured run; counts accumulate, so
    /// silent-failure regressions show up in the perf trajectory even
    /// when throughput looks healthy.
    pub fn op_errors(&mut self, counts: &std::collections::BTreeMap<String, u64>) -> &mut Self {
        for (label, n) in counts {
            *self.op_errors.entry(label.clone()).or_insert(0) += n;
        }
        self
    }

    /// Folds per-[`OpOutput::kind`](teechain::ops::OpOutput::kind)
    /// latency histograms (from `BenchCluster::latency_by_kind`) into the
    /// artifact's `latency` section. Samples accumulate across calls, so
    /// multi-run bins report the union.
    pub fn latency(&mut self, by_kind: &BTreeMap<String, Histogram>) -> &mut Self {
        for (kind, h) in by_kind {
            self.latency.entry(kind.clone()).or_default().merge(h);
        }
        self
    }

    /// Records one pre-labeled latency histogram (live bins, which
    /// measure phases rather than driver kinds).
    pub fn latency_hist(&mut self, label: &str, h: &Histogram) -> &mut Self {
        self.latency.entry(label.to_string()).or_default().merge(h);
        self
    }

    /// Records a rendered [`Table`] structurally (title, headers, rows).
    pub fn table(&mut self, t: &Table) -> &mut Self {
        self.tables.push(JsonValue::Obj(vec![
            ("title".into(), JsonValue::Str(t.title.clone())),
            (
                "headers".into(),
                JsonValue::Arr(t.headers.iter().map(|h| h.as_str().into()).collect()),
            ),
            (
                "rows".into(),
                JsonValue::Arr(
                    t.rows
                        .iter()
                        .map(|r| JsonValue::Arr(r.iter().map(|c| c.as_str().into()).collect()))
                        .collect(),
                ),
            ),
        ]));
        self
    }

    /// The artifact as a JSON value.
    pub fn to_value(&self) -> JsonValue {
        let op_errors = JsonValue::Obj(
            self.op_errors
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::from(*v)))
                .collect(),
        );
        let latency = JsonValue::Obj(
            self.latency
                .iter()
                .map(|(kind, h)| {
                    let s = HistSummary::of(&mut h.clone());
                    (
                        kind.clone(),
                        JsonValue::Obj(vec![
                            ("count".into(), s.count.into()),
                            ("mean_ms".into(), (s.mean_ns / 1e6).into()),
                            ("min_ms".into(), (s.min as f64 / 1e6).into()),
                            ("p50_ms".into(), (s.p50 as f64 / 1e6).into()),
                            ("p99_ms".into(), (s.p99 as f64 / 1e6).into()),
                            ("p999_ms".into(), (s.p999 as f64 / 1e6).into()),
                            ("max_ms".into(), (s.max as f64 / 1e6).into()),
                        ]),
                    )
                })
                .collect(),
        );
        JsonValue::Obj(vec![
            ("bench".into(), self.name.as_str().into()),
            ("schema".into(), BENCH_SCHEMA.into()),
            ("metrics".into(), JsonValue::Obj(self.metrics.clone())),
            ("op_errors".into(), op_errors),
            ("latency".into(), latency),
            ("tables".into(), JsonValue::Arr(self.tables.clone())),
        ])
    }

    /// The output path (`$TEECHAIN_BENCH_DIR` or cwd).
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var("TEECHAIN_BENCH_DIR").unwrap_or_else(|_| ".".into());
        PathBuf::from(dir).join(format!("BENCH_{}.json", self.name))
    }

    /// Writes `BENCH_<name>.json` and reports the path on stdout.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        std::fs::write(&path, self.to_value().render() + "\n")?;
        println!("\nwrote {}", path.display());
        Ok(path)
    }
}

/// Formats a float with thousands separators (for tx/s columns).
pub fn fmt_thousands(v: f64) -> String {
    let n = v.round() as i64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats milliseconds with one decimal.
pub fn fmt_ms(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| a | bbbb |"));
    }

    #[test]
    fn thousands() {
        assert_eq!(fmt_thousands(1234567.0), "1,234,567");
        assert_eq!(fmt_thousands(999.0), "999");
    }

    #[test]
    fn json_rendering() {
        let v = JsonValue::Obj(vec![
            ("int".into(), 42u64.into()),
            ("float".into(), 1.5.into()),
            ("nan".into(), f64::NAN.into()),
            ("s".into(), "a\"b\\c\nd".into()),
            ("flag".into(), JsonValue::Bool(true)),
            ("arr".into(), JsonValue::Arr(vec![1u64.into(), 2u64.into()])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"int":42,"float":1.5,"nan":null,"s":"a\"b\\c\nd","flag":true,"arr":[1,2]}"#
        );
    }

    #[test]
    fn parse_round_trips_render() {
        let v = JsonValue::Obj(vec![
            ("int".into(), 42u64.into()),
            ("float".into(), 1.5.into()),
            ("s".into(), "a\"b\\c\nd — π".into()),
            ("flag".into(), JsonValue::Bool(true)),
            (
                "arr".into(),
                JsonValue::Arr(vec![1u64.into(), JsonValue::Obj(vec![])]),
            ),
        ]);
        let rendered = v.render();
        let back = JsonValue::parse(&rendered).expect("parse");
        assert_eq!(back.render(), rendered);
        assert_eq!(back.get("int").and_then(|v| v.as_f64()), Some(42.0));
        assert_eq!(
            back.get("s").and_then(|v| v.as_str()),
            Some("a\"b\\c\nd — π")
        );
    }

    #[test]
    fn parse_null_and_whitespace() {
        let v = JsonValue::parse(" { \"x\" : null , \"y\" : [ 1 , -2.5e1 ] } ").expect("parse");
        assert!(v.get("x").and_then(|v| v.as_f64()).unwrap().is_nan());
        let JsonValue::Arr(items) = v.get("y").unwrap() else {
            panic!("y should be an array");
        };
        assert_eq!(items[1].as_f64(), Some(-25.0));
        assert!(JsonValue::parse("{\"a\":1}trailing").is_err());
        assert!(JsonValue::parse("{\"a\"").is_err());
    }

    #[test]
    fn bench_json_latency_section() {
        let mut h = Histogram::new();
        for ms in [1u64, 2, 3] {
            h.record(ms * 1_000_000);
        }
        let mut by_kind = BTreeMap::new();
        by_kind.insert("payment".to_string(), h);
        let mut doc = BenchJson::new("demo");
        doc.latency(&by_kind);
        let v = JsonValue::parse(&doc.to_value().render()).expect("parse");
        assert_eq!(v.get("schema").and_then(|s| s.as_f64()), Some(2.0));
        let p = v
            .get("latency")
            .and_then(|l| l.get("payment"))
            .expect("payment kind");
        assert_eq!(p.get("count").and_then(|c| c.as_f64()), Some(3.0));
        assert_eq!(p.get("p50_ms").and_then(|c| c.as_f64()), Some(2.0));
        assert_eq!(p.get("p999_ms").and_then(|c| c.as_f64()), Some(3.0));
    }

    #[test]
    fn bench_json_includes_tables_and_metrics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["1".into(), "x".into()]);
        let mut doc = BenchJson::new("demo");
        doc.metric("throughput", 1000.5).table(&t);
        let s = doc.to_value().render();
        assert!(s.contains(r#""bench":"demo""#));
        assert!(s.contains(r#""throughput":1000.5"#));
        assert!(s.contains(r#""title":"Demo""#));
        assert!(s.contains(r#""rows":[["1","x"]]"#));
        assert!(doc.path().ends_with("BENCH_demo.json"));
    }
}
