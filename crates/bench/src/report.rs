//! Plain-text table/figure rendering for the experiment binaries, plus
//! the machine-readable `BENCH_<name>.json` artifacts that track the
//! perf trajectory across PRs.

use std::path::PathBuf;

/// Renders a markdown-style table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = format!("\n## {}\n\n", self.title);
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// A JSON value for the benchmark artifacts. Hand-rolled (the workspace
/// is dependency-free): strings are escaped, non-finite numbers render
/// as `null`.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A number (rendered with full round-trip precision).
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, JsonValue)>),
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl JsonValue {
    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() < 9e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v:?}"));
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// A machine-readable benchmark artifact, written as
/// `BENCH_<name>.json` next to the printed tables so the perf
/// trajectory is tracked across PRs. The directory defaults to the
/// current working directory and can be redirected with
/// `TEECHAIN_BENCH_DIR`.
pub struct BenchJson {
    name: String,
    metrics: Vec<(String, JsonValue)>,
    tables: Vec<JsonValue>,
    op_errors: std::collections::BTreeMap<String, u64>,
}

impl BenchJson {
    /// Starts an artifact for the bench bin `name`.
    pub fn new(name: &str) -> BenchJson {
        BenchJson {
            name: name.to_string(),
            metrics: Vec::new(),
            tables: Vec::new(),
            op_errors: std::collections::BTreeMap::new(),
        }
    }

    /// Records a named metric.
    pub fn metric(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        self.metrics.push((key.to_string(), value.into()));
        self
    }

    /// Folds typed-failure counts (per `OpError` label, from
    /// `BenchCluster::op_errors`) into the artifact's `op_errors`
    /// section. Call once per measured run; counts accumulate, so
    /// silent-failure regressions show up in the perf trajectory even
    /// when throughput looks healthy.
    pub fn op_errors(&mut self, counts: &std::collections::BTreeMap<String, u64>) -> &mut Self {
        for (label, n) in counts {
            *self.op_errors.entry(label.clone()).or_insert(0) += n;
        }
        self
    }

    /// Records a rendered [`Table`] structurally (title, headers, rows).
    pub fn table(&mut self, t: &Table) -> &mut Self {
        self.tables.push(JsonValue::Obj(vec![
            ("title".into(), JsonValue::Str(t.title.clone())),
            (
                "headers".into(),
                JsonValue::Arr(t.headers.iter().map(|h| h.as_str().into()).collect()),
            ),
            (
                "rows".into(),
                JsonValue::Arr(
                    t.rows
                        .iter()
                        .map(|r| JsonValue::Arr(r.iter().map(|c| c.as_str().into()).collect()))
                        .collect(),
                ),
            ),
        ]));
        self
    }

    /// The artifact as a JSON value.
    pub fn to_value(&self) -> JsonValue {
        let op_errors = JsonValue::Obj(
            self.op_errors
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::from(*v)))
                .collect(),
        );
        JsonValue::Obj(vec![
            ("bench".into(), self.name.as_str().into()),
            ("metrics".into(), JsonValue::Obj(self.metrics.clone())),
            ("op_errors".into(), op_errors),
            ("tables".into(), JsonValue::Arr(self.tables.clone())),
        ])
    }

    /// The output path (`$TEECHAIN_BENCH_DIR` or cwd).
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var("TEECHAIN_BENCH_DIR").unwrap_or_else(|_| ".".into());
        PathBuf::from(dir).join(format!("BENCH_{}.json", self.name))
    }

    /// Writes `BENCH_<name>.json` and reports the path on stdout.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        std::fs::write(&path, self.to_value().render() + "\n")?;
        println!("\nwrote {}", path.display());
        Ok(path)
    }
}

/// Formats a float with thousands separators (for tx/s columns).
pub fn fmt_thousands(v: f64) -> String {
    let n = v.round() as i64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats milliseconds with one decimal.
pub fn fmt_ms(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| a | bbbb |"));
    }

    #[test]
    fn thousands() {
        assert_eq!(fmt_thousands(1234567.0), "1,234,567");
        assert_eq!(fmt_thousands(999.0), "999");
    }

    #[test]
    fn json_rendering() {
        let v = JsonValue::Obj(vec![
            ("int".into(), 42u64.into()),
            ("float".into(), 1.5.into()),
            ("nan".into(), f64::NAN.into()),
            ("s".into(), "a\"b\\c\nd".into()),
            ("flag".into(), JsonValue::Bool(true)),
            ("arr".into(), JsonValue::Arr(vec![1u64.into(), 2u64.into()])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"int":42,"float":1.5,"nan":null,"s":"a\"b\\c\nd","flag":true,"arr":[1,2]}"#
        );
    }

    #[test]
    fn bench_json_includes_tables_and_metrics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["1".into(), "x".into()]);
        let mut doc = BenchJson::new("demo");
        doc.metric("throughput", 1000.5).table(&t);
        let s = doc.to_value().render();
        assert!(s.contains(r#""bench":"demo""#));
        assert!(s.contains(r#""throughput":1000.5"#));
        assert!(s.contains(r#""title":"Demo""#));
        assert!(s.contains(r#""rows":[["1","x"]]"#));
        assert!(doc.path().ends_with("BENCH_demo.json"));
    }
}
