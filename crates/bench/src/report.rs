//! Plain-text table/figure rendering for the experiment binaries.

/// Renders a markdown-style table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = format!("\n## {}\n\n", self.title);
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with thousands separators (for tx/s columns).
pub fn fmt_thousands(v: f64) -> String {
    let n = v.round() as i64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats milliseconds with one decimal.
pub fn fmt_ms(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| a | bbbb |"));
    }

    #[test]
    fn thousands() {
        assert_eq!(fmt_thousands(1234567.0), "1,234,567");
        assert_eq!(fmt_thousands(999.0), "999");
    }
}
