//! The workload-driving benchmark cluster.
//!
//! [`BenchNode`] wraps a Teechain host with a payment driver that issues
//! direct or multi-hop payments from inside the simulation: a sliding
//! window of in-flight payments per machine (W, §7.4), optional 100 ms
//! client-side batching (§7), and retry with randomized 100–200 ms backoff
//! on channel-lock failures — the exact mechanics of the paper's load
//! generator.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use teechain::driver::{CostModel, SimHost};
use teechain::durability::DurabilityBackend;
use teechain::enclave::{Command, EnclaveConfig, HostEvent};
use teechain::node::{SharedChain, TeechainNode};
use teechain::types::{ChannelId, ProtocolError, RouteId};
use teechain_blockchain::Chain;
use teechain_crypto::schnorr::PublicKey;
use teechain_net::{AnyEngine, Ctx, EngineKind, Histogram, LinkSpec, NodeId, SimNode};
use teechain_persist::{PersistentStore, SharedStore};
use teechain_tee::TrustRoot;

/// Timer tokens used by the driver (distinct from the host's own).
const BATCH_TOKEN: u64 = 0xBA7C4;
const JOB_RETRY_TOKEN: u64 = 0x4E7247;

/// One unit of offered load.
#[derive(Debug, Clone)]
pub enum Job {
    /// A direct payment on a channel.
    Direct {
        /// The channel to pay over.
        chan: ChannelId,
        /// Amount.
        amount: u64,
    },
    /// A multi-hop payment; `paths` are alternatives tried in order on
    /// failure (dynamic routing, §7.4). Each path is (hop identities,
    /// channels).
    Multihop {
        /// Alternative paths, shortest first.
        paths: Vec<(Vec<PublicKey>, Vec<ChannelId>)>,
        /// Which alternative to try next.
        next_path: usize,
        /// Amount.
        amount: u64,
    },
}

/// Client-side batching state (merge payments for `interval_ns` before
/// sending one merged payment, §7).
struct BatchState {
    interval_ns: u64,
    chan: ChannelId,
    armed: bool,
}

/// Per-node driver statistics.
#[derive(Default)]
pub struct DriverStats {
    /// Logical payments completed (acked).
    pub completed: u64,
    /// Lock-failure retries performed.
    pub retries: u64,
    /// Sum of path lengths (hops) over completed multi-hop payments.
    pub hops_total: u64,
    /// Multi-hop payments completed.
    pub multihop_completed: u64,
    /// Time of first issue (ns).
    pub first_issue: Option<u64>,
    /// Time of last completion (ns).
    pub last_ack: u64,
    /// Latency samples (ns).
    pub latencies: Histogram,
}

/// A simulator node: Teechain host + workload driver.
pub struct BenchNode {
    /// The wrapped host (public for setup).
    pub host: SimHost,
    jobs: VecDeque<Job>,
    retry_bucket: VecDeque<Job>,
    window: usize,
    inflight: usize,
    batch: Option<BatchState>,
    pending_direct: HashMap<ChannelId, VecDeque<(u64, u32)>>,
    pending_routes: HashMap<RouteId, (u64, Job)>,
    route_seq: u64,
    /// Statistics (public for collection).
    pub stats: DriverStats,
}

impl BenchNode {
    fn new(host: SimHost) -> Self {
        BenchNode {
            host,
            jobs: VecDeque::new(),
            retry_bucket: VecDeque::new(),
            window: 1,
            inflight: 0,
            batch: None,
            pending_direct: HashMap::new(),
            pending_routes: HashMap::new(),
            route_seq: 0,
            stats: DriverStats::default(),
        }
    }

    fn drain_host_events(&mut self, ctx: &mut Ctx<'_>) {
        let events = self.host.node.drain_events();
        for (_, event) in events {
            match event {
                HostEvent::PaymentAcked { id, count, .. } => {
                    if let Some(q) = self.pending_direct.get_mut(&id) {
                        if let Some((sent, _)) = q.pop_front() {
                            self.stats.latencies.record(ctx.now_ns() - sent);
                        }
                    }
                    self.stats.completed += count as u64;
                    self.stats.last_ack = ctx.now_ns();
                    self.inflight = self.inflight.saturating_sub(count as usize);
                }
                HostEvent::PaymentNacked { id, amount, count } => {
                    let _ = id;
                    self.inflight = self.inflight.saturating_sub(count as usize);
                    self.schedule_retry(ctx, Job::Direct { chan: id, amount });
                }
                HostEvent::MultihopComplete { route, .. } => {
                    if let Some((sent, job)) = self.pending_routes.remove(&route) {
                        self.stats.latencies.record(ctx.now_ns() - sent);
                        if let Job::Multihop {
                            paths, next_path, ..
                        } = &job
                        {
                            let idx = next_path.saturating_sub(1).min(paths.len() - 1);
                            self.stats.hops_total += (paths[idx].1.len()) as u64;
                        }
                        self.stats.multihop_completed += 1;
                    }
                    self.stats.completed += 1;
                    self.stats.last_ack = ctx.now_ns();
                    self.inflight = self.inflight.saturating_sub(1);
                }
                HostEvent::MultihopFailed { route } => {
                    if let Some((_, job)) = self.pending_routes.remove(&route) {
                        self.inflight = self.inflight.saturating_sub(1);
                        self.schedule_retry(ctx, job);
                    }
                }
                _ => {}
            }
        }
    }

    fn schedule_retry(&mut self, ctx: &mut Ctx<'_>, job: Job) {
        self.stats.retries += 1;
        self.retry_bucket.push_back(job);
        // Randomized 100–200 ms backoff (§7.4).
        let delay = ctx.rng().next_range(100_000_000, 200_000_000);
        ctx.set_timer(delay, JOB_RETRY_TOKEN);
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(batch) = &self.batch {
            if !batch.armed {
                let interval = batch.interval_ns;
                self.batch.as_mut().expect("checked").armed = true;
                ctx.set_timer(interval, BATCH_TOKEN);
            }
            return; // Batched mode issues on the batch timer only.
        }
        while self.inflight < self.window {
            let Some(job) = self.jobs.pop_front() else {
                break;
            };
            self.issue(ctx, job);
        }
    }

    fn next_route_id(&mut self, ctx: &Ctx<'_>) -> RouteId {
        self.route_seq += 1;
        let mut id = [0u8; 32];
        id[..4].copy_from_slice(&ctx.self_id().0.to_le_bytes());
        id[8..16].copy_from_slice(&self.route_seq.to_le_bytes());
        RouteId(id)
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>, job: Job) {
        if self.stats.first_issue.is_none() {
            self.stats.first_issue = Some(ctx.now_ns());
        }
        match job {
            Job::Direct { chan, amount } => {
                ctx.busy(self.host.costs.logical_ns);
                self.pending_direct
                    .entry(chan)
                    .or_default()
                    .push_back((ctx.now_ns(), 1));
                let result = self.host.node.command(
                    ctx,
                    Command::Pay {
                        id: chan,
                        amount,
                        count: 1,
                    },
                );
                match result {
                    Ok(()) => self.inflight += 1,
                    Err(ProtocolError::ChannelLocked)
                    | Err(ProtocolError::CounterThrottled { .. }) => {
                        self.pending_direct
                            .get_mut(&chan)
                            .expect("pushed")
                            .pop_back();
                        self.schedule_retry(ctx, Job::Direct { chan, amount });
                    }
                    Err(_) => {
                        self.pending_direct
                            .get_mut(&chan)
                            .expect("pushed")
                            .pop_back();
                    }
                }
            }
            Job::Multihop {
                paths,
                next_path,
                amount,
            } => {
                ctx.busy(self.host.costs.logical_ns);
                let idx = next_path.min(paths.len() - 1);
                let (hops, channels) = paths[idx].clone();
                let route = self.next_route_id(ctx);
                let job = Job::Multihop {
                    paths,
                    next_path: idx + 1,
                    amount,
                };
                self.pending_routes
                    .insert(route, (ctx.now_ns(), job.clone()));
                let result = self.host.node.command(
                    ctx,
                    Command::PayMultihop {
                        route,
                        hops,
                        channels,
                        amount,
                    },
                );
                match result {
                    Ok(()) => self.inflight += 1,
                    Err(_) => {
                        self.pending_routes.remove(&route);
                        self.schedule_retry(ctx, job);
                    }
                }
            }
        }
    }

    fn flush_batch(&mut self, ctx: &mut Ctx<'_>) {
        let Some(batch) = &mut self.batch else {
            return;
        };
        let interval = batch.interval_ns;
        let chan = batch.chan;
        // How many logical payments the client generated this interval:
        // bounded by the per-payment generation cost (the CPU model).
        let capacity = interval
            .checked_div(self.host.costs.logical_ns)
            .unwrap_or(u32::MAX as u64);
        let mut count = 0u32;
        let mut amount = 0u64;
        while (count as u64) < capacity {
            match self.jobs.pop_front() {
                Some(Job::Direct { amount: a, .. }) => {
                    count += 1;
                    amount += a;
                }
                Some(other) => {
                    self.jobs.push_front(other);
                    break;
                }
                None => break,
            }
        }
        if count > 0 {
            ctx.busy(self.host.costs.logical_ns * count as u64);
            // Average queueing delay inside the batch is interval/2.
            let effective_send = ctx.now_ns().saturating_sub(interval / 2);
            self.pending_direct
                .entry(chan)
                .or_default()
                .push_back((effective_send, count));
            if self.stats.first_issue.is_none() {
                self.stats.first_issue = Some(ctx.now_ns().saturating_sub(interval));
            }
            let result = self.host.node.command(
                ctx,
                Command::Pay {
                    id: chan,
                    amount,
                    count,
                },
            );
            if result.is_err() {
                // Counter throttled (stable storage): put the jobs back.
                self.pending_direct
                    .get_mut(&chan)
                    .expect("pushed")
                    .pop_back();
                for _ in 0..count {
                    self.jobs.push_front(Job::Direct {
                        chan,
                        amount: amount / count as u64,
                    });
                }
            } else {
                self.inflight += count as usize;
            }
        }
        if !self.jobs.is_empty() {
            ctx.set_timer(interval, BATCH_TOKEN);
        } else if let Some(b) = &mut self.batch {
            b.armed = false;
        }
    }
}

impl SimNode for BenchNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Vec<u8>) {
        self.host.on_message(ctx, from, msg);
        self.drain_host_events(ctx);
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            BATCH_TOKEN => self.flush_batch(ctx),
            JOB_RETRY_TOKEN => {
                // FIFO: oldest failed job first, so backoff cannot
                // starve early payments into a pathological tail.
                if let Some(job) = self.retry_bucket.pop_front() {
                    self.issue(ctx, job);
                }
            }
            _ => self.host.on_timer(ctx, token),
        }
        self.drain_host_events(ctx);
        self.pump(ctx);
    }
}

/// Cluster configuration.
#[derive(Clone)]
pub struct BenchConfig {
    /// Number of machines.
    pub n: usize,
    /// CPU cost model.
    pub costs: CostModel,
    /// Default link.
    pub default_link: LinkSpec,
    /// Fault-tolerance backend (§6). Replication chains are wired by the
    /// scenario builders (they choose failure domains), so only the
    /// persistence policy is consumed here.
    pub durability: DurabilityBackend,
    /// Seed.
    pub seed: u64,
    /// Which event-loop engine hosts the cluster (see
    /// `teechain_net::EngineKind`). Defaults to the `TEECHAIN_ENGINE` /
    /// `TEECHAIN_SHARDS` environment, sequential when unset.
    pub engine: EngineKind,
    /// Which pairs of nodes learn each other's enclave identity at
    /// startup. `None` registers the full mesh — O(n²) directory
    /// entries, fine for paper-scale clusters but prohibitive at 10k+
    /// nodes. Large generated topologies pass their channel edges (plus
    /// any committee pairs) instead; routing only ever needs neighbors.
    pub peers: Option<Vec<(usize, usize)>>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            n: 2,
            costs: CostModel::default(),
            default_link: LinkSpec::ideal(),
            durability: DurabilityBackend::None,
            seed: 11,
            engine: EngineKind::from_env(),
            peers: None,
        }
    }
}

/// Aggregated results of one run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Logical payments completed.
    pub completed: u64,
    /// Makespan from first issue to last ack (ns).
    pub duration_ns: u64,
    /// Throughput (payments per second).
    pub throughput: f64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Average hops per completed multi-hop payment.
    pub avg_hops: f64,
    /// Total retries (lock contention).
    pub retries: u64,
}

/// A benchmark cluster: like `teechain::testkit::Cluster` but with
/// workload drivers on every node.
pub struct BenchCluster {
    /// The discrete-event engine hosting all nodes.
    pub sim: AnyEngine<BenchNode>,
    /// The shared chain.
    pub chain: SharedChain,
    /// Node identities.
    pub ids: Vec<PublicKey>,
    /// Durable stores per node (persistent mode; harness-owned so they
    /// survive node crashes).
    pub stores: Vec<Option<SharedStore>>,
}

impl BenchCluster {
    /// Builds the cluster (attested, directories pre-filled).
    pub fn new(cfg: BenchConfig) -> BenchCluster {
        let root = TrustRoot::new(cfg.seed ^ 0xbe);
        let chain: SharedChain = Arc::new(Mutex::new(Chain::new()));
        let measurement = TeechainNode::measurement();
        let mut nodes = Vec::with_capacity(cfg.n);
        let mut stores: Vec<Option<SharedStore>> = Vec::with_capacity(cfg.n);
        for i in 0..cfg.n {
            let device = root.issue_device(5000 + i as u64);
            let enclave_cfg = EnclaveConfig {
                trust_root: root.public_key(),
                measurement,
                durability: cfg.durability,
            };
            let mut node = TeechainNode::new(
                device,
                enclave_cfg,
                cfg.seed.wrapping_mul(0xD1B5_4A32).wrapping_add(i as u64),
                chain.clone(),
            );
            if cfg.durability.is_persist() {
                let store = PersistentStore::in_memory().into_shared();
                node.attach_store(store.clone());
                stores.push(Some(store));
            } else {
                stores.push(None);
            }
            nodes.push(BenchNode::new(SimHost::new(node, cfg.costs)));
        }
        let mut sim = AnyEngine::new(cfg.engine, nodes, cfg.default_link, cfg.seed);
        let mut ids = Vec::with_capacity(cfg.n);
        for i in 0..cfg.n {
            ids.push(sim.node_mut(NodeId(i as u32)).host.node.identity(0));
        }
        match &cfg.peers {
            None => {
                for i in 0..cfg.n {
                    for (j, id) in ids.iter().enumerate() {
                        if i != j {
                            sim.node_mut(NodeId(i as u32))
                                .host
                                .node
                                .register_peer(*id, NodeId(j as u32));
                        }
                    }
                }
            }
            Some(edges) => {
                for &(i, j) in edges {
                    sim.node_mut(NodeId(i as u32))
                        .host
                        .node
                        .register_peer(ids[j], NodeId(j as u32));
                    sim.node_mut(NodeId(j as u32))
                        .host
                        .node
                        .register_peer(ids[i], NodeId(i as u32));
                }
            }
        }
        BenchCluster {
            sim,
            chain,
            ids,
            stores,
        }
    }

    /// Converts the quiescent cluster to another engine kind (see
    /// `AnyEngine::into_kind`): build one topology sequentially, then
    /// measure every engine configuration on it.
    pub fn set_engine(&mut self, kind: EngineKind) {
        // Temporarily replace with an empty engine to take ownership.
        let placeholder = AnyEngine::new(EngineKind::Seq, Vec::new(), LinkSpec::ideal(), 0);
        let sim = std::mem::replace(&mut self.sim, placeholder);
        self.sim = sim.into_kind(kind);
    }

    /// Runs the simulation to quiescence.
    pub fn settle(&mut self) {
        self.sim.run_to_idle(200_000_000);
    }

    /// Issues a setup command, retrying counter throttling.
    pub fn command(&mut self, i: usize, cmd: Command) -> Result<(), ProtocolError> {
        loop {
            let nid = NodeId(i as u32);
            let r = self
                .sim
                .call(nid, |node, ctx| node.host.node.command(ctx, cmd.clone()));
            match r {
                Err(ProtocolError::CounterThrottled { ready_at }) => {
                    self.sim.run_until(ready_at);
                }
                other => return other,
            }
        }
    }

    /// Connects a and b (sessions), runs to idle.
    pub fn connect(&mut self, a: usize, b: usize) {
        let remote = self.ids[b];
        self.command(a, Command::StartSession { remote }).unwrap();
        self.settle();
    }

    /// Opens + funds a channel from `a` to `b` with `value` on `a`'s side
    /// and committee threshold `m` (n follows `a`'s chain length).
    pub fn standard_channel(
        &mut self,
        a: usize,
        b: usize,
        label: &str,
        value: u64,
        m: u8,
    ) -> ChannelId {
        self.connect(a, b);
        let id = ChannelId::from_label(label);
        // Settlement address: generated in-enclave.
        self.command(a, Command::NewAddress).unwrap();
        let my_settlement = self
            .sim
            .node_mut(NodeId(a as u32))
            .host
            .node
            .drain_events()
            .into_iter()
            .find_map(|(_, e)| match e {
                HostEvent::NewAddress(pk) => Some(pk),
                _ => None,
            })
            .expect("address");
        let remote = self.ids[b];
        self.command(
            a,
            Command::NewChannel {
                id,
                remote,
                my_settlement,
            },
        )
        .unwrap();
        self.settle();
        let nid = NodeId(a as u32);
        let deposit = loop {
            match self.sim.call(nid, |node, ctx| {
                node.host
                    .node
                    .create_funded_committee_deposit(ctx, value, m)
            }) {
                Ok(dep) => break dep,
                Err(ProtocolError::CounterThrottled { ready_at }) => {
                    self.sim.run_until(ready_at);
                }
                Err(e) => panic!("deposit: {e:?}"),
            }
        };
        self.command(
            a,
            Command::ApproveDeposit {
                remote,
                outpoint: deposit.outpoint,
            },
        )
        .unwrap();
        self.settle();
        self.command(
            a,
            Command::AssociateDeposit {
                id,
                outpoint: deposit.outpoint,
            },
        )
        .unwrap();
        self.settle();
        id
    }

    /// Attaches `backup` to `tail`'s committee chain.
    pub fn attach_backup(&mut self, tail: usize, backup: usize) {
        self.connect(tail, backup);
        let backup_id = self.ids[backup];
        self.command(tail, Command::AttachBackup { backup: backup_id })
            .unwrap();
        self.settle();
        self.sim
            .node_mut(NodeId(tail as u32))
            .host
            .node
            .committee_peers
            .push(backup_id);
    }

    /// Assigns jobs and window to a node (before `run`).
    pub fn load(&mut self, i: usize, jobs: Vec<Job>, window: usize) {
        let node = self.sim.node_mut(NodeId(i as u32));
        node.jobs = jobs.into();
        node.window = window;
    }

    /// Appends a single job to a node (window defaults to 50).
    pub fn load_one(&mut self, i: usize, job: Job) {
        let node = self.sim.node_mut(NodeId(i as u32));
        node.jobs.push_back(job);
        node.window = node.window.max(50);
    }

    /// Sets a node's sliding-window size.
    pub fn set_window(&mut self, i: usize, window: usize) {
        self.sim.node_mut(NodeId(i as u32)).window = window;
    }

    /// Enables 100 ms client-side batching on node `i` over `chan`.
    pub fn enable_batching(&mut self, i: usize, chan: ChannelId, interval_ns: u64) {
        let node = self.sim.node_mut(NodeId(i as u32));
        node.batch = Some(BatchState {
            interval_ns,
            chan,
            armed: false,
        });
    }

    /// Kicks all drivers and runs until quiescent (or the event cap).
    /// Returns aggregated statistics.
    pub fn run(&mut self, max_events: u64) -> RunStats {
        // Clear setup noise from the stats.
        for i in 0..self.sim.len() {
            let node = self.sim.node_mut(NodeId(i as u32));
            node.stats = DriverStats::default();
            node.host.node.drain_events();
        }
        for i in 0..self.sim.len() {
            self.sim.call(NodeId(i as u32), |node, ctx| node.pump(ctx));
        }
        self.sim.run_to_idle(max_events);
        self.collect()
    }

    /// Aggregates stats across nodes.
    pub fn collect(&mut self) -> RunStats {
        let mut completed = 0;
        let mut first = u64::MAX;
        let mut last = 0;
        let mut lat = Histogram::new();
        let mut hops_total = 0;
        let mut mh = 0;
        let mut retries = 0;
        for i in 0..self.sim.len() {
            let node = self.sim.node_mut(NodeId(i as u32));
            completed += node.stats.completed;
            if let Some(f) = node.stats.first_issue {
                first = first.min(f);
            }
            last = last.max(node.stats.last_ack);
            hops_total += node.stats.hops_total;
            mh += node.stats.multihop_completed;
            retries += node.stats.retries;
            lat.merge(&node.stats.latencies);
        }
        let duration_ns = last.saturating_sub(if first == u64::MAX { 0 } else { first });
        let throughput = if duration_ns > 0 {
            completed as f64 / (duration_ns as f64 / 1e9)
        } else {
            0.0
        };
        RunStats {
            completed,
            duration_ns,
            throughput,
            mean_ms: lat.mean() / 1e6,
            p99_ms: lat.p99() as f64 / 1e6,
            avg_hops: if mh > 0 {
                hops_total as f64 / mh as f64
            } else {
                0.0
            },
            retries,
        }
    }
}
