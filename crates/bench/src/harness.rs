//! The workload-driving benchmark cluster.
//!
//! [`BenchNode`] wraps a Teechain host with a payment driver that issues
//! direct or multi-hop payments from inside the simulation: a sliding
//! window of in-flight payments per machine (W, §7.4), optional 100 ms
//! client-side batching (§7), and retry with randomized 100–200 ms backoff
//! on channel-lock failures — the exact mechanics of the paper's load
//! generator.
//!
//! The driver is built on the correlated-operation API: every issued
//! payment is a submitted operation, and the driver reacts to its typed
//! [`Completion`] — latency comes from the completion timestamps (per
//! operation, measured from the job's *first* issue so retries do not
//! reset the clock), and every failure is counted per [`OpError`] variant
//! in [`DriverStats::op_errors`] instead of vanishing.
//!
//! Lock contention no longer produces a retry storm: a payment against a
//! locked channel queues *inside the enclave* (admission control) and is
//! batch-applied at the unlock point. [`RunStats`] therefore reports the
//! admission counters — how many ops queued, how many drain batches
//! committed and their size distribution — instead of retry counts.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use teechain::driver::{CostModel, SimHost};
use teechain::durability::DurabilityBackend;
use teechain::enclave::{Command, EnclaveConfig};
use teechain::node::{SharedChain, TeechainNode};
use teechain::ops::{Completion, OpError, OpOutput, OpResult, Pending};
use teechain::types::{ChannelId, ProtocolError, RouteId};
use teechain_blockchain::Chain;
use teechain_crypto::schnorr::PublicKey;
use teechain_net::{AnyEngine, Ctx, EngineKind, Histogram, LinkSpec, NodeId, SimNode};
use teechain_persist::{PersistentStore, SharedStore};
use teechain_tee::TrustRoot;

/// Timer tokens used by the driver (distinct from the host's own).
const BATCH_TOKEN: u64 = 0xBA7C4;
const JOB_RETRY_TOKEN: u64 = 0x4E7247;

/// One unit of offered load.
#[derive(Debug, Clone)]
pub enum Job {
    /// A direct payment on a channel.
    Direct {
        /// The channel to pay over.
        chan: ChannelId,
        /// Amount.
        amount: u64,
    },
    /// A multi-hop payment; `paths` are alternatives tried in order on
    /// failure (dynamic routing, §7.4). Each path is (hop identities,
    /// channels).
    Multihop {
        /// Alternative paths, shortest first.
        paths: Vec<(Vec<PublicKey>, Vec<ChannelId>)>,
        /// Which alternative to try next.
        next_path: usize,
        /// Amount.
        amount: u64,
    },
}

/// Client-side batching state (merge payments for `interval_ns` before
/// sending one merged payment, §7).
struct BatchState {
    interval_ns: u64,
    chan: ChannelId,
    armed: bool,
}

/// Per-node driver statistics.
#[derive(Default)]
pub struct DriverStats {
    /// Logical payments completed (acked).
    pub completed: u64,
    /// Failed completions per [`OpError::label`] — typed error
    /// accounting, exported as the `op_errors` section of the
    /// `BENCH_*.json` artifacts.
    pub op_errors: BTreeMap<String, u64>,
    /// Sum of path lengths (hops) over completed multi-hop payments.
    pub hops_total: u64,
    /// Multi-hop payments completed.
    pub multihop_completed: u64,
    /// Time of first issue (ns).
    pub first_issue: Option<u64>,
    /// Time of last completion (ns).
    pub last_ack: u64,
    /// Latency samples (ns), measured from each job's first issue.
    pub latencies: Histogram,
    /// Latency samples split per [`OpOutput::kind`] label — the source
    /// of the `latency` section in the `BENCH_*.json` artifacts.
    pub latency_by_kind: BTreeMap<String, Histogram>,
}

impl DriverStats {
    fn count_error(&mut self, e: &OpError) {
        *self.op_errors.entry(e.label()).or_insert(0) += 1;
    }

    fn record_latency(&mut self, kind: &'static str, lat_ns: u64) {
        self.latencies.record(lat_ns);
        self.latency_by_kind
            .entry(kind.to_string())
            .or_default()
            .record(lat_ns);
    }
}

/// Bookkeeping for one in-flight operation the driver issued.
struct Flight {
    job: Job,
    /// When this job was FIRST issued (survives retries).
    first_issue: u64,
    /// Logical payments inside the operation (batching).
    count: u32,
}

/// A simulator node: Teechain host + workload driver.
pub struct BenchNode {
    /// The wrapped host (public for setup).
    pub host: SimHost,
    jobs: VecDeque<Job>,
    /// Failed jobs awaiting their backoff timer: `(job, first_issue)`.
    retry_bucket: VecDeque<(Job, u64)>,
    window: usize,
    inflight: usize,
    batch: Option<BatchState>,
    /// Driver-issued operations awaiting completion, by op sequence.
    flights: HashMap<u64, Flight>,
    /// Completions of non-driver (setup) operations, claimed by
    /// [`BenchCluster::wait`].
    unclaimed: HashMap<u64, Completion>,
    route_seq: u64,
    /// When true, every drained completion is appended to
    /// [`BenchNode::completion_log`] (the determinism suite fingerprints
    /// it; off by default to keep 10k-node runs lean).
    pub record_completions: bool,
    /// Recorded completion stream (see
    /// [`BenchNode::record_completions`]).
    pub completion_log: Vec<Completion>,
    /// Enclave admission counters at the start of the current run —
    /// they live in the enclave for its whole lifetime, so per-run
    /// numbers are deltas against this snapshot.
    admit_base: teechain::admit::AdmitStats,
    /// Statistics (public for collection).
    pub stats: DriverStats,
}

impl BenchNode {
    fn new(host: SimHost) -> Self {
        BenchNode {
            host,
            jobs: VecDeque::new(),
            retry_bucket: VecDeque::new(),
            window: 1,
            inflight: 0,
            batch: None,
            flights: HashMap::new(),
            unclaimed: HashMap::new(),
            route_seq: 0,
            record_completions: false,
            completion_log: Vec::new(),
            admit_base: teechain::admit::AdmitStats::default(),
            stats: DriverStats::default(),
        }
    }

    /// Consumes the host's completion stream: driver flights update the
    /// stats and retry machinery; anything else (setup operations) is
    /// parked for [`BenchCluster::wait`].
    fn drain_completions(&mut self, ctx: &mut Ctx<'_>) {
        let completions = std::mem::take(&mut self.host.node.completions);
        for c in completions {
            if self.record_completions {
                self.completion_log.push(c.clone());
            }
            let Some(flight) = self.flights.remove(&c.op.seq) else {
                self.unclaimed.insert(c.op.seq, c);
                continue;
            };
            let kind = c.outcome.as_ref().ok().map(OpOutput::kind);
            match c.outcome {
                Ok(OpOutput::PaymentApplied { count, .. }) => {
                    self.stats.completed += count as u64;
                    self.stats.last_ack = c.time_ns;
                    self.stats.record_latency(
                        kind.expect("checked Ok"),
                        c.time_ns.saturating_sub(flight.first_issue),
                    );
                    self.inflight = self.inflight.saturating_sub(count as usize);
                }
                Ok(OpOutput::MultihopDelivered { .. }) => {
                    self.stats.completed += 1;
                    self.stats.multihop_completed += 1;
                    self.stats.last_ack = c.time_ns;
                    self.stats.record_latency(
                        kind.expect("checked Ok"),
                        c.time_ns.saturating_sub(flight.first_issue),
                    );
                    if let Job::Multihop {
                        paths, next_path, ..
                    } = &flight.job
                    {
                        let idx = next_path.saturating_sub(1).min(paths.len() - 1);
                        self.stats.hops_total += paths[idx].1.len() as u64;
                    }
                    self.inflight = self.inflight.saturating_sub(1);
                }
                Ok(_) => {
                    // A driver flight always resolves to a payment
                    // output; anything else is a harness bug.
                    unreachable!("driver operation resolved to a non-payment output");
                }
                Err(e) => {
                    self.stats.count_error(&e);
                    self.inflight = self.inflight.saturating_sub(flight.count as usize);
                    self.handle_failure(ctx, flight, &e);
                }
            }
        }
    }

    /// Retry policy per typed failure. In-enclave admission absorbs lock
    /// contention (queued, not rejected), so what remains transient is a
    /// remote refusal (multi-hop retries over the next alternative path;
    /// direct payments re-send) and the rare admission push-back: a full
    /// queue or a deadline expiry, both surfaced as `ChannelLocked`.
    /// Permanent rejections drop the job (already counted in
    /// `op_errors`).
    fn handle_failure(&mut self, ctx: &mut Ctx<'_>, flight: Flight, e: &OpError) {
        let transient = match (&flight.job, e) {
            (_, OpError::Remote(_)) => true,
            (_, OpError::Rejected(ProtocolError::ChannelLocked)) => true,
            // Multi-hop lock setup can also fail locally mid-race.
            (Job::Multihop { .. }, OpError::Rejected(_)) => true,
            _ => false,
        };
        if !transient {
            return;
        }
        if flight.count > 1 {
            // A failed merged batch: put the logical payments back,
            // conserving the total (the division remainder goes to the
            // first jobs — the merged message no longer remembers the
            // original per-job split).
            if let Job::Direct { chan, amount } = flight.job {
                let count = flight.count as u64;
                let each = amount / count;
                let remainder = amount % count;
                for k in 0..count {
                    let extra = u64::from(k < remainder);
                    self.jobs.push_front(Job::Direct {
                        chan,
                        amount: each + extra,
                    });
                }
            }
            return;
        }
        self.schedule_retry(ctx, flight.job, flight.first_issue);
    }

    fn schedule_retry(&mut self, ctx: &mut Ctx<'_>, job: Job, first_issue: u64) {
        self.retry_bucket.push_back((job, first_issue));
        // Randomized 100–200 ms backoff (§7.4).
        let delay = ctx.rng().next_range(100_000_000, 200_000_000);
        ctx.set_timer(delay, JOB_RETRY_TOKEN);
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(batch) = &self.batch {
            if !batch.armed {
                let interval = batch.interval_ns;
                self.batch.as_mut().expect("checked").armed = true;
                ctx.set_timer(interval, BATCH_TOKEN);
            }
            return; // Batched mode issues on the batch timer only.
        }
        while self.inflight < self.window {
            let Some(job) = self.jobs.pop_front() else {
                break;
            };
            self.issue(ctx, job, None);
            // Synchronous rejections complete immediately; reclaim their
            // window slots before deciding to issue more.
            self.drain_completions(ctx);
        }
    }

    /// Route ids double as the admission layer's wait-die priority
    /// (lexicographically smaller id = may wait behind a lock holder).
    /// Leading with the big-endian *first-issue* timestamp makes that
    /// priority the payment's age: a retried payment keeps its original
    /// timestamp, so it outranks younger traffic and eventually queues
    /// instead of aborting — classic wait-die without starvation.
    fn next_route_id(&mut self, ctx: &Ctx<'_>, first_issue: u64) -> RouteId {
        self.route_seq += 1;
        let mut id = [0u8; 32];
        id[..8].copy_from_slice(&first_issue.to_be_bytes());
        id[8..12].copy_from_slice(&ctx.self_id().0.to_be_bytes());
        id[12..20].copy_from_slice(&self.route_seq.to_be_bytes());
        RouteId(id)
    }

    /// Issues one job as a correlated operation. `first_issue` carries
    /// the original issue time through retries (None = this is the first
    /// attempt).
    fn issue(&mut self, ctx: &mut Ctx<'_>, job: Job, first_issue: Option<u64>) {
        if self.stats.first_issue.is_none() {
            self.stats.first_issue = Some(ctx.now_ns());
        }
        let first_issue = first_issue.unwrap_or_else(|| ctx.now_ns());
        match job {
            Job::Direct { chan, amount } => {
                ctx.busy(self.host.costs.logical_ns);
                let op = self.host.node.submit_op(
                    ctx,
                    Command::Pay {
                        id: chan,
                        amount,
                        count: 1,
                    },
                    None,
                );
                self.inflight += 1;
                self.flights.insert(
                    op.seq,
                    Flight {
                        job: Job::Direct { chan, amount },
                        first_issue,
                        count: 1,
                    },
                );
            }
            Job::Multihop {
                paths,
                next_path,
                amount,
            } => {
                ctx.busy(self.host.costs.logical_ns);
                let idx = next_path.min(paths.len() - 1);
                let (hops, channels) = paths[idx].clone();
                let route = self.next_route_id(ctx, first_issue);
                let op = self.host.node.submit_op(
                    ctx,
                    Command::PayMultihop {
                        route,
                        hops,
                        channels,
                        amount,
                    },
                    None,
                );
                self.inflight += 1;
                self.flights.insert(
                    op.seq,
                    Flight {
                        job: Job::Multihop {
                            paths,
                            next_path: idx + 1,
                            amount,
                        },
                        first_issue,
                        count: 1,
                    },
                );
            }
        }
    }

    fn flush_batch(&mut self, ctx: &mut Ctx<'_>) {
        let Some(batch) = &mut self.batch else {
            return;
        };
        let interval = batch.interval_ns;
        let chan = batch.chan;
        // How many logical payments the client generated this interval:
        // bounded by the per-payment generation cost (the CPU model).
        let capacity = interval
            .checked_div(self.host.costs.logical_ns)
            .unwrap_or(u32::MAX as u64);
        let mut count = 0u32;
        let mut amount = 0u64;
        while (count as u64) < capacity {
            match self.jobs.pop_front() {
                Some(Job::Direct { amount: a, .. }) => {
                    count += 1;
                    amount += a;
                }
                Some(other) => {
                    self.jobs.push_front(other);
                    break;
                }
                None => break,
            }
        }
        if count > 0 {
            ctx.busy(self.host.costs.logical_ns * count as u64);
            // Average queueing delay inside the batch is interval/2.
            let effective_send = ctx.now_ns().saturating_sub(interval / 2);
            if self.stats.first_issue.is_none() {
                self.stats.first_issue = Some(ctx.now_ns().saturating_sub(interval));
            }
            // Counter throttling (stable storage) is re-dispatched by the
            // node's admission pump at `ready_at` — the merged operation
            // simply stays in flight until the whole batch group-commits.
            let op = self.host.node.submit_op(
                ctx,
                Command::Pay {
                    id: chan,
                    amount,
                    count,
                },
                None,
            );
            self.inflight += count as usize;
            self.flights.insert(
                op.seq,
                Flight {
                    job: Job::Direct { chan, amount },
                    first_issue: effective_send,
                    count,
                },
            );
        }
        if !self.jobs.is_empty() {
            ctx.set_timer(interval, BATCH_TOKEN);
        } else if let Some(b) = &mut self.batch {
            b.armed = false;
        }
    }
}

impl SimNode for BenchNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Vec<u8>) {
        self.host.on_message(ctx, from, msg);
        self.drain_completions(ctx);
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            BATCH_TOKEN => self.flush_batch(ctx),
            JOB_RETRY_TOKEN => {
                // FIFO: oldest failed job first, so backoff cannot
                // starve early payments into a pathological tail.
                if let Some((job, first_issue)) = self.retry_bucket.pop_front() {
                    self.issue(ctx, job, Some(first_issue));
                }
            }
            _ => self.host.on_timer(ctx, token),
        }
        self.drain_completions(ctx);
        self.pump(ctx);
    }
}

/// Cluster configuration.
#[derive(Clone)]
pub struct BenchConfig {
    /// Number of machines.
    pub n: usize,
    /// CPU cost model.
    pub costs: CostModel,
    /// Default link.
    pub default_link: LinkSpec,
    /// Fault-tolerance backend (§6). Replication chains are wired by the
    /// scenario builders (they choose failure domains), so only the
    /// persistence policy is consumed here.
    pub durability: DurabilityBackend,
    /// Seed.
    pub seed: u64,
    /// Which event-loop engine hosts the cluster (see
    /// `teechain_net::EngineKind`). Defaults to the `TEECHAIN_ENGINE` /
    /// `TEECHAIN_SHARDS` environment, sequential when unset.
    pub engine: EngineKind,
    /// Which pairs of nodes learn each other's enclave identity at
    /// startup. `None` registers the full mesh — O(n²) directory
    /// entries, fine for paper-scale clusters but prohibitive at 10k+
    /// nodes. Large generated topologies pass their channel edges (plus
    /// any committee pairs) instead; routing only ever needs neighbors.
    pub peers: Option<Vec<(usize, usize)>>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            n: 2,
            costs: CostModel::default(),
            default_link: LinkSpec::ideal(),
            durability: DurabilityBackend::None,
            seed: 11,
            engine: EngineKind::from_env(),
            peers: None,
        }
    }
}

/// Aggregated results of one run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Logical payments completed.
    pub completed: u64,
    /// Makespan from first issue to last ack (ns).
    pub duration_ns: u64,
    /// Throughput (payments per second).
    pub throughput: f64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Average hops per completed multi-hop payment.
    pub avg_hops: f64,
    /// Ops that entered an enclave admission queue instead of erroring
    /// with `ChannelLocked` (cluster-wide, from the enclave counters).
    pub queued: u64,
    /// Inbound messages deferred behind a locked channel.
    pub deferred: u64,
    /// Admission drain batches committed (each = one counter increment
    /// and one WAL record in persistent mode).
    pub batches: u64,
    /// Payments applied through those batches.
    pub batched_payments: u64,
    /// Largest single drain batch.
    pub max_batch: u64,
    /// Batch-size histogram: bucket i counts batches of size in
    /// `[2^i, 2^(i+1))`.
    pub batch_hist: [u64; 16],
    /// Ops carried by an unlocked parallel (temporary) channel instead
    /// of waiting behind the locked one they named.
    pub rerouted: u64,
    /// Deepest per-channel admission queue observed on any node
    /// (enclave-lifetime high-watermark).
    pub queue_depth_hwm: u64,
    /// Deepest deferred-delivery queue observed on any node
    /// (enclave-lifetime high-watermark).
    pub defer_depth_hwm: u64,
    /// Oldest deferred message age seen at drain or expiry, ns
    /// (enclave-lifetime maximum).
    pub defer_age_max_ns: u64,
}

/// A benchmark cluster: like `teechain::testkit::Cluster` but with
/// workload drivers on every node.
pub struct BenchCluster {
    /// The discrete-event engine hosting all nodes.
    pub sim: AnyEngine<BenchNode>,
    /// The shared chain.
    pub chain: SharedChain,
    /// The shared alternate chain (cross-chain atomic swaps).
    pub chain2: SharedChain,
    /// Node identities.
    pub ids: Vec<PublicKey>,
    /// Durable stores per node (persistent mode; harness-owned so they
    /// survive node crashes).
    pub stores: Vec<Option<SharedStore>>,
}

impl BenchCluster {
    /// Builds the cluster (attested, directories pre-filled).
    pub fn new(cfg: BenchConfig) -> BenchCluster {
        let root = TrustRoot::new(cfg.seed ^ 0xbe);
        let chain: SharedChain = Arc::new(Mutex::new(Chain::new()));
        let chain2: SharedChain = Arc::new(Mutex::new(Chain::new()));
        let measurement = TeechainNode::measurement();
        let mut nodes = Vec::with_capacity(cfg.n);
        let mut stores: Vec<Option<SharedStore>> = Vec::with_capacity(cfg.n);
        for i in 0..cfg.n {
            let device = root.issue_device(5000 + i as u64);
            let enclave_cfg = EnclaveConfig {
                trust_root: root.public_key(),
                measurement,
                durability: cfg.durability,
            };
            let mut node = TeechainNode::new(
                device,
                enclave_cfg,
                cfg.seed.wrapping_mul(0xD1B5_4A32).wrapping_add(i as u64),
                chain.clone(),
            );
            node.attach_alt_chain(chain2.clone());
            if cfg.durability.is_persist() {
                let store = PersistentStore::in_memory().into_shared();
                node.attach_store(store.clone());
                stores.push(Some(store));
            } else {
                stores.push(None);
            }
            nodes.push(BenchNode::new(SimHost::new(node, cfg.costs)));
        }
        let mut sim = AnyEngine::new(cfg.engine, nodes, cfg.default_link, cfg.seed);
        let mut ids = Vec::with_capacity(cfg.n);
        for i in 0..cfg.n {
            ids.push(sim.node_mut(NodeId(i as u32)).host.node.identity(0));
        }
        match &cfg.peers {
            None => {
                for i in 0..cfg.n {
                    for (j, id) in ids.iter().enumerate() {
                        if i != j {
                            sim.node_mut(NodeId(i as u32))
                                .host
                                .node
                                .register_peer(*id, NodeId(j as u32));
                        }
                    }
                }
            }
            Some(edges) => {
                for &(i, j) in edges {
                    sim.node_mut(NodeId(i as u32))
                        .host
                        .node
                        .register_peer(ids[j], NodeId(j as u32));
                    sim.node_mut(NodeId(j as u32))
                        .host
                        .node
                        .register_peer(ids[i], NodeId(i as u32));
                }
            }
        }
        BenchCluster {
            sim,
            chain,
            chain2,
            ids,
            stores,
        }
    }

    /// Converts the quiescent cluster to another engine kind (see
    /// `AnyEngine::into_kind`): build one topology sequentially, then
    /// measure every engine configuration on it.
    pub fn set_engine(&mut self, kind: EngineKind) {
        // Temporarily replace with an empty engine to take ownership.
        let placeholder = AnyEngine::new(EngineKind::Seq, Vec::new(), LinkSpec::ideal(), 0);
        let sim = std::mem::replace(&mut self.sim, placeholder);
        self.sim = sim.into_kind(kind);
    }

    /// Runs the simulation to quiescence, then resolves every
    /// still-pending operation as dead (`OpError::Timeout`) — once the
    /// network is silent no terminal response can arrive, and a stale
    /// pending operation would steal a later same-key response.
    pub fn settle(&mut self) {
        // Dead-op resolution is only sound at true quiescence: the cap
        // is a runaway guard, so keep running until a pass processes
        // fewer events than it (bounded against pathological livelock).
        const CAP: u64 = 200_000_000;
        for _ in 0..64 {
            if self.sim.run_to_idle(CAP) < CAP {
                break;
            }
        }
        self.resolve_dead_ops();
    }

    /// Quiescence resolution: typed-timeout every pending operation and
    /// route the completions through the driver accounting.
    fn resolve_dead_ops(&mut self) {
        let now = self.sim.now_ns();
        for i in 0..self.sim.len() {
            let node = self.sim.node_mut(NodeId(i as u32));
            if node.host.node.resolve_all_dead(now) == 0 {
                continue;
            }
            let completions = std::mem::take(&mut node.host.node.completions);
            for c in completions {
                if node.record_completions {
                    node.completion_log.push(c.clone());
                }
                match node.flights.remove(&c.op.seq) {
                    Some(flight) => {
                        // A driver payment died (e.g. its peer crashed):
                        // count the typed timeout — it must not vanish.
                        if let Err(e) = &c.outcome {
                            node.stats.count_error(e);
                        }
                        node.inflight = node.inflight.saturating_sub(flight.count as usize);
                    }
                    None => {
                        node.unclaimed.insert(c.op.seq, c);
                    }
                }
            }
        }
    }

    // ---- Setup operations (the same correlated-op API as the testkit) ----

    /// Submits a setup command on node `i`.
    pub fn submit(&mut self, i: usize, cmd: Command) -> teechain::OpId {
        let nid = NodeId(i as u32);
        self.sim
            .call(nid, |node, ctx| node.host.node.submit_op(ctx, cmd, None))
    }

    /// Resolves a pending setup operation: runs to quiescence and
    /// extracts the typed result ([`OpError::Timeout`] if the network
    /// fell silent without a terminal response).
    pub fn wait<T: OpResult>(&mut self, p: Pending<T>) -> Result<T, OpError> {
        self.settle();
        self.claim(p)
    }

    /// Extracts the typed result of an operation that has **already
    /// settled**. Phase-batched setup submits a whole wave of
    /// independent ops, settles once, then claims every result —
    /// replacing the per-op settle-and-scan (O(nodes) per op) that made
    /// large topologies quadratic to build.
    pub fn claim<T: OpResult>(&mut self, p: Pending<T>) -> Result<T, OpError> {
        let nid = NodeId(p.op.node);
        let now = self.sim.now_ns();
        let node = self.sim.node_mut(nid);
        let outcome = if let Some(c) = node.unclaimed.remove(&p.op.seq) {
            c.outcome
        } else if let Some(pos) = node.host.node.completions.iter().position(|c| c.op == p.op) {
            let c = node.host.node.completions.remove(pos);
            if node.record_completions {
                node.completion_log.push(c.clone());
            }
            c.outcome
        } else {
            match node.host.node.resolve_dead_op(p.op, now) {
                Some(c) => {
                    // The dead-op completion was appended to the host
                    // stream; claim it so it is not mistaken for a
                    // driver flight later.
                    node.host.node.completions.retain(|x| x.op != p.op);
                    if node.record_completions {
                        node.completion_log.push(c.clone());
                    }
                    c.outcome
                }
                None => Err(OpError::Timeout { at_ns: now }),
            }
        };
        outcome.map(|out| {
            T::from_output(out).expect("completion output does not match the operation's type")
        })
    }

    /// Submits and resolves one setup command.
    pub fn op(&mut self, i: usize, cmd: Command) -> Result<OpOutput, OpError> {
        let op = self.submit(i, cmd);
        self.wait(Pending::new(op))
    }

    /// Panicking wrapper over [`BenchCluster::op`].
    pub fn exec(&mut self, i: usize, cmd: Command) -> OpOutput {
        self.op(i, cmd).expect("operation failed")
    }

    /// Connects a and b (sessions), runs to idle.
    pub fn connect(&mut self, a: usize, b: usize) {
        let remote = self.ids[b];
        self.exec(a, Command::StartSession { remote });
    }

    /// Submits (without settling) an m-of-n committee deposit of
    /// `value` on node `i`; claim the [`teechain::Deposit`] after a
    /// batched settle.
    pub fn submit_deposit(&mut self, i: usize, value: u64, m: u8) -> teechain::OpId {
        let nid = NodeId(i as u32);
        self.sim.call(nid, |node, ctx| {
            node.host.node.submit_fund_deposit(ctx, value, m)
        })
    }

    /// Funds an m-of-n committee deposit of `value` on node `i`.
    pub fn fund_deposit(&mut self, i: usize, value: u64, m: u8) -> teechain::Deposit {
        let op = self.submit_deposit(i, value, m);
        self.wait(Pending::new(op)).expect("fund deposit failed")
    }

    /// Opens + funds a channel from `a` to `b` with `value` on `a`'s side
    /// and committee threshold `m` (n follows `a`'s chain length).
    pub fn standard_channel(
        &mut self,
        a: usize,
        b: usize,
        label: &str,
        value: u64,
        m: u8,
    ) -> ChannelId {
        self.connect(a, b);
        let id = ChannelId::from_label(label);
        // Settlement address: generated in-enclave.
        let my_settlement = match self.exec(a, Command::NewAddress) {
            OpOutput::Address(pk) => pk,
            other => panic!("unexpected output {other:?}"),
        };
        let remote = self.ids[b];
        let open = self.submit(
            a,
            Command::NewChannel {
                id,
                remote,
                my_settlement,
            },
        );
        self.wait::<ChannelId>(Pending::new(open))
            .expect("channel open failed");
        let deposit = self.fund_deposit(a, value, m);
        self.exec(
            a,
            Command::ApproveDeposit {
                remote,
                outpoint: deposit.outpoint,
            },
        );
        self.exec(
            a,
            Command::AssociateDeposit {
                id,
                outpoint: deposit.outpoint,
            },
        );
        id
    }

    /// Attaches `backup` to `tail`'s committee chain.
    pub fn attach_backup(&mut self, tail: usize, backup: usize) {
        self.connect(tail, backup);
        let backup_id = self.ids[backup];
        self.exec(tail, Command::AttachBackup { backup: backup_id });
        self.sim
            .node_mut(NodeId(tail as u32))
            .host
            .node
            .committee_peers
            .push(backup_id);
    }

    /// Assigns jobs and window to a node (before `run`).
    pub fn load(&mut self, i: usize, jobs: Vec<Job>, window: usize) {
        let node = self.sim.node_mut(NodeId(i as u32));
        node.jobs = jobs.into();
        node.window = window;
    }

    /// Appends a single job to a node (window defaults to 50).
    pub fn load_one(&mut self, i: usize, job: Job) {
        let node = self.sim.node_mut(NodeId(i as u32));
        node.jobs.push_back(job);
        node.window = node.window.max(50);
    }

    /// Sets a node's sliding-window size.
    pub fn set_window(&mut self, i: usize, window: usize) {
        self.sim.node_mut(NodeId(i as u32)).window = window;
    }

    /// Enables 100 ms client-side batching on node `i` over `chan`.
    pub fn enable_batching(&mut self, i: usize, chan: ChannelId, interval_ns: u64) {
        let node = self.sim.node_mut(NodeId(i as u32));
        node.batch = Some(BatchState {
            interval_ns,
            chan,
            armed: false,
        });
    }

    /// Enables (or disables) completion-stream recording on every node —
    /// the determinism suite fingerprints [`BenchNode::completion_log`].
    pub fn set_record_completions(&mut self, on: bool) {
        for i in 0..self.sim.len() {
            let node = self.sim.node_mut(NodeId(i as u32));
            node.record_completions = on;
            node.completion_log.clear();
        }
    }

    /// The cluster-wide completion history recorded since
    /// [`BenchCluster::set_record_completions`], merged deterministically
    /// by `(time, node, seq)`.
    pub fn completion_log(&self) -> Vec<Completion> {
        let streams: Vec<&[Completion]> = (0..self.sim.len())
            .map(|i| self.sim.node(NodeId(i as u32)).completion_log.as_slice())
            .collect();
        teechain::ops::merge_completions(&streams)
    }

    /// Kicks all drivers and runs until quiescent (or the event cap).
    /// Returns aggregated statistics.
    pub fn run(&mut self, max_events: u64) -> RunStats {
        // Clear setup noise from the stats and completion bookkeeping,
        // and snapshot the enclave admission counters (they are
        // enclave-lifetime; per-run numbers are deltas).
        for i in 0..self.sim.len() {
            let node = self.sim.node_mut(NodeId(i as u32));
            node.stats = DriverStats::default();
            node.unclaimed.clear();
            node.host.node.events.clear();
            node.host.node.completions.clear();
            node.admit_base = node
                .host
                .node
                .enclave
                .program()
                .map(|p| p.admit_stats().clone())
                .unwrap_or_default();
        }
        for i in 0..self.sim.len() {
            self.sim.call(NodeId(i as u32), |node, ctx| node.pump(ctx));
        }
        self.sim.run_to_idle(max_events);
        // This measurement run is over — whether the queue drained or
        // the caller's event budget expired. Operations still pending
        // are dead *for this run's accounting*: turn them into counted
        // timeouts instead of silent losses. (A run is never resumed:
        // `set_engine` requires a drained queue and a fresh `run` resets
        // the stats and completion bookkeeping.)
        self.resolve_dead_ops();
        self.collect()
    }

    /// Aggregates stats across nodes.
    pub fn collect(&mut self) -> RunStats {
        let mut completed = 0;
        let mut first = u64::MAX;
        let mut last = 0;
        let mut lat = Histogram::new();
        let mut hops_total = 0;
        let mut mh = 0;
        let mut queued = 0;
        let mut deferred = 0;
        let mut batches = 0;
        let mut batched_payments = 0;
        let mut max_batch = 0u64;
        let mut batch_hist = [0u64; 16];
        let mut rerouted = 0;
        let mut queue_depth_hwm = 0u64;
        let mut defer_depth_hwm = 0u64;
        let mut defer_age_max_ns = 0u64;
        for i in 0..self.sim.len() {
            let node = self.sim.node_mut(NodeId(i as u32));
            completed += node.stats.completed;
            if let Some(f) = node.stats.first_issue {
                first = first.min(f);
            }
            last = last.max(node.stats.last_ack);
            hops_total += node.stats.hops_total;
            mh += node.stats.multihop_completed;
            lat.merge(&node.stats.latencies);
            if let Some(a) = node.host.node.enclave.program().map(|p| p.admit_stats()) {
                let base = &node.admit_base;
                queued += a.enqueued - base.enqueued;
                deferred += a.deferred - base.deferred;
                batches += a.batches - base.batches;
                batched_payments += a.batched_payments - base.batched_payments;
                rerouted += a.rerouted - base.rerouted;
                // Lifetime maxima (a per-run max is not recoverable from
                // a snapshot); fine — runs only ever grow them.
                max_batch = max_batch.max(a.max_batch);
                queue_depth_hwm = queue_depth_hwm.max(a.queue_depth_hwm);
                defer_depth_hwm = defer_depth_hwm.max(a.defer_depth_hwm);
                defer_age_max_ns = defer_age_max_ns.max(a.defer_age_max_ns);
                for ((acc, n), b) in batch_hist
                    .iter_mut()
                    .zip(a.batch_hist.iter())
                    .zip(base.batch_hist.iter())
                {
                    *acc += n - b;
                }
            }
        }
        let duration_ns = last.saturating_sub(if first == u64::MAX { 0 } else { first });
        let throughput = if duration_ns > 0 {
            completed as f64 / (duration_ns as f64 / 1e9)
        } else {
            0.0
        };
        RunStats {
            completed,
            duration_ns,
            throughput,
            mean_ms: lat.mean() / 1e6,
            p99_ms: lat.p99() as f64 / 1e6,
            avg_hops: if mh > 0 {
                hops_total as f64 / mh as f64
            } else {
                0.0
            },
            queued,
            deferred,
            batches,
            batched_payments,
            max_batch,
            batch_hist,
            rerouted,
            queue_depth_hwm,
            defer_depth_hwm,
            defer_age_max_ns,
        }
    }

    /// Aggregated typed-failure counts (per [`OpError::label`]) across
    /// all drivers since the last [`BenchCluster::run`] — the source of
    /// the `op_errors` section in the `BENCH_*.json` artifacts.
    pub fn op_errors(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for i in 0..self.sim.len() {
            for (label, n) in &self.sim.node(NodeId(i as u32)).stats.op_errors {
                *out.entry(label.clone()).or_insert(0) += n;
            }
        }
        out
    }

    /// Per-[`OpOutput::kind`] latency histograms merged across all
    /// drivers since the last [`BenchCluster::run`] — the `latency`
    /// section of the `BENCH_*.json` artifacts.
    pub fn latency_by_kind(&self) -> BTreeMap<String, Histogram> {
        let mut out: BTreeMap<String, Histogram> = BTreeMap::new();
        for i in 0..self.sim.len() {
            for (kind, h) in &self.sim.node(NodeId(i as u32)).stats.latency_by_kind {
                out.entry(kind.clone()).or_default().merge(h);
            }
        }
        out
    }

    /// Enables (or disables) the flight recorder on every node's tracer
    /// (default ring capacity). Tracing changes no protocol or simulated
    /// timing, only host-side recording.
    pub fn set_tracing(&mut self, on: bool) {
        for i in 0..self.sim.len() {
            self.sim
                .node_mut(NodeId(i as u32))
                .host
                .node
                .tracer
                .configure(on, None);
        }
    }

    /// Drains every node's flight ring into one merged, deterministic
    /// stream (ordered by `(ts_ns, node)`; per-node order preserved).
    pub fn drain_trace(&mut self) -> Vec<teechain_trace::TraceEvent> {
        let streams: Vec<Vec<teechain_trace::TraceEvent>> = (0..self.sim.len())
            .map(|i| self.sim.node_mut(NodeId(i as u32)).host.node.tracer.drain())
            .collect();
        teechain_trace::merge_events(streams)
    }

    /// Snapshots the cluster-wide metrics registry (same shape as
    /// `teechain::testkit::Cluster::observe`): node registries merged,
    /// plus the engine's own delivery counters under `sim.*`.
    pub fn observe(&self) -> teechain_trace::Snapshot {
        let mut reg = teechain_trace::Registry::new();
        for i in 0..self.sim.len() {
            reg.merge(&self.sim.node(NodeId(i as u32)).host.node.registry());
        }
        let s = self.sim.stats();
        reg.counter("sim.messages", s.messages);
        reg.counter("sim.bytes", s.bytes);
        reg.counter("sim.events", s.events);
        reg.counter("sim.dropped", s.dropped);
        reg.snapshot()
    }
}
