//! `--trace-out <path>`: flight-recorder export for the bench bins.
//!
//! Every bench binary accepts `--trace-out <path>`. When present, the
//! bin enables the cluster's flight recorder around its measured runs
//! and writes the drained, merged event stream as a chrome://tracing
//! JSON document (load it in `chrome://tracing` or Perfetto):
//!
//! * every [`TraceEvent`] becomes an instant event on track
//!   `pid 0 / tid <node>`, named by its [`EventKind`], with the span,
//!   parent and payload words in `args` (hex span ids — they are 64-bit
//!   FNV hashes and would lose precision as JSON numbers);
//! * cross-track causality renders as flow arrows: a `WireSend` opens a
//!   flow (`ph:"s"`) that the matching `WireRecv` closes (`ph:"f"`) —
//!   both ends derive the same span id from the sealed frame header, so
//!   no id exchange is needed — and each `OpSubmit`/`OpComplete` pair
//!   does the same per operation.
//!
//! Timestamps are the trace's own (sim-time under the engines,
//! wall-clock under `LiveCluster`), converted to the microseconds
//! chrome://tracing expects.

use std::path::PathBuf;

use crate::report::JsonValue;
use teechain_trace::{EventKind, TraceEvent};

/// Where `--trace-out` points this run, if anywhere.
pub struct TraceSink {
    path: Option<PathBuf>,
}

impl TraceSink {
    /// Parses `--trace-out <path>` from the process arguments.
    pub fn from_args() -> TraceSink {
        let args: Vec<String> = std::env::args().collect();
        let path = args
            .iter()
            .position(|a| a == "--trace-out")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from);
        TraceSink { path }
    }

    /// A sink bound to a fixed path (tests).
    pub fn to_path(path: PathBuf) -> TraceSink {
        TraceSink { path: Some(path) }
    }

    /// Whether `--trace-out` was given — bins use this to decide whether
    /// to enable tracing at all (recording is off by default).
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    /// Writes the chrome://tracing document; no-op without `--trace-out`.
    pub fn write(&self, events: &[TraceEvent]) {
        let Some(path) = &self.path else {
            return;
        };
        let doc = chrome_trace_json(events);
        std::fs::write(path, doc.render() + "\n").expect("write --trace-out file");
        println!("wrote trace {} ({} events)", path.display(), events.len());
    }
}

fn hex(v: u64) -> JsonValue {
    JsonValue::Str(format!("{v:#x}"))
}

/// One chrome trace event object.
fn chrome_event(
    name: &str,
    ph: &str,
    e: &TraceEvent,
    extra: Vec<(String, JsonValue)>,
) -> JsonValue {
    let mut fields = vec![
        ("name".to_string(), name.into()),
        ("cat".to_string(), "teechain".into()),
        ("ph".to_string(), ph.into()),
        ("ts".to_string(), (e.ts_ns as f64 / 1e3).into()),
        ("pid".to_string(), 0u64.into()),
        ("tid".to_string(), (e.node as u64).into()),
    ];
    fields.extend(extra);
    JsonValue::Obj(fields)
}

/// Renders a merged event stream as a chrome://tracing JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> JsonValue {
    let mut out: Vec<JsonValue> = Vec::with_capacity(events.len() * 2);
    for e in events {
        out.push(chrome_event(
            e.kind.name(),
            "i",
            e,
            vec![
                ("s".to_string(), "t".into()),
                (
                    "args".to_string(),
                    JsonValue::Obj(vec![
                        ("span".to_string(), hex(e.span)),
                        ("parent".to_string(), hex(e.parent)),
                        ("a".to_string(), e.a.into()),
                        ("b".to_string(), e.b.into()),
                    ]),
                ),
            ],
        ));
        // Flow arrows: both ends of a pair carry the same span id, so
        // the id field alone stitches them across tracks.
        let flow = match e.kind {
            EventKind::WireSend => Some(("wire", "s", false)),
            EventKind::WireRecv => Some(("wire", "f", true)),
            EventKind::OpSubmit => Some(("op", "s", false)),
            EventKind::OpComplete => Some(("op", "f", true)),
            _ => None,
        };
        if let Some((name, ph, enclosing)) = flow {
            let mut extra = vec![("id".to_string(), hex(e.span))];
            if enclosing {
                extra.push(("bp".to_string(), "e".into()));
            }
            out.push(chrome_event(name, ph, e, extra));
        }
    }
    JsonValue::Obj(vec![
        ("traceEvents".to_string(), JsonValue::Arr(out)),
        ("displayTimeUnit".to_string(), "ms".into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, node: u32, span: u64, parent: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: 1_500,
            node,
            kind,
            span,
            parent,
            a: 7,
            b: 0,
        }
    }

    #[test]
    fn instants_and_flow_pairs() {
        let events = vec![
            ev(EventKind::OpSubmit, 0, 0xAB, 0),
            ev(EventKind::WireSend, 0, 0xCD, 0xAB),
            ev(EventKind::WireRecv, 1, 0xCD, 0),
            ev(EventKind::OpComplete, 0, 0xAB, 0),
            ev(EventKind::Ecall, 1, 0xEF, 0xCD),
        ];
        let doc = chrome_trace_json(&events);
        let rendered = doc.render();
        // Parses back as valid JSON.
        let back = JsonValue::parse(&rendered).expect("valid chrome json");
        let JsonValue::Arr(items) = back.get("traceEvents").unwrap() else {
            panic!("traceEvents must be an array");
        };
        // 5 instants + 4 flow halves (the lone Ecall emits no flow).
        assert_eq!(items.len(), 9);
        // The wire flow pair shares one id across both tracks.
        let flows: Vec<&JsonValue> = items
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("wire"))
            .collect();
        assert_eq!(flows.len(), 2);
        assert_eq!(
            flows[0].get("id").and_then(|v| v.as_str()),
            flows[1].get("id").and_then(|v| v.as_str())
        );
        assert_eq!(flows[0].get("ph").and_then(|v| v.as_str()), Some("s"));
        assert_eq!(flows[1].get("ph").and_then(|v| v.as_str()), Some("f"));
        // Microsecond timestamps.
        assert_eq!(items[0].get("ts").and_then(|v| v.as_f64()), Some(1.5));
    }

    #[test]
    fn inactive_sink_is_a_noop() {
        let sink = TraceSink { path: None };
        assert!(!sink.active());
        sink.write(&[]); // Must not try to write anywhere.
    }
}
