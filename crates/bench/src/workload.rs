//! Synthetic payment workloads.
//!
//! The paper replays 150M filtered Bitcoin-history payments (§7.4). No
//! public micro-payment dataset exists (their observation, still true), so
//! we reproduce the *relevant structure* of that trace synthetically:
//! (source, destination, value) triples with Zipf-skewed address
//! popularity, values filtered below a threshold, and addresses assigned
//! to machines either uniformly (complete graph) or 50/35/15% per tier
//! (hub-and-spoke) — exactly the assignment of §7.4.

use teechain_net::topology::HubSpoke;
use teechain_net::NodeId;
use teechain_util::rng::Xoshiro256;

/// One logical payment between two machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Payment {
    /// Issuing machine.
    pub from: NodeId,
    /// Receiving machine.
    pub to: NodeId,
    /// Value (base units; filtered ≤ `MAX_VALUE`).
    pub value: u64,
}

/// The $100-equivalent value filter from §7.4.
pub const MAX_VALUE: u64 = 10_000;

/// A deterministic payment-trace generator.
pub struct Workload {
    rng: Xoshiro256,
    /// Cumulative address-ownership distribution per node.
    cumulative: Vec<f64>,
    /// Zipf skew across the address space (0.0 = uniform).
    zipf_s: f64,
}

impl Workload {
    /// Uniform address assignment over `n` machines (complete graph).
    pub fn uniform(n: u32, seed: u64) -> Workload {
        let weights = vec![1.0 / n as f64; n as usize];
        Workload::from_weights(&weights, seed)
    }

    /// The §7.4 hub-and-spoke skew: 50% of addresses on tier 1, 35% on
    /// tier 2, 15% on tier 3.
    pub fn hub_spoke(hs: &HubSpoke, seed: u64) -> Workload {
        let weights: Vec<f64> = (0..hs.total())
            .map(|i| hs.address_weight(NodeId(i)))
            .collect();
        Workload::from_weights(&weights, seed)
    }

    /// Builds from explicit per-node address-ownership weights.
    pub fn from_weights(weights: &[f64], seed: u64) -> Workload {
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Workload {
            rng: Xoshiro256::new(seed),
            cumulative,
            zipf_s: 1.05,
        }
    }

    fn sample_node(&mut self) -> NodeId {
        let u = self.rng.next_f64();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.cumulative.len() - 1);
        NodeId(idx as u32)
    }

    /// Draws the next payment (source ≠ destination).
    pub fn next_payment(&mut self) -> Payment {
        loop {
            let from = self.sample_node();
            let to = self.sample_node();
            if from == to {
                continue;
            }
            // Zipf-skewed value in (0, MAX_VALUE]: most payments small,
            // like the filtered Bitcoin history.
            let bucket = self.rng.next_zipf(100, self.zipf_s) + 1;
            let value = (MAX_VALUE / 100).max(1) * bucket;
            return Payment { from, to, value };
        }
    }

    /// Draws `count` payments.
    pub fn take(&mut self, count: usize) -> Vec<Payment> {
        (0..count).map(|_| self.next_payment()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_self_payments() {
        let mut w = Workload::uniform(5, 1);
        for p in w.take(1000) {
            assert_ne!(p.from, p.to);
            assert!(p.value <= MAX_VALUE && p.value > 0);
        }
    }

    #[test]
    fn deterministic() {
        let a = Workload::uniform(10, 7).take(100);
        let b = Workload::uniform(10, 7).take(100);
        assert_eq!(a, b);
    }

    #[test]
    fn hub_spoke_skew_matches_tiers() {
        let hs = HubSpoke::paper_default();
        let mut w = Workload::hub_spoke(&hs, 3);
        let payments = w.take(20_000);
        let mut tier_counts = [0usize; 3];
        for p in &payments {
            tier_counts[hs.tier_of(p.from) as usize - 1] += 1;
        }
        let total: usize = tier_counts.iter().sum();
        let share1 = tier_counts[0] as f64 / total as f64;
        let share3 = tier_counts[2] as f64 / total as f64;
        // Tier 1 issues about half the payments; tier 3 about 15%.
        assert!((0.45..0.55).contains(&share1), "{share1}");
        assert!((0.10..0.20).contains(&share3), "{share3}");
    }

    #[test]
    fn uniform_is_roughly_even() {
        let mut w = Workload::uniform(4, 5);
        let mut counts = [0usize; 4];
        for p in w.take(8000) {
            counts[p.from.0 as usize] += 1;
        }
        for c in counts {
            assert!((1500..2500).contains(&c), "{c}");
        }
    }
}
