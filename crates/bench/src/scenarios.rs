//! Shared experiment scenario builders.

use crate::harness::{BenchCluster, BenchConfig, Job};
use crate::workload::Workload;
use std::collections::HashMap;
use teechain::driver::CostModel;
use teechain::routing::ChannelGraph;
use teechain::types::ChannelId;
use teechain_net::topology::{fig3_link, fig3_regions, HubSpoke, Region};
use teechain_net::{LinkSpec, NodeId, MS};

/// Fault-tolerance strategies of Table 1 / Fig. 4 / Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtMode {
    /// Committee chain length 1 (just the primary).
    None,
    /// `k` additional committee members (replication chain length k+1).
    Replicas(usize),
    /// §6.2 persistent storage with monotonic counters, sealing the full
    /// state on every commit (the paper's configuration).
    StableStorage,
    /// §6.2 persistent storage in WAL mode: sealed delta records with
    /// group commit, snapshot + compaction every few commits.
    StableStorageWal,
}

impl FtMode {
    /// Number of backups to attach.
    pub fn backups(&self) -> usize {
        match self {
            FtMode::Replicas(k) => *k,
            _ => 0,
        }
    }

    /// Whether persistent mode is enabled.
    pub fn persist(&self) -> bool {
        matches!(self, FtMode::StableStorage | FtMode::StableStorageWal)
    }

    /// The per-node durability backend this mode implies. Replication
    /// chains are wired explicitly by the scenario (the backup *placement*
    /// matters), so `Replicas` maps to `None` here.
    pub fn durability(&self) -> teechain::DurabilityBackend {
        match self {
            FtMode::StableStorage => teechain::DurabilityBackend::eager_persist(),
            FtMode::StableStorageWal => teechain::DurabilityBackend::persistent(),
            _ => teechain::DurabilityBackend::None,
        }
    }
}

/// Builds the Fig. 3 two-party setup: node 0 = US, node 1 = UK1, plus
/// enough backup nodes for both parties' committee chains, placed in the
/// paper's failure domains (IL, then UK/US).
///
/// Returns (cluster, channel). Node layout: 0 = US (payer), 1 = UK1
/// (payee), 2.. = backups of node 0 then backups of node 1.
pub fn fig3_pair(ft: FtMode, seed: u64) -> (BenchCluster, ChannelId) {
    let backups = ft.backups();
    let n = 2 + 2 * backups;
    let mut cfg = BenchConfig {
        n,
        costs: CostModel::default(),
        default_link: fig3_link(Region::Uk, Region::Uk),
        durability: ft.durability(),
        seed,
        ..BenchConfig::default()
    };
    // Regions: replicas live in different failure domains (IL first, then
    // the other side of the Atlantic), as in §7.2.
    let domains = [Region::Il, Region::Uk, Region::Us];
    let mut regions = vec![Region::Us, Region::Uk];
    for b in 0..backups {
        regions.push(domains[b % domains.len()]); // Backups of node 0.
    }
    for b in 0..backups {
        let alt = [Region::Il, Region::Us, Region::Il];
        regions.push(alt[b % alt.len()]); // Backups of node 1.
    }
    cfg.n = regions.len();
    let mut cluster = BenchCluster::new(cfg);
    for i in 0..regions.len() {
        for j in (i + 1)..regions.len() {
            cluster.sim.set_link(
                NodeId(i as u32),
                NodeId(j as u32),
                fig3_link(regions[i], regions[j]),
            );
        }
    }
    // Committee chains: node 0 → 2 → 3 → ..; node 1 → (2+backups) → ..
    for b in 0..backups {
        let tail = if b == 0 { 0 } else { 2 + b - 1 };
        cluster.attach_backup(tail, 2 + b);
    }
    for b in 0..backups {
        let tail = if b == 0 { 1 } else { 2 + backups + b - 1 };
        cluster.attach_backup(tail, 2 + backups + b);
    }
    let chan = cluster.standard_channel(0, 1, "us-uk", u64::MAX / 4, 1);
    (cluster, chan)
}

/// Builds the §7.3 multi-hop chain over `hops` channels with `backups`
/// committee members per node, on transatlantic links (UK→US→IL→UK…).
/// Node layout: 0..=hops are path nodes; backups follow.
pub fn transatlantic_chain(
    hops: usize,
    backups: usize,
    seed: u64,
) -> (BenchCluster, Vec<ChannelId>) {
    let path_nodes = hops + 1;
    let n = path_nodes * (1 + backups);
    let region_of = |i: usize| match i % 3 {
        0 => Region::Uk,
        1 => Region::Us,
        _ => Region::Il,
    };
    // Path nodes rotate UK→US→IL; each backup lives in a *different*
    // failure domain than its primary (§7.3: "committee members are
    // deployed in different failure domains").
    let mut regions: Vec<Region> = (0..path_nodes).map(region_of).collect();
    for i in 0..path_nodes {
        for b in 0..backups {
            regions.push(region_of(i + 1 + b));
        }
    }
    let cfg = BenchConfig {
        n,
        costs: CostModel::default(),
        default_link: fig3_link(Region::Uk, Region::Us),
        durability: teechain::DurabilityBackend::None,
        seed,
        ..BenchConfig::default()
    };
    let mut cluster = BenchCluster::new(cfg);
    for i in 0..n {
        for j in (i + 1)..n {
            cluster.sim.set_link(
                NodeId(i as u32),
                NodeId(j as u32),
                fig3_link(regions[i], regions[j]),
            );
        }
    }
    // Committee chains: path node i gets backups at path_nodes + i*backups ...
    for i in 0..path_nodes {
        for b in 0..backups {
            let backup = path_nodes + i * backups + b;
            debug_assert!(backup < n);
            let tail = if b == 0 {
                i
            } else {
                path_nodes + i * backups + b - 1
            };
            cluster.attach_backup(tail, backup);
        }
    }
    let mut chans = Vec::new();
    for i in 0..hops {
        chans.push(cluster.standard_channel(i, i + 1, &format!("hop{i}"), u64::MAX / 8, 1));
    }
    (cluster, chans)
}

/// A payment-network deployment: node count, channel edges (possibly with
/// several parallel channels per edge), and a channel graph for routing.
pub struct Network {
    /// The cluster.
    pub cluster: BenchCluster,
    /// Channels per undirected edge.
    pub channels: HashMap<(NodeId, NodeId), Vec<ChannelId>>,
    /// Routing graph.
    pub graph: ChannelGraph,
}

impl Network {
    /// All channels between a and b (canonical order).
    pub fn edge_channels(&self, a: NodeId, b: NodeId) -> &[ChannelId] {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.channels.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Builds a multihop job for a payment along `path` (node ids),
    /// choosing channel `variant` on each edge (temporary channels).
    pub fn multihop_job(&self, path: &[NodeId], amount: u64, variant: usize) -> Option<Job> {
        let hops: Vec<_> = path
            .iter()
            .map(|n| self.cluster.ids[n.0 as usize])
            .collect();
        let mut channels = Vec::new();
        for w in path.windows(2) {
            let chans = self.edge_channels(w[0], w[1]);
            if chans.is_empty() {
                return None;
            }
            channels.push(chans[variant % chans.len()]);
        }
        Some(Job::Multihop {
            paths: vec![(hops, channels)],
            next_path: 0,
            amount,
        })
    }
}

/// Funds the `b` side of an existing channel between `a` and `b` so
/// payments can flow both ways.
pub fn fund_reverse(cluster: &mut BenchCluster, chan: ChannelId, a: NodeId, b: NodeId, value: u64) {
    let nidb = b.0 as usize;
    let dep = cluster.fund_deposit(nidb, value, 1);
    let remote = cluster.ids[a.0 as usize];
    cluster.exec(
        nidb,
        teechain::Command::ApproveDeposit {
            remote,
            outpoint: dep.outpoint,
        },
    );
    cluster.exec(
        nidb,
        teechain::Command::AssociateDeposit {
            id: chan,
            outpoint: dep.outpoint,
        },
    );
}

/// Builds a network over explicit edges, `parallel` channels per edge,
/// each funded on both sides. `backups` committee members per node.
pub fn build_network(
    n: usize,
    edges: &[(NodeId, NodeId)],
    parallel: usize,
    backups: usize,
    link: LinkSpec,
    seed: u64,
) -> Network {
    let total = n * (1 + backups);
    let cfg = BenchConfig {
        n: total,
        costs: CostModel::default(),
        default_link: link,
        durability: teechain::DurabilityBackend::None,
        seed,
        ..BenchConfig::default()
    };
    let mut cluster = BenchCluster::new(cfg);
    // Backups of node i live at n + i*backups + b, on the same default link.
    for i in 0..n {
        for b in 0..backups {
            let backup = n + i * backups + b;
            let tail = if b == 0 { i } else { n + i * backups + b - 1 };
            cluster.attach_backup(tail, backup);
        }
    }
    let mut channels: HashMap<(NodeId, NodeId), Vec<ChannelId>> = HashMap::new();
    for &(a, b) in edges {
        for p in 0..parallel {
            let label = format!("e{}-{}-{}", a.0, b.0, p);
            let chan =
                cluster.standard_channel(a.0 as usize, b.0 as usize, &label, 1_000_000_000, 1);
            // Fund the reverse direction too so payments flow both ways.
            fund_reverse(&mut cluster, chan, a, b, 1_000_000_000);
            channels
                .entry(if a <= b { (a, b) } else { (b, a) })
                .or_default()
                .push(chan);
        }
    }
    let graph = ChannelGraph::from_pairs(edges);
    Network {
        cluster,
        channels,
        graph,
    }
}

/// Which of an edge's parallel (temporary) channels a payment uses.
/// Derived from the value bucket and the endpoints: raw workload values
/// are multiples of `MAX_VALUE/100`, so a bare `value % G` would always
/// pick channel 0 and leave temporary channels idle.
fn channel_variant(p: &crate::workload::Payment) -> usize {
    (p.value / (crate::workload::MAX_VALUE / 100).max(1) + p.from.0 as u64 * 7 + p.to.0 as u64 * 13)
        as usize
}

/// Generates hub-and-spoke multihop jobs per machine from the §7.4
/// skewed workload, with `alternatives` routing paths (1 = static
/// shortest, >1 = dynamic routing).
pub fn hub_spoke_jobs(
    net: &Network,
    hs: &HubSpoke,
    payments: usize,
    alternatives: usize,
    seed: u64,
) -> HashMap<usize, Vec<Job>> {
    let mut wl = Workload::hub_spoke(hs, seed);
    let mut jobs: HashMap<usize, Vec<Job>> = HashMap::new();
    for p in wl.take(payments) {
        let paths_nodes = net.graph.k_paths(p.from, p.to, alternatives);
        if paths_nodes.is_empty() {
            continue;
        }
        let mut paths = Vec::new();
        for path in &paths_nodes {
            let hops: Vec<_> = path.iter().map(|n| net.cluster.ids[n.0 as usize]).collect();
            let mut channels = Vec::new();
            let mut ok = true;
            for w in path.windows(2) {
                let chans = net.edge_channels(w[0], w[1]);
                if chans.is_empty() {
                    ok = false;
                    break;
                }
                // Spread load over parallel (temporary) channels.
                let pick = channel_variant(&p) % chans.len();
                channels.push(chans[pick]);
            }
            if ok {
                paths.push((hops, channels));
            }
        }
        if paths.is_empty() {
            continue;
        }
        jobs.entry(p.from.0 as usize)
            .or_default()
            .push(Job::Multihop {
                paths,
                next_path: 0,
                amount: p.value,
            });
    }
    jobs
}

/// The Fig. 3 region list for reuse in binaries.
pub fn fig3_region_list() -> Vec<Region> {
    fig3_regions()
}

/// A convenient 100 ms symmetric WAN link (§7.4 emulation).
pub fn wan_100ms() -> LinkSpec {
    LinkSpec {
        latency_ns: 50 * MS,
        jitter_frac: 0.06,
        bandwidth_bps: Some(1_000_000_000),
    }
}

/// Builds a large sparse hub-and-spoke network for generated topologies
/// (the `scale` bench bin): channels funded on both sides, **peer
/// directories populated along edges only** — O(edges) instead of the
/// O(n²) full mesh — and no committee backups. Upper-tier edges (both
/// endpoints in tiers 1–2) get `upper_parallel` parallel channels, the
/// Fig. 7 temporary channels that relieve hub lock contention; leaf
/// edges get one.
///
/// Construction is **streamed in phase batches**: a chunk of edges
/// submits one whole wave of independent operations per protocol phase
/// (sessions → settlement addresses → channel opens → deposits →
/// approvals → associations) and the cluster settles once per phase
/// instead of once per operation. The per-op `wait` this replaces cost
/// O(nodes) per settle, making topology construction O(nodes ·
/// channels) — the difference between 100k-node overlays building in
/// seconds and in hours. Chunking bounds in-flight operations (and
/// their event-queue footprint), so memory stays proportional to the
/// chunk, not the overlay.
pub fn build_sparse_network(
    hs: &HubSpoke,
    link: LinkSpec,
    seed: u64,
    upper_parallel: usize,
) -> Network {
    let n = hs.total() as usize;
    let edges = hs.channel_pairs();
    let peer_edges: Vec<(usize, usize)> = edges
        .iter()
        .map(|&(a, b)| (a.0 as usize, b.0 as usize))
        .collect();
    let cfg = BenchConfig {
        n,
        costs: CostModel::default(),
        default_link: link,
        durability: teechain::DurabilityBackend::None,
        seed,
        peers: Some(peer_edges),
        ..BenchConfig::default()
    };
    let mut cluster = BenchCluster::new(cfg);
    let mut channels: HashMap<(NodeId, NodeId), Vec<ChannelId>> = HashMap::new();
    // Keep roughly this many channel instances in flight per phase
    // batch (edges stay whole, so a batch can exceed it by one edge's
    // parallel channels).
    const CHUNK_CHANNELS: usize = 4_096;
    let mut batch: Vec<(NodeId, NodeId, usize)> = Vec::new();
    let mut batched_channels = 0usize;
    let flush = |cluster: &mut BenchCluster,
                 channels: &mut HashMap<(NodeId, NodeId), Vec<ChannelId>>,
                 batch: &mut Vec<(NodeId, NodeId, usize)>| {
        if batch.is_empty() {
            return;
        }
        build_channel_batch(cluster, channels, batch);
        batch.clear();
    };
    for &(a, b) in &edges {
        let parallel = if hs.tier_of(a) <= 2 && hs.tier_of(b) <= 2 {
            upper_parallel.max(1)
        } else {
            1
        };
        batch.push((a, b, parallel));
        batched_channels += parallel;
        if batched_channels >= CHUNK_CHANNELS {
            flush(&mut cluster, &mut channels, &mut batch);
            batched_channels = 0;
        }
    }
    flush(&mut cluster, &mut channels, &mut batch);
    let graph = ChannelGraph::from_pairs(&edges);
    Network {
        cluster,
        channels,
        graph,
    }
}

/// One streamed construction batch: every edge in `batch` gets its
/// sessions, parallel channels and double-sided funding, with exactly
/// one cluster settle per protocol phase (operations within a phase are
/// independent across edges; phases order the per-channel protocol
/// steps exactly as [`BenchCluster::standard_channel`] does serially).
fn build_channel_batch(
    cluster: &mut BenchCluster,
    channels: &mut HashMap<(NodeId, NodeId), Vec<ChannelId>>,
    batch: &[(NodeId, NodeId, usize)],
) {
    use teechain::Command;

    // Phase 1: one session per edge (parallel channels share it).
    let sessions: Vec<teechain::OpId> = batch
        .iter()
        .map(|&(a, b, _)| {
            let remote = cluster.ids[b.0 as usize];
            cluster.submit(a.0 as usize, Command::StartSession { remote })
        })
        .collect();
    cluster.settle();
    for op in sessions {
        cluster
            .claim::<teechain_crypto::schnorr::PublicKey>(teechain::Pending::new(op))
            .expect("session failed");
    }

    // Channel instances of this batch, in deterministic edge order.
    let insts: Vec<(NodeId, NodeId, ChannelId)> = batch
        .iter()
        .flat_map(|&(a, b, parallel)| {
            (0..parallel).map(move |p| {
                let label = format!("e{}-{}-{}", a.0, b.0, p);
                (a, b, ChannelId::from_label(&label))
            })
        })
        .collect();

    // Phase 2: a settlement address per channel (generated in-enclave).
    let addr_ops: Vec<teechain::OpId> = insts
        .iter()
        .map(|&(a, _, _)| cluster.submit(a.0 as usize, Command::NewAddress))
        .collect();
    cluster.settle();
    let addrs: Vec<_> = addr_ops
        .into_iter()
        .map(|op| {
            cluster
                .claim::<teechain_crypto::schnorr::PublicKey>(teechain::Pending::new(op))
                .expect("address failed")
        })
        .collect();

    // Phase 3: open every channel.
    let open_ops: Vec<teechain::OpId> = insts
        .iter()
        .zip(&addrs)
        .map(|(&(a, b, id), &my_settlement)| {
            let remote = cluster.ids[b.0 as usize];
            cluster.submit(
                a.0 as usize,
                Command::NewChannel {
                    id,
                    remote,
                    my_settlement,
                },
            )
        })
        .collect();
    cluster.settle();
    for op in open_ops {
        cluster
            .claim::<ChannelId>(teechain::Pending::new(op))
            .expect("channel open failed");
    }

    // Phase 4: fund a deposit on both sides of every channel.
    let dep_ops: Vec<(usize, teechain::OpId)> = insts
        .iter()
        .flat_map(|&(a, b, _)| [a, b])
        .map(|side| {
            let i = side.0 as usize;
            (i, cluster.submit_deposit(i, 1_000_000_000, 1))
        })
        .collect();
    cluster.settle();
    let deposits: Vec<(usize, teechain::Deposit)> = dep_ops
        .into_iter()
        .map(|(i, op)| {
            (
                i,
                cluster
                    .claim::<teechain::Deposit>(teechain::Pending::new(op))
                    .expect("deposit failed"),
            )
        })
        .collect();

    // Phase 5: each side approves its deposit toward its peer.
    let peers: Vec<NodeId> = insts.iter().flat_map(|&(a, b, _)| [b, a]).collect();
    let approve_ops: Vec<teechain::OpId> = deposits
        .iter()
        .zip(&peers)
        .map(|(&(i, ref dep), &peer)| {
            let remote = cluster.ids[peer.0 as usize];
            cluster.submit(
                i,
                Command::ApproveDeposit {
                    remote,
                    outpoint: dep.outpoint,
                },
            )
        })
        .collect();
    cluster.settle();
    for op in approve_ops {
        cluster
            .claim::<()>(teechain::Pending::new(op))
            .expect("approve failed");
    }

    // Phase 6: associate each deposit with its channel.
    let chans: Vec<ChannelId> = insts.iter().flat_map(|&(_, _, id)| [id, id]).collect();
    let assoc_ops: Vec<teechain::OpId> = deposits
        .iter()
        .zip(&chans)
        .map(|(&(i, ref dep), &id)| {
            cluster.submit(
                i,
                Command::AssociateDeposit {
                    id,
                    outpoint: dep.outpoint,
                },
            )
        })
        .collect();
    cluster.settle();
    for op in assoc_ops {
        cluster
            .claim::<()>(teechain::Pending::new(op))
            .expect("associate failed");
    }

    for &(a, b, id) in &insts {
        channels
            .entry(if a <= b { (a, b) } else { (b, a) })
            .or_default()
            .push(id);
    }
}

/// The static route between two nodes of a hub-and-spoke overlay,
/// computed from the tier structure instead of a graph search (BFS per
/// payment does not scale to 10k-node topologies): climb `from` to a
/// deterministic hub, descend to `to`, then cut any revisit loop (e.g.
/// two leaves sharing a parent route leaf→parent→leaf, not through the
/// hub). Returns `None` when `from == to`.
pub fn hub_spoke_path(hs: &HubSpoke, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    if from == to {
        return None;
    }
    // The transit hub: an endpoint that already is a hub, otherwise a
    // deterministic pick (tier-2 nodes connect to every hub).
    let hub = if hs.tier_of(from) == 1 {
        from
    } else if hs.tier_of(to) == 1 {
        to
    } else {
        NodeId((from.0 + to.0) % hs.tier1)
    };
    let parent_of = |id: NodeId| -> NodeId {
        match hs.tier_of(id) {
            3 => {
                let k = id.0 - hs.tier1 - hs.tier2;
                NodeId(hs.tier1 + (k % hs.tier2))
            }
            2 => hub,
            _ => id,
        }
    };
    // Climb to the hub tier.
    let mut up = vec![from];
    while hs.tier_of(*up.last().expect("nonempty")) != 1 {
        let next = parent_of(*up.last().expect("nonempty"));
        up.push(next);
    }
    let mut down = vec![to];
    while hs.tier_of(*down.last().expect("nonempty")) != 1 {
        let next = parent_of(*down.last().expect("nonempty"));
        down.push(next);
    }
    // Join, shortcutting at the first shared node: whenever the next
    // descending node is already on the path, truncate back to it.
    let mut path = up;
    for &node in down.iter().rev() {
        if let Some(pos) = path.iter().position(|&p| p == node) {
            path.truncate(pos + 1);
        } else {
            path.push(node);
        }
    }
    debug_assert!(path.len() >= 2);
    Some(path)
}

/// Generates per-machine jobs for a generated hub-and-spoke overlay
/// using the §7.4 skewed workload and [`hub_spoke_path`] static routes.
/// Adjacent pairs pay directly; everything else goes multi-hop.
pub fn scale_jobs(
    net: &Network,
    hs: &HubSpoke,
    payments: usize,
    seed: u64,
) -> HashMap<usize, Vec<Job>> {
    let mut wl = Workload::hub_spoke(hs, seed);
    let mut jobs: HashMap<usize, Vec<Job>> = HashMap::new();
    for p in wl.take(payments) {
        let Some(path) = hub_spoke_path(hs, p.from, p.to) else {
            continue;
        };
        let amount = p.value.max(1);
        // Spread load across parallel (temporary) channels.
        let variant = channel_variant(&p);
        let job = if path.len() == 2 {
            let chans = net.edge_channels(path[0], path[1]);
            Job::Direct {
                chan: chans[variant % chans.len()],
                amount,
            }
        } else {
            let Some(job) = net.multihop_job(&path, amount, variant) else {
                continue;
            };
            job
        };
        jobs.entry(p.from.0 as usize).or_default().push(job);
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_spoke_paths_follow_channel_edges() {
        let hs = HubSpoke::scaled(1_000);
        let edges: std::collections::HashSet<(u32, u32)> = hs
            .channel_pairs()
            .iter()
            .map(|(a, b)| (a.0.min(b.0), a.0.max(b.0)))
            .collect();
        let n = hs.total();
        // A deterministic spread of pairs including same-parent leaves,
        // cross-tier and hub-to-hub routes.
        for i in 0..60u32 {
            let from = NodeId((i * 37) % n);
            let to = NodeId((i * 101 + 13) % n);
            let Some(path) = hub_spoke_path(&hs, from, to) else {
                assert_eq!(from, to);
                continue;
            };
            assert_eq!(path[0], from);
            assert_eq!(*path.last().expect("nonempty"), to);
            assert!(path.len() <= 5, "paths stay short: {path:?}");
            // No node repeats.
            let mut seen = std::collections::HashSet::new();
            assert!(path.iter().all(|p| seen.insert(p.0)), "loop in {path:?}");
            // Every hop is a real channel edge.
            for w in path.windows(2) {
                let key = (w[0].0.min(w[1].0), w[0].0.max(w[1].0));
                assert!(edges.contains(&key), "no channel for hop {key:?}");
            }
        }
    }

    #[test]
    fn same_parent_leaves_shortcut_through_parent() {
        let hs = HubSpoke::paper_default();
        // Leaves k and k + tier2 share parent tier1 + k.
        let a = NodeId(hs.tier1 + hs.tier2);
        let b = NodeId(hs.tier1 + hs.tier2 + hs.tier2);
        let path = hub_spoke_path(&hs, a, b).expect("distinct");
        assert_eq!(path, vec![a, NodeId(hs.tier1), b]);
    }
}
