//! `trend`: diffs two `BENCH_*.json` snapshots so a perf trajectory
//! across PRs is one command away.
//!
//! ```text
//! trend <old.json> <new.json> [--threshold <pct>]
//!       [--fail-drop <dotted.key>]... [--fail-rise <dotted.key>]...
//! ```
//!
//! Every numeric leaf of the artifacts' `metrics`, `op_errors` and
//! `latency` sections is compared by its dotted path (arrays such as the
//! per-engine `configs` list are positional and noisy across runs, so
//! they are skipped). Rows moving more than the threshold (default 10%)
//! are flagged; keys present on only one side are reported as added or
//! removed. `scripts/bench_trend.sh` wraps this binary.
//!
//! The `--fail-*` flags turn the diff into a CI gate: exit nonzero when
//! a named key *drops* (`--fail-drop`, e.g. `metrics.events_per_s_seq`)
//! or *rises* (`--fail-rise`, e.g. `metrics.channel_locked_total`) by
//! more than the threshold, or disappears from the new artifact.

use teechain_bench::report::{JsonValue, Table};

/// Collects `metrics`/`op_errors`/`latency` numeric leaves as dotted
/// paths. Arrays are skipped (positional, noisy across runs).
fn flatten(doc: &JsonValue) -> Vec<(String, f64)> {
    fn walk(prefix: &str, v: &JsonValue, out: &mut Vec<(String, f64)>) {
        match v {
            JsonValue::Num(n) if n.is_finite() => out.push((prefix.to_string(), *n)),
            JsonValue::Obj(fields) => {
                for (k, v) in fields {
                    walk(&format!("{prefix}.{k}"), v, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    for section in ["metrics", "op_errors", "latency"] {
        if let Some(v) = doc.get(section) {
            walk(section, v, &mut out);
        }
    }
    out
}

fn load(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    JsonValue::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn arg_val(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_vals(name: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .filter(|w| w[0] == name)
        .map(|w| w[1].clone())
        .collect()
}

fn main() {
    // Positional args, skipping the value slots of known flags (gate
    // keys like `metrics.events_per_s_seq` would otherwise parse as
    // file paths).
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let a = &raw[i];
        if a == "--threshold" || a == "--fail-drop" || a == "--fail-rise" {
            i += 2;
            continue;
        }
        if !a.starts_with("--") {
            paths.push(a.clone());
        }
        i += 1;
    }
    let [old_path, new_path] = &paths[..] else {
        eprintln!(
            "usage: trend <old.json> <new.json> [--threshold <pct>] \
             [--fail-drop <key>]... [--fail-rise <key>]..."
        );
        std::process::exit(2);
    };
    let threshold: f64 = arg_val("--threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let old = flatten(&load(old_path));
    let new = flatten(&load(new_path));

    let mut table = Table::new(
        &format!("Bench trend: {old_path} -> {new_path}"),
        &["Metric", "Old", "New", "Delta"],
    );
    let mut moved = 0usize;
    let fmt = |v: f64| {
        if v.fract() == 0.0 && v.abs() < 9e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.3}")
        }
    };
    for (key, old_v) in &old {
        match new.iter().find(|(k, _)| k == key) {
            Some((_, new_v)) => {
                let delta_pct = if *old_v != 0.0 {
                    (new_v - old_v) / old_v.abs() * 100.0
                } else if *new_v != 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                let flag = if delta_pct.abs() > threshold {
                    " !"
                } else {
                    ""
                };
                if !flag.is_empty() {
                    moved += 1;
                }
                // Unchanged rows stay out of the table: the diff is the
                // point, not a re-print of both files.
                if delta_pct != 0.0 {
                    table.row(&[
                        key.clone(),
                        fmt(*old_v),
                        fmt(*new_v),
                        format!("{delta_pct:+.1}%{flag}"),
                    ]);
                }
            }
            None => {
                table.row(&[key.clone(), fmt(*old_v), "—".into(), "removed".into()]);
            }
        }
    }
    for (key, new_v) in &new {
        if !old.iter().any(|(k, _)| k == key) {
            table.row(&[key.clone(), "—".into(), fmt(*new_v), "added".into()]);
        }
    }
    table.print();
    println!(
        "\n{} of {} shared metrics moved more than {threshold}% (flagged '!').",
        moved,
        old.iter()
            .filter(|(k, _)| new.iter().any(|(nk, _)| nk == k))
            .count()
    );

    // CI gate: named keys may not regress past the threshold.
    let delta_of = |key: &str| -> Option<f64> {
        let old_v = old.iter().find(|(k, _)| k == key).map(|(_, v)| *v)?;
        let new_v = new.iter().find(|(k, _)| k == key).map(|(_, v)| *v)?;
        Some(if old_v != 0.0 {
            (new_v - old_v) / old_v.abs() * 100.0
        } else if new_v != 0.0 {
            f64::INFINITY
        } else {
            0.0
        })
    };
    let mut violations = Vec::new();
    for key in arg_vals("--fail-drop") {
        match delta_of(&key) {
            Some(d) if d < -threshold => {
                violations.push(format!("{key} dropped {:.1}% (limit {threshold}%)", -d));
            }
            Some(_) => {}
            None => violations.push(format!("{key} missing from one side")),
        }
    }
    for key in arg_vals("--fail-rise") {
        match delta_of(&key) {
            Some(d) if d > threshold => {
                violations.push(format!("{key} rose {d:.1}% (limit {threshold}%)"));
            }
            Some(_) => {}
            None => violations.push(format!("{key} missing from one side")),
        }
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        std::process::exit(1);
    }
}
