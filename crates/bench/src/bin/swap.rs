//! Cross-chain atomic swap bench: throughput and per-phase latency of
//! `core::swap` end to end — HTLC lock on the shared alternate chain,
//! in-enclave secret reveal, WAL-committed phase transitions.
//!
//! Swaps run in parallel across independent channel pairs over a WAN
//! link, sequentially per channel (the enclave admits one swap per
//! channel at a time). One responder griefs every round by never
//! funding its HTLC, so the deadline-refund path is part of the
//! measured workload, not just the happy path.
//!
//! Run with `--quick` for a reduced sweep. Emits `BENCH_swap.json`:
//! per-configuration swap throughput, the `swap.latency.*` per-phase
//! histograms (init→locked, locked→terminal, end-to-end) and the
//! `stuck_swaps` metric the CI trend gate pins at zero.

use std::collections::BTreeMap;

use teechain::enclave::Command;
use teechain::ops::Pending;
use teechain::swap::SwapOutcome;
use teechain::types::SwapId;
use teechain::{DurabilityBackend, PersistPolicy};
use teechain_bench::harness::{BenchCluster, BenchConfig};
use teechain_bench::report::{fmt_thousands, BenchJson, Table};
use teechain_bench::scenarios::wan_100ms;
use teechain_net::{Histogram, NodeId};

/// One durability configuration's results.
struct Row {
    redeemed: u64,
    refunded: u64,
    swaps_per_s: f64,
    /// Max swaps still pending on any node at quiescence (must be 0).
    stuck: u64,
}

/// Runs `rounds` swap rounds over `pairs` independent channels: each
/// round submits one swap per channel (the last pair griefed — its
/// responder never funds, so the swap deadline-refunds) and resolves
/// them all before the next.
fn run_config(
    durability: DurabilityBackend,
    pairs: usize,
    rounds: usize,
    seed: u64,
    lat: &mut BTreeMap<String, Histogram>,
) -> Row {
    let mut c = BenchCluster::new(BenchConfig {
        n: pairs * 2,
        durability,
        default_link: wan_100ms(),
        seed,
        ..BenchConfig::default()
    });
    let chans: Vec<_> = (0..pairs)
        .map(|p| c.standard_channel(2 * p, 2 * p + 1, &format!("swap-bench-{p}"), 10_000, 1))
        .collect();
    // The griefing responder: withholds HTLC funding on every round.
    c.sim
        .node_mut(NodeId((pairs * 2 - 1) as u32))
        .host
        .node
        .swap_withhold_funding = true;
    let t0 = c.sim.now_ns();
    let (mut redeemed, mut refunded) = (0u64, 0u64);
    for r in 0..rounds {
        let pends: Vec<Pending<SwapOutcome>> = (0..pairs)
            .map(|p| {
                let op = c.submit(
                    2 * p,
                    Command::Swap {
                        swap: SwapId::from_label(&format!("bench-{seed}-{p}-{r}")),
                        channel: chans[p],
                        amount: 1,
                        alt_amount: 2,
                        // Generous timelock: swaps share one alternate
                        // chain that grows with every concurrent HTLC
                        // mint and claim, and the enclave refuses to
                        // redeem a lock whose refund path is near
                        // maturity — a tight timeout here would measure
                        // refusals, not throughput.
                        timeout_blocks: 144,
                    },
                );
                Pending::new(op)
            })
            .collect();
        for p in pends {
            match c.wait(p) {
                Ok(out) if out.redeemed => redeemed += 1,
                Ok(_) => refunded += 1,
                Err(e) => panic!("swap operation died: {e:?}"),
            }
        }
    }
    c.settle();
    let secs = (c.sim.now_ns() - t0) as f64 / 1e9;
    let snap = c.observe();
    let stuck = snap.gauges.get("swap.pending").copied().unwrap_or(0);
    for i in 0..c.sim.len() {
        for (name, h) in c
            .sim
            .node(NodeId(i as u32))
            .host
            .node
            .swap_phase_latencies()
        {
            lat.entry(name).or_default().merge(&h);
        }
    }
    Row {
        redeemed,
        refunded,
        swaps_per_s: (redeemed + refunded) as f64 / secs,
        stuck,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (pairs, rounds) = if quick { (4, 3) } else { (16, 8) };
    let (p_pairs, p_rounds) = if quick { (2, 2) } else { (4, 4) };
    let mut lat = BTreeMap::new();
    let mut table = Table::new(
        "Cross-chain atomic swaps over a WAN link (one griefed channel per config)",
        &["Configuration", "Redeemed", "Refunded", "Swaps/s"],
    );
    let configs = [
        (
            "No fault tolerance",
            DurabilityBackend::None,
            pairs,
            rounds,
            4111u64,
        ),
        (
            "Stable storage (WAL + group commit)",
            DurabilityBackend::Persist(PersistPolicy { snapshot_every: 64 }),
            p_pairs,
            p_rounds,
            4112u64,
        ),
    ];
    let mut rows = Vec::new();
    for (name, durability, pr, rd, seed) in configs {
        let row = run_config(durability, pr, rd, seed, &mut lat);
        assert_eq!(row.stuck, 0, "{name}: swaps stuck at quiescence");
        assert!(row.redeemed > 0, "{name}: no swap redeemed");
        assert!(row.refunded > 0, "{name}: griefed channel never refunded");
        table.row(&[
            name.into(),
            row.redeemed.to_string(),
            row.refunded.to_string(),
            fmt_thousands(row.swaps_per_s),
        ]);
        rows.push((name, row));
    }
    table.print();

    let mut doc = BenchJson::new("swap");
    let totals = rows.iter().fold((0u64, 0u64, 0u64), |acc, (_, r)| {
        (acc.0 + r.redeemed, acc.1 + r.refunded, acc.2 + r.stuck)
    });
    doc.metric("quick", u64::from(quick))
        .metric("swaps_redeemed", totals.0)
        .metric("swaps_refunded", totals.1)
        .metric("swaps_completed", totals.0 + totals.1)
        .metric("stuck_swaps", totals.2)
        .metric("swaps_per_s_none", rows[0].1.swaps_per_s)
        .metric("swaps_per_s_wal", rows[1].1.swaps_per_s)
        .latency(&lat);
    doc.table(&table).write().expect("bench json");
}
