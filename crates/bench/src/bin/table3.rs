//! Table 3: hub-and-spoke topology — throughput, latency, hops, with
//! static shortest-path and dynamic routing, n = 1 and n = 2 committees.

use teechain_bench::report::{fmt_thousands, BenchJson, Table};
use teechain_bench::scenarios::{build_network, hub_spoke_jobs, wan_100ms};
use teechain_bench::trace_out::TraceSink;
use teechain_net::topology::HubSpoke;
use teechain_net::Histogram;
use teechain_trace::TraceEvent;

type OpErrors = std::collections::BTreeMap<String, u64>;
type Latency = std::collections::BTreeMap<String, Histogram>;

fn run(
    committee_n: usize,
    alternatives: usize,
    payments: usize,
    seed: u64,
    errs: &mut OpErrors,
    lat: &mut Latency,
    trace: Option<&mut Vec<TraceEvent>>,
) -> (f64, f64, f64) {
    let hs = HubSpoke::paper_default();
    let edges = hs.channel_pairs();
    let mut net = build_network(
        hs.total() as usize,
        &edges,
        1,
        committee_n - 1,
        wan_100ms(),
        seed,
    );
    let jobs = hub_spoke_jobs(&net, &hs, payments, alternatives, seed);
    for (i, j) in jobs {
        net.cluster.load(i, j, 16);
    }
    if trace.is_some() {
        net.cluster.set_tracing(true);
    }
    let stats = net.cluster.run(3_000_000_000);
    for (label, n) in net.cluster.op_errors() {
        *errs.entry(label).or_insert(0) += n;
    }
    for (kind, h) in net.cluster.latency_by_kind() {
        lat.entry(kind).or_default().merge(&h);
    }
    if let Some(events) = trace {
        *events = net.cluster.drain_trace();
    }
    (stats.throughput, stats.mean_ms, stats.avg_hops + 1.0)
}

fn arg_val(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let payments = arg_val("--payments")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 600 } else { 3000 });
    let mut table = Table::new(
        "Table 3: hub-and-spoke performance",
        &[
            "Approach",
            "Throughput (tx/s)",
            "Avg latency (ms)",
            "Avg hops",
        ],
    );
    let rows: Vec<(&str, usize, usize)> = if quick {
        vec![("No fault tolerance", 1, 1)]
    } else {
        vec![
            ("No fault tolerance", 1, 1),
            ("One replica", 2, 1),
            ("Dynamic routing (No FT)", 1, 3),
            ("Dynamic routing (One replica)", 2, 3),
        ]
    };
    let sink = TraceSink::from_args();
    let mut trace = Vec::new();
    let mut errs = OpErrors::new();
    let mut lat = Latency::new();
    for (i, (name, n, alts)) in rows.into_iter().enumerate() {
        // --trace-out records the first (no fault tolerance) row.
        let want_trace = sink.active() && i == 0;
        let (tput, lat_ms, hops) = run(
            n,
            alts,
            payments,
            99,
            &mut errs,
            &mut lat,
            if want_trace { Some(&mut trace) } else { None },
        );
        table.row(&[
            name.into(),
            fmt_thousands(tput),
            format!("{lat_ms:.0}"),
            format!("{hops:.1}"),
        ]);
    }
    table.print();
    sink.write(&trace);
    let mut doc = BenchJson::new("table3");
    doc.op_errors(&errs).latency(&lat);
    doc.table(&table).write().expect("bench json");
    println!(
        "\nPaper: no FT 671 tx/s @ 540 ms, 3.2 hops; one replica 210 tx/s @ 720 ms;\n\
         dynamic routing 235 tx/s (no FT) / 54 tx/s (one replica), 5.4 hops."
    );
}
