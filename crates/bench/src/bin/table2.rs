//! Table 2: latency of payment channel operations.
//!
//! Measures, on the Fig. 3 testbed: channel creation (attested handshake +
//! channel open), replica creation (attested handshake + chain
//! assignment), and deposit association/dissociation across committee
//! chain lengths. LN channel creation is six Bitcoin blocks.

use teechain::enclave::Command;
use teechain::ops::OpOutput;
use teechain::types::ChannelId;
use teechain_bench::harness::{BenchCluster, BenchConfig};
use teechain_bench::report::{BenchJson, Table};
use teechain_bench::scenarios::{fig3_pair, FtMode};
use teechain_bench::trace_out::TraceSink;
use teechain_net::topology::{fig3_link, Region};
use teechain_net::NodeId;

/// Measures one operation's simulated latency via a closure that drives
/// the cluster and returns (start, end can be read from sim clock).
fn timed(cluster: &mut BenchCluster, f: impl FnOnce(&mut BenchCluster)) -> f64 {
    let start = cluster.sim.now_ns();
    f(cluster);
    (cluster.sim.now_ns() - start) as f64 / 1e6
}

fn fresh_pair() -> BenchCluster {
    let cfg = BenchConfig {
        n: 2,
        default_link: fig3_link(Region::Us, Region::Uk),
        ..BenchConfig::default()
    };
    BenchCluster::new(cfg)
}

fn main() {
    let mut table = Table::new(
        "Table 2: payment channel operations — latency (ms)",
        &["Operation", "Latency (ms)"],
    );
    table.row(&[
        "LN channel creation (6 Bitcoin blocks)".into(),
        format!("{:.0}", teechain_baselines::ln::perf::channel_creation_ms()),
    ]);

    // Teechain channel creation: attested session + channel open. This
    // is the run --trace-out records (handshake, open and deposit ecalls
    // make a compact, readable flight recording).
    let sink = TraceSink::from_args();
    let mut c = fresh_pair();
    if sink.active() {
        c.set_tracing(true);
    }
    let ms = timed(&mut c, |c| {
        c.connect(0, 1);
        let remote = c.ids[1];
        let addr = match c.exec(0, Command::NewAddress) {
            OpOutput::Address(pk) => pk,
            other => panic!("unexpected output {other:?}"),
        };
        c.exec(
            0,
            Command::NewChannel {
                id: ChannelId::from_label("t2"),
                remote,
                my_settlement: addr,
            },
        );
    });
    table.row(&["Teechain channel creation".into(), format!("{ms:.0}")]);
    sink.write(&c.drain_trace());

    // Outsourced channel creation: the client additionally attests the
    // remote TEE it outsources to (one extra attested handshake from IL).
    let cfg = BenchConfig {
        n: 3,
        default_link: fig3_link(Region::Us, Region::Uk),
        ..BenchConfig::default()
    };
    let mut c = BenchCluster::new(cfg);
    c.sim
        .set_link(NodeId(0), NodeId(2), fig3_link(Region::Us, Region::Il));
    c.sim
        .set_link(NodeId(1), NodeId(2), fig3_link(Region::Uk, Region::Il));
    let ms = timed(&mut c, |c| {
        // The IL client (node 2) attests its outsourced TEE (node 0)...
        c.connect(2, 0);
        // ...which then opens the channel to UK1 as usual.
        let _ = c.standard_channel(0, 1, "outsourced", 1000, 1);
    });
    table.row(&[
        "Teechain outsourced channel creation".into(),
        format!("{ms:.0}"),
    ]);

    // Replica creation: attested session + chain assignment.
    let mut c = fresh_pair();
    let ms = timed(&mut c, |c| c.attach_backup(0, 1));
    table.row(&["Teechain replica creation".into(), format!("{ms:.0}")]);

    // Associate/dissociate deposit per committee chain length.
    for (label, ft) in [
        ("Associate/dissociate, no fault tolerance", FtMode::None),
        ("Associate/dissociate, one backup (IL)", FtMode::Replicas(1)),
        (
            "Associate/dissociate, two backups (IL & UK)",
            FtMode::Replicas(2),
        ),
        (
            "Associate/dissociate, three backups (IL, US & UK)",
            FtMode::Replicas(3),
        ),
    ] {
        let (mut c, chan) = fig3_pair(ft, 77);
        // Fund a spare deposit, then time the associate round trip.
        let dep = c.fund_deposit(0, 500, 1);
        let remote = c.ids[1];
        c.exec(
            0,
            Command::ApproveDeposit {
                remote,
                outpoint: dep.outpoint,
            },
        );
        let ms = timed(&mut c, |c| {
            c.exec(
                0,
                Command::AssociateDeposit {
                    id: chan,
                    outpoint: dep.outpoint,
                },
            );
        });
        table.row(&[label.into(), format!("{ms:.0}")]);
    }
    table.print();
    let mut doc = BenchJson::new("table2");
    doc.table(&table).write().expect("bench json");
    println!(
        "\nPaper: LN 3,600,000; creation 2,810 (4,322 outsourced); replica 2,765;\n\
         associate/dissociate 101 / 289 / 422 / 677; stable storage 302."
    );
}
