//! `scale`: multi-core engine scaling on a generated 10k+-node
//! hub-and-spoke WAN overlay — the Fig. 7-style workload grown far past
//! the paper's 30-machine testbed, used to measure the sharded engine
//! against the sequential baseline.
//!
//! Methodology: the topology is built **once** on the sequential engine
//! (setup is inherently serial harness work: handshakes, deposits,
//! channel funding), then every engine configuration is measured on the
//! same cluster by converting the quiescent simulation
//! (`AnyEngine::into_kind`) and loading an identical job mix. Because
//! successive configurations start from the balances the previous run
//! left behind, the comparison metric is wall-clock per *event
//! processed* (the job mix and therefore the event volume is the same
//! each time, within retry noise), alongside raw wall-clock.
//!
//! Real speedup needs real cores: `host_parallelism` is recorded in the
//! JSON artifact so a single-core CI runner's numbers are not mistaken
//! for a scaling regression.

use std::time::Instant;
use teechain_bench::report::{fmt_thousands, BenchJson, JsonValue, Table};
use teechain_bench::scenarios::{build_sparse_network, scale_jobs, wan_100ms};
use teechain_bench::trace_out::TraceSink;
use teechain_net::topology::HubSpoke;
use teechain_net::{EngineKind, Histogram};

fn arg_val(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

struct ConfigRun {
    label: String,
    wall_s: f64,
    events: u64,
    completed: u64,
    queued: u64,
    batches: u64,
    batched_payments: u64,
    max_batch: u64,
    batch_hist: [u64; 16],
    rerouted: u64,
    queue_depth_hwm: u64,
    defer_depth_hwm: u64,
    defer_age_max_ns: u64,
    sim_throughput: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let nodes: u32 = arg_val("--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 600 } else { 10_032 });
    let payments: usize = arg_val("--payments")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2_000 } else { 20_000 });
    let shard_counts: Vec<usize> = arg_val("--shards")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| if quick { vec![2, 4] } else { vec![1, 2, 4, 8] });
    // Operating point: the in-enclave admission layer (per-channel op
    // queues + lock-aware selection over parallel temporary channels) is
    // what converts temp-channel and window headroom into throughput.
    // Before it, G=8/W=64 only amplified the ChannelLocked retry storm;
    // now the same sweep is storm-free, so the defaults sit at the
    // paper's Fig. 7 lever settings rather than the minimum.
    let temp_channels: usize = arg_val("--temp-channels")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let window: usize = arg_val("--window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let seed = 77;
    let parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let hs = HubSpoke::scaled(nodes);
    let edges = hs.channel_pairs();
    println!(
        "scale: {} nodes (tiers {}/{}/{}), {} edges (G={} on upper tiers), {} payments, \
         host parallelism {}",
        nodes,
        hs.tier1,
        hs.tier2,
        hs.tier3,
        edges.len(),
        temp_channels,
        payments,
        parallelism
    );

    let t0 = Instant::now();
    let mut net = build_sparse_network(&hs, wan_100ms(), seed, temp_channels);
    let setup_s = t0.elapsed().as_secs_f64();
    println!("setup (sequential engine): {setup_s:.1}s");

    let jobs = scale_jobs(&net, &hs, payments, seed);

    let mut kinds = vec![("seq".to_string(), EngineKind::Seq)];
    for &s in &shard_counts {
        kinds.push((format!("sharded:{s}"), EngineKind::Sharded { shards: s }));
    }
    let sink = TraceSink::from_args();
    let mut trace = Vec::new();
    let mut lat: std::collections::BTreeMap<String, Histogram> = Default::default();
    let mut runs: Vec<ConfigRun> = Vec::new();
    let mut op_errors_all: Vec<std::collections::BTreeMap<String, u64>> = Vec::new();
    let last_kind = kinds.len() - 1;
    for (k, (label, kind)) in kinds.into_iter().enumerate() {
        net.cluster.set_engine(kind);
        for (i, j) in jobs.clone() {
            net.cluster.load(i, j, window);
        }
        // --trace-out records the last (most-sharded) configuration:
        // the merged stream is identical across shard counts, so any
        // one run is representative — the last keeps setup noise out.
        let want_trace = sink.active() && k == last_kind;
        if want_trace {
            net.cluster.set_tracing(true);
        }
        let ev0 = net.cluster.sim.stats().events;
        let t = Instant::now();
        let stats = net.cluster.run(2_000_000_000);
        op_errors_all.push(net.cluster.op_errors());
        for (kind_label, h) in net.cluster.latency_by_kind() {
            lat.entry(kind_label).or_default().merge(&h);
        }
        if want_trace {
            trace = net.cluster.drain_trace();
        }
        let wall_s = t.elapsed().as_secs_f64();
        let events = net.cluster.sim.stats().events - ev0;
        println!(
            "{label:>10}: {wall_s:>6.2}s wall, {events} events, {} completed, {} queued, \
             {} rerouted, {} batches (max {}), {:.0}ms mean / {:.0}ms p99, {:.1}s sim span, \
             {} ev/s",
            stats.completed,
            stats.queued,
            stats.rerouted,
            stats.batches,
            stats.max_batch,
            stats.mean_ms,
            stats.p99_ms,
            stats.duration_ns as f64 / 1e9,
            fmt_thousands(events as f64 / wall_s.max(1e-9)),
        );
        runs.push(ConfigRun {
            label,
            wall_s,
            events,
            completed: stats.completed,
            queued: stats.queued,
            batches: stats.batches,
            batched_payments: stats.batched_payments,
            max_batch: stats.max_batch,
            batch_hist: stats.batch_hist,
            rerouted: stats.rerouted,
            queue_depth_hwm: stats.queue_depth_hwm,
            defer_depth_hwm: stats.defer_depth_hwm,
            defer_age_max_ns: stats.defer_age_max_ns,
            sim_throughput: stats.throughput,
        });
    }

    let seq_ev_per_s = runs[0].events as f64 / runs[0].wall_s.max(1e-9);
    // Honesty: on a single-CPU host the sharded/seq wall-clock ratio
    // measures queue overhead, not parallel speedup — name it (and its
    // JSON keys) accordingly so CI artifacts from 1-core runners are
    // never mistaken for scaling claims.
    let multi_core = parallelism > 1;
    let ratio_header = if multi_core {
        "Speedup vs seq"
    } else {
        "Wall ratio vs seq (1 CPU)"
    };
    let ratio_key = if multi_core {
        "speedup_vs_seq"
    } else {
        "wall_ratio_vs_seq"
    };
    let mut table = Table::new(
        &format!("Scale: {nodes}-node hub-and-spoke, {payments} payments"),
        &[
            "Engine",
            "Wall (s)",
            "Events",
            "Events/s (wall)",
            ratio_header,
            "Sim tx/s",
        ],
    );
    let mut doc = BenchJson::new("scale");
    doc.metric("nodes", nodes as u64)
        .metric("edges", edges.len())
        .metric("temp_channels_upper", temp_channels)
        .metric("window", window)
        .metric("payments", payments)
        .metric("setup_s", setup_s)
        .metric("host_parallelism", parallelism)
        .metric("quick", JsonValue::Bool(quick));
    let mut configs = Vec::new();
    let mut best_speedup = 0.0f64;
    for run in &runs {
        let ev_per_s = run.events as f64 / run.wall_s.max(1e-9);
        let speedup = ev_per_s / seq_ev_per_s.max(1e-9);
        best_speedup = best_speedup.max(if run.label == "seq" { 0.0 } else { speedup });
        table.row(&[
            run.label.clone(),
            format!("{:.2}", run.wall_s),
            run.events.to_string(),
            fmt_thousands(ev_per_s),
            format!("{speedup:.2}x"),
            fmt_thousands(run.sim_throughput),
        ]);
        configs.push(JsonValue::Obj(vec![
            ("engine".into(), run.label.as_str().into()),
            ("host_parallelism".into(), parallelism.into()),
            ("wall_s".into(), run.wall_s.into()),
            ("events".into(), run.events.into()),
            ("events_per_s".into(), ev_per_s.into()),
            (ratio_key.into(), speedup.into()),
            ("completed".into(), run.completed.into()),
            ("queued".into(), run.queued.into()),
            ("batches".into(), run.batches.into()),
            ("batched_payments".into(), run.batched_payments.into()),
            ("max_batch".into(), run.max_batch.into()),
            ("rerouted".into(), run.rerouted.into()),
            ("queue_depth_hwm".into(), run.queue_depth_hwm.into()),
            ("defer_depth_hwm".into(), run.defer_depth_hwm.into()),
            ("defer_age_max_ns".into(), run.defer_age_max_ns.into()),
            (
                "batch_hist".into(),
                JsonValue::Arr(run.batch_hist.iter().map(|&n| n.into()).collect()),
            ),
            ("sim_throughput".into(), run.sim_throughput.into()),
        ]));
        if run.label != "seq" && multi_core {
            doc.metric(&format!("speedup_at_{}", &run.label), speedup);
        }
    }
    table.print();
    // Admission pressure summary (enclave-lifetime high-watermark gauges,
    // so the max across configs is the whole measurement's peak).
    let queue_depth_hwm = runs.iter().map(|r| r.queue_depth_hwm).max().unwrap_or(0);
    let defer_depth_hwm = runs.iter().map(|r| r.defer_depth_hwm).max().unwrap_or(0);
    let defer_age_max_ns = runs.iter().map(|r| r.defer_age_max_ns).max().unwrap_or(0);
    println!(
        "\nadmission pressure: queue depth hwm {queue_depth_hwm}, defer depth hwm \
         {defer_depth_hwm}, oldest deferred message {:.0}ms",
        defer_age_max_ns as f64 / 1e6
    );
    for errs in &op_errors_all {
        doc.op_errors(errs);
    }
    // Aggregates across every engine configuration; CI smoke asserts the
    // admission queues keep `channel_locked_total` near zero.
    let locked_total: u64 = op_errors_all
        .iter()
        .flat_map(|m| m.iter())
        .filter(|(k, _)| k.contains("ChannelLocked"))
        .map(|(_, v)| *v)
        .sum();
    doc.metric("channel_locked_total", locked_total)
        .metric("queued_total", runs.iter().map(|r| r.queued).sum::<u64>())
        .metric(
            "rerouted_total",
            runs.iter().map(|r| r.rerouted).sum::<u64>(),
        )
        .metric("batches_total", runs.iter().map(|r| r.batches).sum::<u64>())
        .metric(
            "batched_payments_total",
            runs.iter().map(|r| r.batched_payments).sum::<u64>(),
        )
        .metric(
            "max_batch",
            runs.iter().map(|r| r.max_batch).max().unwrap_or(0),
        )
        .metric("queue_depth_hwm", queue_depth_hwm)
        .metric("defer_depth_hwm", defer_depth_hwm)
        .metric("defer_age_max_ns", defer_age_max_ns);
    // Trend-gate anchors: flat keys CI can diff against the committed
    // artifact without digging through the positional `configs` array.
    let best_ev_per_s = runs
        .iter()
        .map(|r| r.events as f64 / r.wall_s.max(1e-9))
        .fold(0.0f64, f64::max);
    doc.metric("events_per_s_seq", seq_ev_per_s)
        .metric("events_per_s_best", best_ev_per_s);
    if multi_core {
        doc.metric("best_speedup_vs_seq", best_speedup);
    } else {
        doc.metric("best_wall_ratio_vs_seq", best_speedup);
    }
    doc.metric("configs", JsonValue::Arr(configs));
    doc.latency(&lat);
    doc.table(&table);
    sink.write(&trace);

    // Per-overlay summary rows, merged across invocations: the
    // committed artifact keeps one row per node count (e.g. the 100k
    // overlay regenerated rarely, the quick 600 refreshed by CI)
    // instead of each run clobbering the others' results.
    let completed_total: u64 = runs.iter().map(|r| r.completed).sum();
    let overlay_row = JsonValue::Obj(vec![
        ("nodes".into(), (nodes as u64).into()),
        ("edges".into(), edges.len().into()),
        ("temp_channels_upper".into(), temp_channels.into()),
        ("payments".into(), payments.into()),
        ("setup_s".into(), setup_s.into()),
        ("host_parallelism".into(), parallelism.into()),
        ("events_per_s_seq".into(), seq_ev_per_s.into()),
        ("events_per_s_best".into(), best_ev_per_s.into()),
        (format!("best_{ratio_key}"), best_speedup.into()),
        ("completed_total".into(), completed_total.into()),
        ("channel_locked_total".into(), locked_total.into()),
    ]);
    let prior = std::fs::read_to_string(doc.path())
        .ok()
        .and_then(|t| JsonValue::parse(&t).ok());
    let mut overlays: Vec<(String, JsonValue)> = prior
        .as_ref()
        .and_then(|d| d.get("metrics"))
        .and_then(|m| m.get("overlays"))
        .and_then(|o| match o {
            JsonValue::Obj(fields) => Some(fields.clone()),
            _ => None,
        })
        .unwrap_or_default();
    let row_key = format!("n{nodes}");
    overlays.retain(|(k, _)| k != &row_key);
    overlays.push((row_key, overlay_row));
    overlays.sort_by_key(|(k, _)| k[1..].parse::<u64>().unwrap_or(0));
    doc.metric("overlays", JsonValue::Obj(overlays.clone()));

    if std::env::args().any(|a| a == "--row-only") {
        // Record this run *only* as its overlay row, leaving the rest
        // of the committed artifact (the CI-regenerable quick baseline)
        // untouched — this is how the 100k-node row lands without
        // replacing the trend-gate anchors.
        let prior = prior.expect("--row-only needs an existing BENCH_scale.json");
        let JsonValue::Obj(mut top) = prior else {
            panic!("BENCH_scale.json is not an object");
        };
        for (k, v) in &mut top {
            if k == "metrics" {
                let JsonValue::Obj(metrics) = v else { continue };
                metrics.retain(|(mk, _)| mk != "overlays");
                metrics.push(("overlays".into(), JsonValue::Obj(overlays.clone())));
            }
        }
        std::fs::write(doc.path(), JsonValue::Obj(top).render())
            .expect("write BENCH_scale.json (--row-only)");
        println!("wrote ./BENCH_scale.json (overlay row n{nodes} only)");
    } else {
        doc.write().expect("write BENCH_scale.json");
    }
    if parallelism == 1 {
        println!(
            "note: host exposes a single CPU; sharded wall-clock wins here come \
             only from the cheaper per-event queue, not from parallelism."
        );
    }
}
