//! Fig. 4 + §7.3: multi-hop payment latency and throughput vs path length.
//!
//! Sends sequential multi-hop payments over transatlantic chains of 2–11
//! hops with committee chains of length 1–3 per node, plus the LN model.

use teechain_bench::harness::Job;
use teechain_bench::report::{BenchJson, Table};
use teechain_bench::scenarios::transatlantic_chain;
use teechain_bench::trace_out::TraceSink;
use teechain_net::Histogram;
use teechain_trace::TraceEvent;

type OpErrors = std::collections::BTreeMap<String, u64>;
type Latency = std::collections::BTreeMap<String, Histogram>;

fn teechain_latency(
    hops: usize,
    backups: usize,
    probes: usize,
    errs: &mut OpErrors,
    lat: &mut Latency,
    trace: Option<&mut Vec<TraceEvent>>,
) -> f64 {
    let (mut cluster, chans) = transatlantic_chain(hops, backups, 55 + hops as u64);
    if trace.is_some() {
        cluster.set_tracing(true);
    }
    let hops_ids: Vec<_> = (0..=hops).map(|i| cluster.ids[i]).collect();
    let jobs: Vec<Job> = (0..probes)
        .map(|_| Job::Multihop {
            paths: vec![(hops_ids.clone(), chans.clone())],
            next_path: 0,
            amount: 1,
        })
        .collect();
    cluster.load(0, jobs, 1); // Sequential: multi-hop is not pipelined.
    let stats = cluster.run(20_000_000);
    for (label, n) in cluster.op_errors() {
        *errs.entry(label).or_insert(0) += n;
    }
    for (kind, h) in cluster.latency_by_kind() {
        lat.entry(kind).or_default().merge(&h);
    }
    if let Some(events) = trace {
        *events = cluster.drain_trace();
    }
    stats.mean_ms
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let hop_counts: Vec<usize> = if quick {
        vec![2, 5, 11]
    } else {
        vec![2, 3, 4, 5, 6, 7, 8, 9, 10, 11]
    };
    let probes = if quick { 3 } else { 10 };
    let sink = TraceSink::from_args();
    let mut trace = Vec::new();
    let mut errs = OpErrors::new();
    let mut lat = Latency::new();
    let mut table = Table::new(
        "Fig. 4: multi-hop payment latency (seconds) vs hops",
        &["Hops", "LN", "No FT", "1 replica", "2 replicas"],
    );
    let mut last_lat = (0.0, 0.0); // (no-FT, 1-replica) at max hops for §7.3.
    for &hops in &hop_counts {
        // LN: measured slope of Fig. 4 is ≈0.63 s/hop (lnd HTLC commit +
        // revoke per hop on the transatlantic path).
        let ln_s = hops as f64 * 0.63;
        // The no-FT run at the shortest path is what --trace-out records
        // (a clean multi-hop causal chain without replication noise).
        let want_trace = sink.active() && hops == hop_counts[0];
        let no_ft = teechain_latency(
            hops,
            0,
            probes,
            &mut errs,
            &mut lat,
            if want_trace { Some(&mut trace) } else { None },
        ) / 1000.0;
        let one_rep = teechain_latency(hops, 1, probes, &mut errs, &mut lat, None) / 1000.0;
        let two_rep = if quick {
            f64::NAN
        } else {
            teechain_latency(hops, 2, probes, &mut errs, &mut lat, None) / 1000.0
        };
        last_lat = (no_ft, one_rep);
        table.row(&[
            hops.to_string(),
            format!("{ln_s:.1}"),
            format!("{no_ft:.1}"),
            format!("{one_rep:.1}"),
            if two_rep.is_nan() {
                "-".into()
            } else {
                format!("{two_rep:.1}")
            },
        ]);
    }
    table.print();
    // §7.3: throughput = batch size / latency (no pipelining); the paper
    // quotes the two-replica configuration.
    let _ = last_lat;
    let max_hops = *hop_counts.last().unwrap();
    let reps = if quick { 1 } else { 2 };
    let mut t2 = Table::new(
        "§7.3: multi-hop throughput (batch / latency, 2 replicas)",
        &["Hops", "Teechain (batch 135k)", "LN (batch 1k)"],
    );
    for hops in [2usize, max_hops] {
        let lat_s = teechain_latency(hops, reps, probes, &mut errs, &mut lat, None) / 1000.0;
        t2.row(&[
            hops.to_string(),
            format!("{:.0} tx/s", 135_000.0 / lat_s.max(1e-9)),
            format!("{:.0} tx/s", 1_000.0 / (hops as f64 * 0.63)),
        ]);
    }
    t2.print();
    sink.write(&trace);
    let mut doc = BenchJson::new("fig4");
    doc.op_errors(&errs).latency(&lat);
    doc.table(&table).table(&t2).write().expect("bench json");
    println!(
        "\nPaper: LN 1 s @ 2 hops → 7 s @ 11 hops; Teechain no-FT ≈2× LN;\n\
         1 replica 5 s @ 2 hops → 23 s @ 11 hops. Throughput: Teechain 14,062 → 3,649 tx/s;\n\
         LN 862 → 139 tx/s (16–26×)."
    );
}
