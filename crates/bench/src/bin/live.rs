//! Live payment throughput and latency on real hardware.
//!
//! Every other bench bin measures the protocol inside the discrete-event
//! simulator under the *calibrated* CPU cost model. This one runs it for
//! real: `LiveCluster` puts each node on its own OS thread with a
//! wall-clock timer heap, and payments cross an actual transport — the
//! in-process channel mesh and localhost TCP sockets — so the numbers
//! are whatever this machine's hardware gives, not Table 1's SGX
//! calibration. The paper's own testbed measurements (Fig. 3 hardware)
//! are the conceptual counterpart.
//!
//! Per backend, two phases on one long-lived channel:
//!
//! * **latency** — window 1, sequential payments: each completion is a
//!   full submit → enclave → wire → ack round trip.
//! * **throughput** — a sliding window of in-flight payments (the §7.4
//!   `W` mechanic), sustained until the target count completes.
//!
//! Latency is measured from the completion timestamps on the cluster
//! clock (submit time to terminal outcome), and every typed failure is
//! counted per [`OpError`](teechain::ops::OpError) label into the
//! standard `op_errors` section of `BENCH_live.json`. Run with `--quick`
//! for the CI-sized sweep.
//!
//! The **nodes axis**: the reactor backend is additionally swept at 10,
//! 100 and 1,000 live nodes — n/2 disjoint payment pairs driven
//! concurrently — which the thread-per-node backends cannot reach (2,000
//! OS threads for the 1,000-node point; the reactor runtime spends a
//! constant few, recorded as `reactor_nodes{n}_runtime_threads`).

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;
use teechain::live::{LiveCluster, LiveConfig};
use teechain::types::ChannelId;
use teechain_bench::report::{fmt_thousands, BenchJson, Table};
use teechain_bench::trace_out::TraceSink;
use teechain_net::Histogram;

/// Results of one measured phase.
struct Phase {
    throughput: f64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    completed: u64,
    latencies: Histogram,
    op_errors: BTreeMap<String, u64>,
}

/// Drives `total` unit payments over `chan` from node 0, keeping up to
/// `window` in flight, draining the published completion stream — so
/// the cluster's memory stays proportional to the window, not to how
/// many payments the measurement has pushed through.
fn run_payments(net: &LiveCluster, chan: ChannelId, total: usize, window: usize) -> Phase {
    let mut issue_ns: HashMap<u64, u64> = HashMap::new();
    let mut submitted = 0usize;
    let mut resolved = 0usize;
    let mut completed = 0u64;
    let mut first_issue = u64::MAX;
    let mut last_done = 0u64;
    let mut latencies = Histogram::new();
    let mut op_errors: BTreeMap<String, u64> = BTreeMap::new();
    while resolved < total {
        while issue_ns.len() < window && submitted < total {
            let t = net.now_ns();
            let p = net.submit_pay(0, chan, 1);
            first_issue = first_issue.min(t);
            issue_ns.insert(p.op.seq, t);
            submitted += 1;
        }
        let fresh = net.take_completions(0);
        if fresh.is_empty() {
            std::thread::sleep(Duration::from_micros(50));
            continue;
        }
        for c in fresh {
            let Some(t0) = issue_ns.remove(&c.op.seq) else {
                continue; // Setup noise, not one of ours.
            };
            resolved += 1;
            last_done = last_done.max(c.time_ns);
            match c.outcome {
                Ok(_) => {
                    completed += 1;
                    latencies.record(c.time_ns.saturating_sub(t0));
                }
                Err(e) => {
                    *op_errors.entry(e.label()).or_insert(0) += 1;
                }
            }
        }
    }
    let duration_ns = last_done.saturating_sub(first_issue).max(1);
    Phase {
        throughput: completed as f64 / (duration_ns as f64 / 1e9),
        mean_ms: latencies.mean() / 1e6,
        p50_ms: latencies.p50() as f64 / 1e6,
        p99_ms: latencies.p99() as f64 / 1e6,
        completed,
        latencies,
        op_errors,
    }
}

/// Drives `total_each` unit payments over every pair in `pairs`
/// concurrently, keeping up to `window_each` in flight per pair — the
/// nodes-axis workload: aggregate throughput across n/2 disjoint
/// channels instead of one hot channel.
fn run_mesh_payments(
    net: &LiveCluster,
    pairs: &[(usize, ChannelId)],
    total_each: usize,
    window_each: usize,
) -> Phase {
    let mut issue_ns: HashMap<(usize, u64), u64> = HashMap::new();
    let mut submitted = vec![0usize; pairs.len()];
    let mut inflight = vec![0usize; pairs.len()];
    let mut resolved = 0usize;
    let total = total_each * pairs.len();
    let mut completed = 0u64;
    let mut first_issue = u64::MAX;
    let mut last_done = 0u64;
    let mut latencies = Histogram::new();
    let mut op_errors: BTreeMap<String, u64> = BTreeMap::new();
    while resolved < total {
        for (k, &(payer, chan)) in pairs.iter().enumerate() {
            while inflight[k] < window_each && submitted[k] < total_each {
                let t = net.now_ns();
                let p = net.submit_pay(payer, chan, 1);
                first_issue = first_issue.min(t);
                issue_ns.insert((payer, p.op.seq), t);
                submitted[k] += 1;
                inflight[k] += 1;
            }
        }
        let mut progressed = false;
        for (k, &(payer, _)) in pairs.iter().enumerate() {
            for c in net.take_completions(payer) {
                let Some(t0) = issue_ns.remove(&(payer, c.op.seq)) else {
                    continue; // Setup noise, not one of ours.
                };
                inflight[k] -= 1;
                resolved += 1;
                progressed = true;
                last_done = last_done.max(c.time_ns);
                match c.outcome {
                    Ok(_) => {
                        completed += 1;
                        latencies.record(c.time_ns.saturating_sub(t0));
                    }
                    Err(e) => {
                        *op_errors.entry(e.label()).or_insert(0) += 1;
                    }
                }
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    let duration_ns = last_done.saturating_sub(first_issue).max(1);
    Phase {
        throughput: completed as f64 / (duration_ns as f64 / 1e9),
        mean_ms: latencies.mean() / 1e6,
        p50_ms: latencies.p50() as f64 / 1e6,
        p99_ms: latencies.p99() as f64 / 1e6,
        completed,
        latencies,
        op_errors,
    }
}

/// One nodes-axis sweep point: an `n`-node reactor cluster, one funded
/// channel per (2k, 2k+1) pair, aggregate windowed payments.
fn measure_reactor_nodes(n: usize, aggregate_total: usize, table: &mut Table, doc: &mut BenchJson) {
    let net = LiveCluster::over_reactor(LiveConfig {
        n,
        seed: 0x11FE,
        ..LiveConfig::default()
    })
    .expect("bind reactor listener");
    let pairs: Vec<(usize, ChannelId)> = (0..n / 2)
        .map(|k| {
            let chan =
                net.standard_channel(2 * k, 2 * k + 1, &format!("sweep-{k}"), u64::MAX / 4, 1);
            (2 * k, chan)
        })
        .collect();
    let total_each = (aggregate_total / pairs.len()).max(2);
    let window_each = 4usize;
    let tp = run_mesh_payments(&net, &pairs, total_each, window_each);
    let name = format!("reactor/{n}n");
    table.row(&[
        name,
        fmt_thousands(tp.throughput),
        format!("{:.3}", tp.mean_ms),
        format!("{:.3}", tp.p50_ms),
        format!("{:.3}", tp.p99_ms),
        tp.completed.to_string(),
        (window_each * pairs.len()).to_string(),
    ]);
    doc.metric(&format!("reactor_nodes{n}_throughput_tx_s"), tp.throughput)
        .metric(&format!("reactor_nodes{n}_latency_mean_ms"), tp.mean_ms)
        .metric(&format!("reactor_nodes{n}_latency_p99_ms"), tp.p99_ms)
        .metric(&format!("reactor_nodes{n}_completed"), tp.completed)
        .metric(
            &format!("reactor_nodes{n}_runtime_threads"),
            net.runtime_threads(),
        )
        .latency_hist(&format!("payment_reactor_nodes{n}_windowed"), &tp.latencies)
        .op_errors(&tp.op_errors);
    assert_eq!(
        tp.completed,
        (total_each * pairs.len()) as u64,
        "reactor/{n}n: every live payment must complete successfully"
    );
    net.shutdown();
}

fn measure(
    name: &str,
    net: &LiveCluster,
    lat_payments: usize,
    tp_payments: usize,
    window: usize,
    table: &mut Table,
    doc: &mut BenchJson,
) {
    let chan = net.standard_channel(0, 1, &format!("live-{name}"), u64::MAX / 4, 1);
    let lat = run_payments(net, chan, lat_payments, 1);
    let tp = run_payments(net, chan, tp_payments, window);
    table.row(&[
        name.into(),
        fmt_thousands(tp.throughput),
        format!("{:.3}", lat.mean_ms),
        format!("{:.3}", lat.p50_ms),
        format!("{:.3}", lat.p99_ms),
        tp.completed.to_string(),
        window.to_string(),
    ]);
    doc.metric(&format!("{name}_throughput_tx_s"), tp.throughput)
        .metric(&format!("{name}_latency_mean_ms"), lat.mean_ms)
        .metric(&format!("{name}_latency_p50_ms"), lat.p50_ms)
        .metric(&format!("{name}_latency_p99_ms"), lat.p99_ms)
        .metric(&format!("{name}_completed"), tp.completed + lat.completed)
        .latency_hist(&format!("payment_{name}_seq"), &lat.latencies)
        .latency_hist(&format!("payment_{name}_windowed"), &tp.latencies)
        .op_errors(&lat.op_errors)
        .op_errors(&tp.op_errors);
    assert_eq!(
        tp.completed + lat.completed,
        (lat_payments + tp_payments) as u64,
        "{name}: every live payment must complete successfully"
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (lat_payments, tp_payments, window) = if quick {
        (200, 2_000, 64)
    } else {
        (1_000, 20_000, 64)
    };
    let mut table = Table::new(
        "Live execution: real threads, sockets and clocks (this machine, not the paper's testbed)",
        &[
            "Transport",
            "Throughput (tx/s)",
            "Latency ms",
            "[p50]",
            "[p99]",
            "Completed",
            "Window",
        ],
    );
    let mut doc = BenchJson::new("live");
    doc.metric("quick", if quick { 1u64 } else { 0u64 })
        .metric(
            "host_parallelism",
            std::thread::available_parallelism().map_or(0, |p| p.get()),
        )
        .metric("window", window)
        .metric("latency_payments_per_backend", lat_payments)
        .metric("throughput_payments_per_backend", tp_payments);

    // --trace-out records the TCP backend (wall-clock timestamps; the
    // flow arrows cross real sockets).
    let sink = TraceSink::from_args();
    let threads = LiveCluster::over_threads(LiveConfig {
        n: 2,
        seed: 0x11FE,
        ..LiveConfig::default()
    });
    measure(
        "threads",
        &threads,
        lat_payments,
        tp_payments,
        window,
        &mut table,
        &mut doc,
    );
    threads.shutdown();

    let tcp = LiveCluster::over_tcp(LiveConfig {
        n: 2,
        seed: 0x11FE,
        tracing: sink.active(),
        ..LiveConfig::default()
    })
    .expect("bind localhost listeners");
    measure(
        "tcp",
        &tcp,
        lat_payments,
        tp_payments,
        window,
        &mut table,
        &mut doc,
    );
    sink.write(&tcp.drain_trace());
    tcp.shutdown();

    let reactor = LiveCluster::over_reactor(LiveConfig {
        n: 2,
        seed: 0x11FE,
        ..LiveConfig::default()
    })
    .expect("bind reactor listener");
    measure(
        "reactor",
        &reactor,
        lat_payments,
        tp_payments,
        window,
        &mut table,
        &mut doc,
    );
    reactor.shutdown();

    // The nodes axis: only the reactor backend is swept — at 1,000 nodes
    // the thread-per-node runtimes would need 2,000 OS threads, while
    // the sharded scheduler's count stays constant.
    let aggregate_total = if quick { 2_000 } else { 10_000 };
    for n in [10usize, 100, 1_000] {
        measure_reactor_nodes(n, aggregate_total, &mut table, &mut doc);
    }

    table.print();
    doc.table(&table).write().expect("bench json");
}
