//! Table 1: performance of single payment channels.
//!
//! Reproduces the US↔UK1 channel of Fig. 3 under every fault-tolerance
//! strategy, with and without 100 ms client-side batching. The Lightning
//! row uses the lnd figures measured in the paper (see
//! `teechain_baselines::ln::perf`).

use teechain_bench::harness::Job;
use teechain_bench::report::{fmt_thousands, BenchJson, Table};
use teechain_bench::scenarios::{fig3_pair, FtMode};
use teechain_bench::trace_out::TraceSink;
use teechain_net::Histogram;
use teechain_trace::TraceEvent;

type OpErrors = std::collections::BTreeMap<String, u64>;
type Latency = std::collections::BTreeMap<String, Histogram>;

struct RowResult {
    throughput: f64,
    mean_ms: f64,
    p99_ms: f64,
    op_errors: OpErrors,
    latency: Latency,
    trace: Vec<TraceEvent>,
}

fn run_row(ft: FtMode, batching: bool, seed: u64, trace: bool) -> RowResult {
    // Throughput: a large pipelined load.
    let (mut cluster, chan) = fig3_pair(ft, seed);
    let payments = match (ft, batching) {
        (FtMode::StableStorage, false) => 60,
        (FtMode::StableStorage, true) => 60_000,
        (_, true) => 100_000,
        (FtMode::None, false) => 60_000,
        _ => 30_000,
    };
    let jobs: Vec<Job> = (0..payments)
        .map(|_| Job::Direct { chan, amount: 1 })
        .collect();
    cluster.load(0, jobs, 1_000_000);
    if batching {
        cluster.enable_batching(0, chan, 100_000_000);
    }
    let stats = cluster.run(300_000_000);
    let throughput = stats.throughput;
    let op_errors = cluster.op_errors();
    let mut latency = cluster.latency_by_kind();

    // Latency: a sequential (window = 1) run on a fresh cluster. This is
    // the run `--trace-out` records: window 1 keeps the flight recording
    // readable (one full round trip at a time).
    let (mut cluster, chan) = fig3_pair(ft, seed + 1);
    if trace {
        cluster.set_tracing(true);
    }
    let lat_payments = if matches!(ft, FtMode::StableStorage) {
        40
    } else {
        300
    };
    let jobs: Vec<Job> = (0..lat_payments)
        .map(|_| Job::Direct { chan, amount: 1 })
        .collect();
    cluster.load(0, jobs, 1);
    if batching {
        cluster.enable_batching(0, chan, 100_000_000);
    }
    let stats = cluster.run(50_000_000);
    for (kind, h) in cluster.latency_by_kind() {
        latency.entry(kind).or_default().merge(&h);
    }
    RowResult {
        throughput,
        mean_ms: stats.mean_ms,
        p99_ms: stats.p99_ms,
        op_errors,
        latency,
        trace: if trace {
            cluster.drain_trace()
        } else {
            Vec::new()
        },
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut table = Table::new(
        "Table 1: single payment channel — throughput and latency",
        &["Configuration", "Throughput (tx/s)", "Latency ms [99th]"],
    );
    table.row(&[
        "Lightning Network (LN, measured in paper)".into(),
        fmt_thousands(teechain_baselines::ln::perf::MAX_TX_PER_SEC),
        "387 [420]".into(),
    ]);
    let rows: Vec<(&str, FtMode, bool)> = if quick {
        vec![
            ("Teechain, no fault tolerance", FtMode::None, false),
            ("Teechain, one replica (IL)", FtMode::Replicas(1), false),
        ]
    } else {
        vec![
            ("Teechain, no fault tolerance", FtMode::None, false),
            ("Teechain, one replica (IL)", FtMode::Replicas(1), false),
            (
                "Teechain, two replicas (IL & UK)",
                FtMode::Replicas(2),
                false,
            ),
            (
                "Teechain, three replicas (IL, US & UK)",
                FtMode::Replicas(3),
                false,
            ),
            ("Teechain, stable storage", FtMode::StableStorage, false),
            (
                "Teechain, batching (no fault tolerance)",
                FtMode::None,
                true,
            ),
            (
                "Teechain, batching (two replicas)",
                FtMode::Replicas(2),
                true,
            ),
            (
                "Teechain, batching (stable storage)",
                FtMode::StableStorage,
                true,
            ),
        ]
    };
    let sink = TraceSink::from_args();
    let mut doc = BenchJson::new("table1");
    let mut trace = Vec::new();
    for (i, (name, ft, batching)) in rows.into_iter().enumerate() {
        // The first (no-fault-tolerance) row is the one --trace-out records.
        let r = run_row(ft, batching, 1234, sink.active() && i == 0);
        doc.op_errors(&r.op_errors).latency(&r.latency);
        if !r.trace.is_empty() {
            trace = r.trace;
        }
        table.row(&[
            name.into(),
            fmt_thousands(r.throughput),
            format!("{:.0} [{:.0}]", r.mean_ms, r.p99_ms),
        ]);
    }
    table.print();
    sink.write(&trace);
    doc.table(&table).write().expect("bench json");
    println!(
        "\nPaper: LN 1,000 tx/s @ 387 ms; Teechain no-FT 130,311 @ 86 ms; 1 replica 34,115 @ 292 ms;\n\
         2 replicas 33,180 @ 415 ms; 3 replicas 33,178 @ 672 ms; stable storage 10 @ 288 ms;\n\
         batching: 150,311 @ 191 ms (no FT), 135,331 @ 516 ms (2 replicas), 145,786 @ 401 ms (stable)."
    );
}
