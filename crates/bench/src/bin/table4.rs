//! Table 4 / §7.5: blockchain cost — number of transactions and
//! pubkey/signature pairs per channel, analytic for all systems plus a
//! *measured* Teechain row (settlements actually executed on the
//! simulated chain).

use teechain::testkit::Cluster;
use teechain_baselines::{dmc, ln, sfmc};
use teechain_bench::report::{BenchJson, Table};
use teechain_bench::trace_out::TraceSink;

/// Executes a real Teechain channel lifecycle and counts on-chain
/// transactions + cost. `bilateral` ends with neutral balances (off-chain
/// termination); unilateral settles on chain. When `sink` is active the
/// whole lifecycle is flight-recorded (the unilateral run, which includes
/// the settlement, is the one written).
fn measured_teechain(n_committee: u8, bilateral: bool, sink: &TraceSink) -> (usize, f64) {
    let mut c = Cluster::functional(2 + n_committee as usize - 1);
    if sink.active() {
        c.set_tracing(true);
    }
    for b in 0..(n_committee as usize - 1) {
        let tail = if b == 0 { 0 } else { 2 + b - 1 };
        c.attach_backup(tail, 2 + b);
    }
    c.connect(0, 1);
    let chan = c.open_channel(0, 1, "t4");
    let dep = c.fund_deposit(0, 1000, 1.min(n_committee));
    c.approve_and_associate(0, 1, chan, &dep);
    c.pay(0, chan, 400).unwrap();
    if bilateral {
        c.pay(1, chan, 400).unwrap(); // Back to neutral.
    }
    c.settle_channel(0, chan).unwrap();
    c.mine(1);
    if !bilateral {
        sink.write(&c.drain_trace());
    }
    // Count non-mint transactions (the mint is the faucet, which the
    // paper's accounting attributes to the funding side: we add the
    // funding tx cost of 1 + n/2 analytically below).
    let chain = c.chain.lock();
    chain.confirmed_footprint()
}

fn main() {
    let mut table = Table::new(
        "Table 4: on-chain transactions and cost per channel",
        &["System", "Bilateral #txs / cost", "Unilateral #txs / cost"],
    );
    table.row(&[
        "LN".into(),
        format!("{:.0} / {:.0}", ln::cost::TXS, ln::cost::COST),
        format!("{:.0} / {:.0}", ln::cost::TXS, ln::cost::COST),
    ]);
    let d = 1;
    table.row(&[
        format!("DMC (d={d})"),
        format!("{:.0} / {:.0}", dmc::txs_bilateral(), dmc::cost_bilateral()),
        format!(
            "{:.0} / {:.0}",
            dmc::txs_unilateral(d),
            dmc::cost_unilateral(d)
        ),
    ]);
    let (n, p, i) = (4, 4, 1);
    table.row(&[
        format!("SFMC (n={n}, p={p}, i={i}, d={d})"),
        format!(
            "{:.1} / {:.1}",
            sfmc::txs_bilateral(n),
            sfmc::cost_bilateral(n, p)
        ),
        format!(
            "{:.1} / {:.1}",
            sfmc::txs_unilateral(n, i, d),
            sfmc::cost_unilateral(n, p, i, d)
        ),
    ]);
    // Teechain analytic (paper formulas, 2-of-3 committee, one deposit):
    // bilateral: 1 tx (the funding deposit), cost 1 + n/2;
    // unilateral: 3 txs (two deposits + settlement), cost per Table 4.
    let nn = 3.0;
    let m = 2.0;
    table.row(&[
        "Teechain analytic (2-of-3 deposits)".into(),
        format!("1 / {:.1}", 1.0 + nn / 2.0),
        format!("3 / {:.1}", 1.0 + nn / 2.0 + nn / 2.0 + m + m),
    ]);
    // Teechain measured on the simulated chain (1-of-1 deposit).
    let sink = TraceSink::from_args();
    let (txs_uni, cost_uni) = measured_teechain(1, false, &sink);
    let (txs_bi, cost_bi) = measured_teechain(1, true, &sink);
    table.row(&[
        "Teechain measured (1-of-1, excl. funding)".into(),
        format!("{txs_bi} / {cost_bi:.1}"),
        format!("{txs_uni} / {cost_uni:.1}"),
    ]);
    table.print();
    let mut doc = BenchJson::new("table4");
    doc.table(&table).write().expect("bench json");
    println!(
        "\nPaper: Teechain places 25–75% fewer transactions than LN and is up to 58% cheaper\n\
         bilaterally; unilateral termination is ~50% more expensive due to multisig inputs.\n\
         Measured: bilateral (neutral) termination is fully off-chain — 0 settlement txs."
    );
}
