//! Runs every table and figure experiment in sequence (pass `--quick` for
//! reduced parameter sweeps). Each child bin writes its own
//! `BENCH_<name>.json`; this bin records the run manifest in
//! `BENCH_all.json`. With `--trace-out <path>` each child gets its own
//! flight-recorder export at `<path>.<bin>.json`.

use std::process::Command;
use teechain_bench::report::{BenchJson, JsonValue};

fn arg_val(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace_out = arg_val("--trace-out");
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    let bins = [
        "table1",
        "table2",
        "fig4",
        "fig6",
        "table3",
        "fig7",
        "table4",
        "persistence",
        "scale",
    ];
    let mut ran = Vec::new();
    for bin in bins {
        println!("\n===== {bin} =====");
        let mut cmd = Command::new(dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        if let Some(prefix) = &trace_out {
            cmd.args(["--trace-out", &format!("{prefix}.{bin}.json")]);
        }
        let start = std::time::Instant::now();
        let status = cmd.status().expect("spawn experiment");
        if !status.success() {
            eprintln!("{bin} failed: {status}");
            std::process::exit(1);
        }
        ran.push(JsonValue::Obj(vec![
            ("bin".into(), bin.into()),
            ("artifact".into(), format!("BENCH_{bin}.json").into()),
            ("wall_s".into(), start.elapsed().as_secs_f64().into()),
        ]));
    }
    let mut doc = BenchJson::new("all");
    doc.metric("quick", JsonValue::Bool(quick))
        .metric("experiments", JsonValue::Arr(ran));
    doc.write().expect("bench json");
}
