//! Runs every table and figure experiment in sequence (pass `--quick` for
//! reduced parameter sweeps).

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    for bin in [
        "table1",
        "table2",
        "fig4",
        "fig6",
        "table3",
        "fig7",
        "table4",
        "persistence",
    ] {
        println!("\n===== {bin} =====");
        let mut cmd = Command::new(dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().expect("spawn experiment");
        if !status.success() {
            eprintln!("{bin} failed: {status}");
            std::process::exit(1);
        }
    }
}
