//! Fig. 7: throughput with temporary channels — tier-1/tier-2 edges get
//! G parallel channels, relieving lock contention (§5.2).

use teechain_bench::report::{fmt_thousands, BenchJson, JsonValue, Table};
use teechain_bench::scenarios::{build_network, fund_reverse, hub_spoke_jobs, wan_100ms};
use teechain_bench::trace_out::TraceSink;
use teechain_net::topology::HubSpoke;
use teechain_net::Histogram;
use teechain_trace::TraceEvent;

type OpErrors = std::collections::BTreeMap<String, u64>;
type Latency = std::collections::BTreeMap<String, Histogram>;

fn run(
    committee_n: usize,
    g: usize,
    payments: usize,
    seed: u64,
    errs: &mut OpErrors,
    lat: &mut Latency,
    trace: Option<&mut Vec<TraceEvent>>,
) -> f64 {
    let hs = HubSpoke::paper_default();
    let edges = hs.channel_pairs();
    // Temporary channels on tier1-tier1, tier1-tier2 edges only: tier-3
    // users are unlikely to post extra collateral (§7.4).
    let mut net = build_network(
        hs.total() as usize,
        &edges,
        1,
        committee_n - 1,
        wan_100ms(),
        seed,
    );
    if g > 1 {
        // Add G-1 extra channels per upper-tier edge.
        let upper: Vec<_> = edges
            .iter()
            .filter(|(a, b)| hs.tier_of(*a) <= 2 && hs.tier_of(*b) <= 2)
            .copied()
            .collect();
        for &(a, b) in &upper {
            for extra in 1..g {
                let label = format!("tmp{}-{}-{}", a.0, b.0, extra);
                let chan = net.cluster.standard_channel(
                    a.0 as usize,
                    b.0 as usize,
                    &label,
                    1_000_000_000,
                    1,
                );
                // Fund the reverse side too: payments flow both ways over
                // temporary channels (one-sided funding made any payment
                // routed the other way fail and retry forever).
                fund_reverse(&mut net.cluster, chan, a, b, 1_000_000_000);
                let key = if a <= b { (a, b) } else { (b, a) };
                net.channels.get_mut(&key).expect("edge exists").push(chan);
            }
        }
    }
    let jobs = hub_spoke_jobs(&net, &hs, payments, 1, seed);
    for (i, j) in jobs {
        net.cluster.load(i, j, 16);
    }
    if trace.is_some() {
        net.cluster.set_tracing(true);
    }
    let stats = net.cluster.run(3_000_000_000);
    for (label, n) in net.cluster.op_errors() {
        *errs.entry(label).or_insert(0) += n;
    }
    for (kind, h) in net.cluster.latency_by_kind() {
        lat.entry(kind).or_default().merge(&h);
    }
    if let Some(events) = trace {
        *events = net.cluster.drain_trace();
    }
    stats.throughput
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let gs: Vec<usize> = if quick { vec![1, 4] } else { vec![1, 2, 4, 8] };
    let payments = if quick { 600 } else { 2000 };
    let ns: Vec<usize> = if quick { vec![1] } else { vec![1, 2] };
    let mut table = Table::new(
        "Fig. 7: throughput (tx/s) with G temporary channels",
        &["G", "n=1 (no FT)", "n=2 (one replica)"],
    );
    let sink = TraceSink::from_args();
    let mut trace = Vec::new();
    let mut errs = OpErrors::new();
    let mut lat = Latency::new();
    let mut points: Vec<(usize, usize, f64)> = Vec::new();
    for &g in &gs {
        let mut cells = vec![g.to_string()];
        for &n in &ns {
            // --trace-out records the G=1 n=1 baseline (reroutes appear
            // in later G sweeps but the baseline stays readable).
            let want_trace = sink.active() && g == gs[0] && n == ns[0];
            let tps = run(
                n,
                g,
                payments,
                7 + g as u64,
                &mut errs,
                &mut lat,
                if want_trace { Some(&mut trace) } else { None },
            );
            points.push((g, n, tps));
            cells.push(fmt_thousands(tps));
        }
        while cells.len() < 3 {
            cells.push("-".into());
        }
        table.row(&cells);
    }
    table.print();
    let mut doc = BenchJson::new("fig7");
    doc.metric("payments_per_run", payments)
        .metric("quick", JsonValue::Bool(quick));
    for &(g, n, tps) in &points {
        doc.metric(&format!("tx_per_s_g{g}_n{n}"), tps);
    }
    // Headline scaling ratio the paper's Fig. 7 is about: throughput at
    // the largest measured G over the G=1 baseline (both at n=1).
    let base = points.iter().find(|&&(g, n, _)| g == 1 && n == 1);
    let top = points
        .iter()
        .filter(|&&(_, n, _)| n == 1)
        .max_by_key(|&&(g, _, _)| g);
    if let (Some(&(_, _, b)), Some(&(gmax, _, t))) = (base, top) {
        if b > 0.0 && gmax > 1 {
            doc.metric(&format!("scaling_g{gmax}_over_g1"), t / b);
        }
    }
    sink.write(&trace);
    doc.op_errors(&errs).latency(&lat);
    doc.table(&table).write().expect("bench json");
    println!("\nPaper: near-linear scaling in G with diminishing returns (tier-3 congestion).");
}
