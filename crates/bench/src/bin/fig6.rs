//! Fig. 6: network throughput on complete-graph deployments of 5–30
//! machines, for committee chains of n = 1, 2, 3.

use teechain_bench::harness::Job;
use teechain_bench::report::{fmt_thousands, BenchJson, Table};
use teechain_bench::scenarios::build_network;
use teechain_bench::trace_out::TraceSink;
use teechain_bench::workload::Workload;
use teechain_net::topology::complete_pairs;
use teechain_net::{Histogram, LinkSpec, MS};
use teechain_trace::TraceEvent;

type OpErrors = std::collections::BTreeMap<String, u64>;
type Latency = std::collections::BTreeMap<String, Histogram>;

fn run(
    nodes: usize,
    committee_n: usize,
    payments_per_node: usize,
    seed: u64,
    errs: &mut OpErrors,
    lat: &mut Latency,
    trace: Option<&mut Vec<TraceEvent>>,
) -> f64 {
    // The complete-graph deployment runs on the UK LAN cluster (Fig. 3):
    // 0.5 ms RTT at 1 Gb/s. (The 100 ms WAN emulation of §7.4 applies to
    // the hub-and-spoke runs; with W=1000 per machine a 100 ms RTT would
    // cap throughput at W/RTT ≈ 10k tx/s per machine, far below Fig. 6.)
    let link = LinkSpec::from_rtt_ms(0.5, 1000.0);
    let _ = MS;
    let edges = complete_pairs(nodes as u32);
    let mut net = build_network(nodes, &edges, 1, committee_n - 1, link, seed);
    let mut wl = Workload::uniform(nodes as u32, seed);
    // Direct payments only: in a complete graph every pair has a channel.
    let mut per_node: Vec<Vec<Job>> = vec![Vec::new(); nodes];
    for p in wl.take(payments_per_node * nodes) {
        let chans = net.edge_channels(p.from, p.to);
        if let Some(&chan) = chans.first() {
            per_node[p.from.0 as usize].push(Job::Direct {
                chan,
                amount: p.value.min(1000),
            });
        }
    }
    for (i, jobs) in per_node.into_iter().enumerate() {
        net.cluster.load(i, jobs, 1000); // W = 1000 sliding window (§7.4).
    }
    if trace.is_some() {
        net.cluster.set_tracing(true);
    }
    let stats = net.cluster.run(2_000_000_000);
    for (label, n) in net.cluster.op_errors() {
        *errs.entry(label).or_insert(0) += n;
    }
    for (kind, h) in net.cluster.latency_by_kind() {
        lat.entry(kind).or_default().merge(&h);
    }
    if let Some(events) = trace {
        *events = net.cluster.drain_trace();
    }
    stats.throughput
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let node_counts: Vec<usize> = if quick {
        vec![5, 10]
    } else {
        vec![5, 10, 15, 20, 25, 30]
    };
    let committee_ns: Vec<usize> = if quick { vec![1, 2] } else { vec![1, 2, 3] };
    let per_node = if quick { 1000 } else { 3000 };
    let mut table = Table::new(
        "Fig. 6: complete-graph throughput (tx/s) vs machines",
        &["Machines", "n=1 (no FT)", "n=2", "n=3"],
    );
    let sink = TraceSink::from_args();
    let mut trace = Vec::new();
    let mut errs = OpErrors::new();
    let mut lat = Latency::new();
    for &nodes in &node_counts {
        let mut cells = vec![nodes.to_string()];
        for &n in &committee_ns {
            // --trace-out records the smallest n=1 deployment.
            let want_trace = sink.active() && nodes == node_counts[0] && n == committee_ns[0];
            let tput = run(
                nodes,
                n,
                per_node,
                42 + nodes as u64,
                &mut errs,
                &mut lat,
                if want_trace { Some(&mut trace) } else { None },
            );
            cells.push(fmt_thousands(tput));
        }
        while cells.len() < 4 {
            cells.push("-".into());
        }
        table.row(&cells);
    }
    table.print();
    sink.write(&trace);
    let mut doc = BenchJson::new("fig6");
    doc.op_errors(&errs).latency(&lat);
    doc.table(&table).write().expect("bench json");
    println!(
        "\nPaper: linear scaling; ≈2.2M tx/s at 30 machines with n=1;\n\
         ≈1M tx/s with n=2 or n=3 (9% apart)."
    );
}
