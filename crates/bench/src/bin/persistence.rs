//! Persistence vs. replication: the §6 fault-tolerance cost comparison
//! (Tables 1–2 territory) extended with the WAL/group-commit engine, plus
//! a sustained crash-churn workload that repeatedly kills and recovers a
//! node under load.
//!
//! Run with `--quick` for a reduced sweep.

use teechain::enclave::Command;
use teechain::testkit::{Cluster, ClusterConfig};
use teechain::{DurabilityBackend, PersistPolicy};
use teechain_bench::harness::Job;
use teechain_bench::report::{fmt_thousands, BenchJson, Table};
use teechain_bench::scenarios::{fig3_pair, FtMode};
use teechain_bench::trace_out::TraceSink;
use teechain_net::Histogram;
use teechain_trace::TraceEvent;

type Latency = std::collections::BTreeMap<String, Histogram>;

/// One throughput/latency row over the Fig. 3 US↔UK pair.
fn run_row(
    ft: FtMode,
    batching: bool,
    seed: u64,
    lat: &mut Latency,
    trace: Option<&mut Vec<TraceEvent>>,
) -> (
    f64,
    f64,
    f64,
    String,
    std::collections::BTreeMap<String, u64>,
) {
    let (mut cluster, chan) = fig3_pair(ft, seed);
    let payments = match (ft.persist(), batching) {
        (true, false) => 60,
        (true, true) => 30_000,
        (false, true) => 60_000,
        (false, false) => 30_000,
    };
    let jobs: Vec<Job> = (0..payments)
        .map(|_| Job::Direct { chan, amount: 1 })
        .collect();
    cluster.load(0, jobs, 1_000_000);
    if batching {
        cluster.enable_batching(0, chan, 100_000_000);
    }
    let stats = cluster.run(300_000_000);
    let op_errors = cluster.op_errors();
    // Storage-cost column: what the durability engine actually wrote.
    let storage = match &cluster.stores[1] {
        Some(store) => {
            let s = store.lock().stats();
            format!(
                "{} commits, {} snap, {:.1} KiB wal",
                s.commits,
                s.compactions,
                s.wal_bytes as f64 / 1024.0
            )
        }
        None => "—".to_string(),
    };

    // Latency: a sequential (window = 1) run on a fresh cluster. This
    // is the run --trace-out records: under WAL-backed modes the flight
    // recording shows the WalAppend events inside each payment span.
    let (mut cluster, chan) = fig3_pair(ft, seed + 1);
    if trace.is_some() {
        cluster.set_tracing(true);
    }
    let lat_payments = if ft.persist() { 40 } else { 300 };
    let jobs: Vec<Job> = (0..lat_payments)
        .map(|_| Job::Direct { chan, amount: 1 })
        .collect();
    cluster.load(0, jobs, 1);
    let stats_lat = cluster.run(50_000_000);
    for (kind, h) in cluster.latency_by_kind() {
        lat.entry(kind).or_default().merge(&h);
    }
    if let Some(events) = trace {
        *events = cluster.drain_trace();
    }
    (
        stats.throughput,
        stats_lat.mean_ms,
        stats_lat.p99_ms,
        storage,
        op_errors,
    )
}

/// Sustained crash churn: payments flow while the payee is repeatedly
/// killed mid-stream and recovered from WAL + snapshot. Returns
/// (completed payments, crashes survived, mean recovery wall-time in
/// simulated µs of enclave-visible work — here: commits replayed).
fn crash_churn(rounds: usize, payments_per_round: usize) -> (u64, usize, u64) {
    let mut c = Cluster::new(ClusterConfig {
        n: 2,
        durability: DurabilityBackend::Persist(PersistPolicy { snapshot_every: 8 }),
        ..ClusterConfig::default()
    });
    let chan = c.standard_channel(0, 1, "churn", 1_000_000, 1);
    let mut completed = 0u64;
    let mut recoveries = 0usize;
    let mut commits_replayed = 0u64;
    for round in 0..rounds {
        for _ in 0..payments_per_round {
            c.pay(0, chan, 1).expect("payment");
            completed += 1;
        }
        // Kill the payee with one more payment in flight, then recover.
        // (Submitted, deliberately not resolved: the payee dies first.)
        c.submit(
            0,
            Command::Pay {
                id: chan,
                amount: 1,
                count: 1,
            },
        );
        c.crash_node(1);
        c.settle_network();
        let recovery = c
            .recover_node(1)
            .unwrap_or_else(|e| panic!("recovery {round}: {e}"));
        recoveries += 1;
        commits_replayed = recovery.commits;
        // Fresh sessions, and on we go.
        c.connect(1, 0);
    }
    // Final integrity check: the payee's balance equals every payment it
    // durably applied, and a settlement pays exactly that out on chain.
    let (my, _) = c.balances(1, chan);
    assert!(my >= completed, "recovered node lost acked payments");
    (completed, recoveries, commits_replayed)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut table = Table::new(
        "Persistence vs. replication: single-channel cost of §6 fault tolerance",
        &[
            "Configuration",
            "Throughput (tx/s)",
            "Latency ms [99th]",
            "Durable storage written (payee)",
        ],
    );
    let rows: Vec<(&str, FtMode, bool)> = if quick {
        vec![
            ("No fault tolerance", FtMode::None, false),
            (
                "Stable storage (eager snapshots)",
                FtMode::StableStorage,
                false,
            ),
            (
                "Stable storage (WAL + group commit)",
                FtMode::StableStorageWal,
                true,
            ),
        ]
    } else {
        vec![
            ("No fault tolerance", FtMode::None, false),
            ("One replica (IL)", FtMode::Replicas(1), false),
            ("Two replicas (IL & UK)", FtMode::Replicas(2), false),
            (
                "Stable storage (eager snapshots)",
                FtMode::StableStorage,
                false,
            ),
            ("Stable storage + batching", FtMode::StableStorage, true),
            (
                "Stable storage (WAL + group commit)",
                FtMode::StableStorageWal,
                false,
            ),
            (
                "WAL + group commit + batching",
                FtMode::StableStorageWal,
                true,
            ),
        ]
    };
    let sink = TraceSink::from_args();
    let mut trace = Vec::new();
    let mut lat = Latency::new();
    let mut all_op_errors = std::collections::BTreeMap::new();
    let last_row = rows.len() - 1;
    for (i, (name, ft, batching)) in rows.into_iter().enumerate() {
        // --trace-out records the last row (a WAL-backed configuration
        // in both sweeps, so the trace shows persistence at work).
        let want_trace = sink.active() && i == last_row;
        let (tps, mean, p99, storage, op_errors) = run_row(
            ft,
            batching,
            4321,
            &mut lat,
            if want_trace { Some(&mut trace) } else { None },
        );
        for (label, n) in op_errors {
            *all_op_errors.entry(label).or_insert(0) += n;
        }
        table.row(&[
            name.into(),
            fmt_thousands(tps),
            format!("{mean:.0} [{p99:.0}]"),
            storage,
        ]);
    }
    table.print();

    let (rounds, per_round) = if quick { (3, 5) } else { (10, 20) };
    let (completed, recoveries, commits) = crash_churn(rounds, per_round);
    let mut churn = Table::new(
        "Crash churn: payee killed mid-payment every round, recovered from WAL",
        &["Metric", "Value"],
    );
    churn.row(&["Payments completed".into(), completed.to_string()]);
    churn.row(&[
        "Crash/recover cycles survived".into(),
        recoveries.to_string(),
    ]);
    churn.row(&[
        "Commits replayed by final recovery".into(),
        commits.to_string(),
    ]);
    churn.print();
    sink.write(&trace);
    let mut doc = BenchJson::new("persistence");
    doc.op_errors(&all_op_errors).latency(&lat);
    doc.table(&table).table(&churn).write().expect("bench json");
}
