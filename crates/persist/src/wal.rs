//! WAL record framing: `len(u32 LE) | crc32(u32 LE) | payload`.
//!
//! A scan walks frames from the start of the log and stops at the first
//! frame that is truncated or whose CRC does not match — the torn tail of
//! an append interrupted by a crash. Everything before the tear is
//! returned; the tear itself is reported so the store can surface it.

use crate::crc32::crc32;

/// Bytes of framing per record.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a single record (defensive: a corrupt length field must
/// not make a scan attempt a multi-gigabyte allocation).
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// Frames `payload` into `out`.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Frames `payload` into a fresh buffer.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    frame_into(&mut out, payload);
    out
}

/// Result of scanning a log region.
pub struct Scan {
    /// Intact record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes covered by intact records (the valid prefix length).
    pub valid_len: usize,
    /// True if trailing bytes after the valid prefix were discarded
    /// (a torn append or corruption).
    pub torn_tail: bool,
}

/// Scans `log`, returning every intact record and whether a torn tail was
/// discarded.
pub fn scan(log: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut at = 0usize;
    while log.len() - at >= HEADER_LEN {
        let len = u32::from_le_bytes(log[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(log[at + 4..at + 8].try_into().unwrap());
        let start = at + HEADER_LEN;
        if len > MAX_RECORD_LEN || start + len > log.len() {
            break; // Truncated mid-record.
        }
        let payload = &log[start..start + len];
        if crc32(payload) != crc {
            break; // Corrupt frame: stop, do not resync.
        }
        records.push(payload.to_vec());
        at = start + len;
    }
    Scan {
        records,
        valid_len: at,
        torn_tail: at != log.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_records() {
        let mut log = Vec::new();
        frame_into(&mut log, b"first");
        frame_into(&mut log, b"");
        frame_into(&mut log, b"third record");
        let s = scan(&log);
        assert!(!s.torn_tail);
        assert_eq!(s.valid_len, log.len());
        assert_eq!(
            s.records,
            vec![b"first".to_vec(), vec![], b"third record".to_vec()]
        );
    }

    #[test]
    fn torn_tail_detected_and_prefix_kept() {
        let mut log = Vec::new();
        frame_into(&mut log, b"keep me");
        frame_into(&mut log, b"torn away");
        let keep_len = HEADER_LEN + 7;
        log.truncate(log.len() - 4); // Crash mid-append of record 2.
        let s = scan(&log);
        assert!(s.torn_tail);
        assert_eq!(s.valid_len, keep_len);
        assert_eq!(s.records, vec![b"keep me".to_vec()]);
    }

    #[test]
    fn corrupt_crc_stops_scan() {
        let mut log = Vec::new();
        frame_into(&mut log, b"good");
        frame_into(&mut log, b"bad!");
        frame_into(&mut log, b"unreachable");
        let flip_at = HEADER_LEN + 4 + HEADER_LEN; // First byte of "bad!".
        log[flip_at] ^= 0x01;
        let s = scan(&log);
        assert!(s.torn_tail);
        assert_eq!(s.records, vec![b"good".to_vec()]);
    }

    #[test]
    fn insane_length_field_rejected() {
        let mut log = (u32::MAX).to_le_bytes().to_vec();
        log.extend_from_slice(&[0; 4]);
        log.extend_from_slice(&[0xAB; 64]);
        let s = scan(&log);
        assert!(s.records.is_empty());
        assert!(s.torn_tail);
    }

    #[test]
    fn partial_header_is_a_clean_tear() {
        let mut log = frame(b"ok");
        log.extend_from_slice(&[1, 2, 3]); // 3 bytes of a next header.
        let s = scan(&log);
        assert_eq!(s.records.len(), 1);
        assert!(s.torn_tail);
    }
}
