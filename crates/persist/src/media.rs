//! Byte-level storage backends for the WAL and snapshot.
//!
//! A [`Media`] holds two regions: an append-only *log* and a
//! single-slot *snapshot*. The store layers framing, compaction and
//! recovery on top; media implementations only move bytes.
//!
//! Every operation reports I/O failure. Swallowing a failed append or
//! sync would be fatal in slow motion: the enclave has already bound
//! the commit to a monotonic-counter increment, so a commit that the
//! host believes durable but is not becomes an undetectable-until-
//! restart roll-back. Callers must treat any `Err` as "this node can
//! no longer acknowledge state changes".

use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Raw storage: an append-only log region plus a snapshot slot.
pub trait Media: Send {
    /// Reads the entire log region.
    fn log_read(&mut self) -> io::Result<Vec<u8>>;

    /// Appends bytes to the log region.
    fn log_append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Replaces the log region wholesale (compaction, fault injection).
    fn log_reset(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Reads the snapshot slot (`None` if no snapshot was ever taken).
    fn snapshot_read(&mut self) -> io::Result<Option<Vec<u8>>>;

    /// Replaces the snapshot slot atomically.
    fn snapshot_write(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Empties the snapshot slot (back to `None`).
    fn snapshot_clear(&mut self) -> io::Result<()>;

    /// Durability barrier — the fsync equivalent. Everything written
    /// before this call survives a crash after it.
    fn sync(&mut self) -> io::Result<()>;
}

/// In-memory media for simulations. Survives *enclave* crashes by
/// construction (the simulation owns it outside the node), and offers
/// torn-write injection for host-crash experiments.
#[derive(Default)]
pub struct MemMedia {
    log: Vec<u8>,
    snapshot: Option<Vec<u8>>,
    /// Bytes of the log that have been covered by a [`Media::sync`];
    /// a simulated host crash loses everything beyond this point.
    synced_len: usize,
}

impl MemMedia {
    /// Fresh empty media.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates a host crash that tears the last `n` bytes off the log
    /// (a partially persisted append).
    pub fn tear_tail(&mut self, n: usize) {
        let keep = self.log.len().saturating_sub(n);
        self.log.truncate(keep);
        self.synced_len = self.synced_len.min(keep);
    }

    /// Simulates a host crash: unsynced log bytes are lost.
    pub fn drop_unsynced(&mut self) {
        self.log.truncate(self.synced_len);
    }
}

impl Media for MemMedia {
    fn log_read(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.log.clone())
    }

    fn log_append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.log.extend_from_slice(bytes);
        Ok(())
    }

    fn log_reset(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.log = bytes.to_vec();
        self.synced_len = 0;
        Ok(())
    }

    fn snapshot_read(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.snapshot.clone())
    }

    fn snapshot_write(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.snapshot = Some(bytes.to_vec());
        Ok(())
    }

    fn snapshot_clear(&mut self) -> io::Result<()> {
        self.snapshot = None;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.synced_len = self.log.len();
        Ok(())
    }
}

/// File-backed media: `wal.log` and `snapshot.bin` under a directory.
/// Snapshot replacement goes through a temp file + rename so a crash
/// mid-write never destroys the previous snapshot.
pub struct FileMedia {
    dir: PathBuf,
    log: fs::File,
}

impl FileMedia {
    /// Opens (creating if needed) media under `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let log = fs::OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(dir.join("wal.log"))?;
        Ok(FileMedia { dir, log })
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }
}

impl Media for FileMedia {
    fn log_read(&mut self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        self.log.seek(SeekFrom::Start(0))?;
        self.log.read_to_end(&mut out)?;
        Ok(out)
    }

    fn log_append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.log.seek(SeekFrom::End(0))?;
        self.log.write_all(bytes)
    }

    fn log_reset(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.log.set_len(0)?;
        self.log.seek(SeekFrom::Start(0))?;
        self.log.write_all(bytes)?;
        self.log.sync_all()
    }

    fn snapshot_read(&mut self) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.snapshot_path()) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn snapshot_write(&mut self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, self.snapshot_path())
    }

    fn snapshot_clear(&mut self) -> io::Result<()> {
        match fs::remove_file(self.snapshot_path()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.log.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_media_roundtrip() {
        let mut m = MemMedia::new();
        m.log_append(b"abc").unwrap();
        m.log_append(b"def").unwrap();
        m.sync().unwrap();
        assert_eq!(m.log_read().unwrap(), b"abcdef");
        m.snapshot_write(b"snap").unwrap();
        assert_eq!(m.snapshot_read().unwrap().as_deref(), Some(&b"snap"[..]));
        m.snapshot_clear().unwrap();
        assert_eq!(m.snapshot_read().unwrap(), None);
        m.log_reset(b"").unwrap();
        assert!(m.log_read().unwrap().is_empty());
    }

    #[test]
    fn mem_media_torn_tail_and_unsynced_loss() {
        let mut m = MemMedia::new();
        m.log_append(b"durable").unwrap();
        m.sync().unwrap();
        m.log_append(b"lost").unwrap();
        m.drop_unsynced();
        assert_eq!(m.log_read().unwrap(), b"durable");
        m.tear_tail(3);
        assert_eq!(m.log_read().unwrap(), b"dura");
    }

    #[test]
    fn file_media_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "teechain-persist-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut m = FileMedia::open(&dir).unwrap();
            assert_eq!(m.snapshot_read().unwrap(), None, "fresh media is empty");
            m.log_append(b"hello ").unwrap();
            m.log_append(b"wal").unwrap();
            m.sync().unwrap();
            m.snapshot_write(b"snapshot-bytes").unwrap();
        }
        {
            // Reopen: contents must have survived.
            let mut m = FileMedia::open(&dir).unwrap();
            assert_eq!(m.log_read().unwrap(), b"hello wal");
            assert_eq!(
                m.snapshot_read().unwrap().as_deref(),
                Some(&b"snapshot-bytes"[..])
            );
            m.snapshot_clear().unwrap();
            assert_eq!(m.snapshot_read().unwrap(), None);
            m.log_reset(b"x").unwrap();
            assert_eq!(m.log_read().unwrap(), b"x");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
