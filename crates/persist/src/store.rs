//! The persistent store: group-committed WAL appends, snapshot
//! installation with log compaction, and crash recovery.

use crate::media::{Media, MemMedia};
use crate::wal;
use parking_lot::Mutex;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Write/compaction counters, for the paper's Table 1/2 cost analysis.
#[derive(Debug, Default, Clone, Copy)]
pub struct StoreStats {
    /// Durability barriers performed (WAL appends *and* snapshot
    /// installs each end in one fsync equivalent; with group commit,
    /// one barrier covers a whole delta batch).
    pub commits: u64,
    /// WAL records appended.
    pub records: u64,
    /// Payload bytes appended to the WAL (excluding framing).
    pub wal_bytes: u64,
    /// Snapshots installed (each truncates the log).
    pub compactions: u64,
    /// Snapshot bytes written.
    pub snapshot_bytes: u64,
}

/// Everything a restarted enclave needs to rebuild its state.
pub struct Recovery {
    /// The most recent sealed snapshot, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Sealed WAL records appended after that snapshot, oldest first.
    pub log: Vec<Vec<u8>>,
    /// True if a torn append was discarded from the end of the log. The
    /// enclave will see the missing commit as a counter gap and refuse
    /// recovery — a torn tail is indistinguishable from a roll-back and
    /// is treated with the same severity.
    pub torn_tail: bool,
}

/// Host-side durable storage for one node: WAL + snapshot slot.
///
/// All content is sealed by the enclave before it gets here; the store
/// never interprets payloads. Every write returns `io::Result`: a
/// failed append or sync means the node must stop acknowledging state
/// changes (the enclave has already spent the counter increment), so
/// callers treat `Err` as fatal for the node.
pub struct PersistentStore {
    media: Box<dyn Media>,
    stats: StoreStats,
}

/// A store shared between the simulation harness (which keeps it alive
/// across node crashes — it models the disk, not the process) and the
/// node's effect handler.
pub type SharedStore = Arc<Mutex<PersistentStore>>;

impl PersistentStore {
    /// A store over the given media.
    pub fn new(media: Box<dyn Media>) -> Self {
        PersistentStore {
            media,
            stats: StoreStats::default(),
        }
    }

    /// An in-memory store (simulations; survives enclave crashes because
    /// the harness owns it).
    pub fn in_memory() -> Self {
        Self::new(Box::new(MemMedia::new()))
    }

    /// A file-backed store under `dir` (survives process crashes).
    pub fn on_disk(dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(Box::new(crate::media::FileMedia::open(dir)?)))
    }

    /// Wraps the store for sharing with a node.
    pub fn into_shared(self) -> SharedStore {
        Arc::new(Mutex::new(self))
    }

    /// Appends one sealed commit record and syncs. The record is the
    /// group-commit unit: the enclave packs every delta of a batch into
    /// one sealed record, so one durability barrier covers them all.
    pub fn append_commit(&mut self, record: &[u8]) -> io::Result<()> {
        self.media.log_append(&wal::frame(record))?;
        self.media.sync()?;
        self.stats.commits += 1;
        self.stats.records += 1;
        self.stats.wal_bytes += record.len() as u64;
        Ok(())
    }

    /// Installs a sealed snapshot and compacts: the WAL is truncated,
    /// since the snapshot supersedes every record before it.
    pub fn install_snapshot(&mut self, blob: &[u8]) -> io::Result<()> {
        self.media.snapshot_write(blob)?;
        self.media.log_reset(&[])?;
        self.media.sync()?;
        self.stats.commits += 1;
        self.stats.compactions += 1;
        self.stats.snapshot_bytes += blob.len() as u64;
        Ok(())
    }

    /// Reads everything back for a restarted enclave.
    pub fn recover(&mut self) -> io::Result<Recovery> {
        let scan = wal::scan(&self.media.log_read()?);
        Ok(Recovery {
            // Normalize: an empty slot means "no snapshot".
            snapshot: self.media.snapshot_read()?.filter(|s| !s.is_empty()),
            log: scan.records,
            torn_tail: scan.torn_tail,
        })
    }

    /// Write counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    // ---- Fault injection (tests, adversarial experiments) ----

    /// Dumps the raw media contents (snapshot slot, log region). An
    /// attacker controlling the host can always copy these.
    pub fn raw_dump(&mut self) -> io::Result<(Option<Vec<u8>>, Vec<u8>)> {
        Ok((self.media.snapshot_read()?, self.media.log_read()?))
    }

    /// Replaces the media contents wholesale — models a malicious host
    /// restoring stale storage for a roll-back attack.
    pub fn restore_raw(&mut self, snapshot: Option<Vec<u8>>, log: Vec<u8>) -> io::Result<()> {
        match snapshot {
            Some(s) => self.media.snapshot_write(&s)?,
            None => self.media.snapshot_clear()?,
        }
        self.media.log_reset(&log)?;
        self.media.sync()
    }

    /// Tears `n` bytes off the end of the log — models a host crash in
    /// the middle of an append.
    pub fn tear_tail(&mut self, n: usize) -> io::Result<()> {
        let mut log = self.media.log_read()?;
        log.truncate(log.len().saturating_sub(n));
        self.media.log_reset(&log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_then_recover_roundtrip() {
        let mut s = PersistentStore::in_memory();
        s.append_commit(b"rec-1").unwrap();
        s.append_commit(b"rec-2").unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.log, vec![b"rec-1".to_vec(), b"rec-2".to_vec()]);
        assert!(r.snapshot.is_none());
        assert!(!r.torn_tail);
        assert_eq!(s.stats().commits, 2);
    }

    #[test]
    fn snapshot_compacts_the_log() {
        let mut s = PersistentStore::in_memory();
        s.append_commit(b"old-1").unwrap();
        s.append_commit(b"old-2").unwrap();
        s.install_snapshot(b"snap@2").unwrap();
        s.append_commit(b"new-3").unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(&b"snap@2"[..]));
        assert_eq!(r.log, vec![b"new-3".to_vec()]);
        assert_eq!(s.stats().compactions, 1);
        // Barrier accounting: 3 appends + 1 snapshot install.
        assert_eq!(s.stats().commits, 4);
    }

    #[test]
    fn torn_tail_reported() {
        let mut s = PersistentStore::in_memory();
        s.append_commit(b"whole").unwrap();
        s.append_commit(b"will be torn").unwrap();
        s.tear_tail(3).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.log, vec![b"whole".to_vec()]);
        assert!(r.torn_tail);
    }

    #[test]
    fn raw_restore_rolls_back_contents() {
        let mut s = PersistentStore::in_memory();
        s.append_commit(b"a").unwrap();
        s.install_snapshot(b"snap-a").unwrap();
        let (snap, log) = s.raw_dump().unwrap();
        s.append_commit(b"b").unwrap();
        s.install_snapshot(b"snap-b").unwrap();
        s.restore_raw(snap, log).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(&b"snap-a"[..]));
        assert!(r.log.is_empty());
    }

    #[test]
    fn restore_raw_without_snapshot_clears_the_slot() {
        let mut s = PersistentStore::in_memory();
        s.append_commit(b"pre-snapshot era").unwrap();
        let (snap, log) = s.raw_dump().unwrap();
        assert!(snap.is_none());
        s.install_snapshot(b"later").unwrap();
        s.restore_raw(snap, log).unwrap();
        let r = s.recover().unwrap();
        assert!(r.snapshot.is_none(), "no phantom empty snapshot");
        assert_eq!(r.log, vec![b"pre-snapshot era".to_vec()]);
    }

    #[test]
    fn disk_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "teechain-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut s = PersistentStore::on_disk(&dir).unwrap();
            s.install_snapshot(b"disk-snap").unwrap();
            s.append_commit(b"disk-rec").unwrap();
        }
        {
            let mut s = PersistentStore::on_disk(&dir).unwrap();
            let r = s.recover().unwrap();
            assert_eq!(r.snapshot.as_deref(), Some(&b"disk-snap"[..]));
            assert_eq!(r.log, vec![b"disk-rec".to_vec()]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
