//! Durable host-side storage for Teechain's persistent-storage fault
//! tolerance (§6.2 of the paper).
//!
//! The paper offers two interchangeable defences against TEE failure:
//! committee-chain replication (Alg. 3, implemented in
//! `teechain::replication`) and *persistent storage backed by monotonic
//! counters*. This crate is the storage engine behind the second: an
//! append-only write-ahead log of sealed state deltas, a sealed full-state
//! snapshot with log compaction, and a recovery read that hands both back
//! to a restarted enclave.
//!
//! Trust model: everything stored here is **untrusted**. Blobs are sealed
//! (authenticated-encrypted) by the enclave before they reach this crate,
//! and every commit embeds a monotonic-counter value, so a malicious host
//! can at worst *lose* suffixes of the log — which the enclave detects on
//! recovery as a roll-back and refuses (`ProtocolError::StaleState`). The
//! CRC32 framing below is *not* a security mechanism; it distinguishes the
//! benign torn tail of a crashed append from a clean end-of-log, exactly
//! like a database WAL.
//!
//! Layout:
//!
//! * [`crc32`] — the IEEE CRC32 used by the record framing.
//! * [`media`] — byte-level storage backends: [`MemMedia`] for
//!   simulations (with torn-write fault injection) and [`FileMedia`] for
//!   real disks.
//! * [`wal`] — length + CRC32 record framing and torn-tail-aware scans.
//! * [`store`] — [`PersistentStore`]: group-committed appends, snapshot
//!   installation with compaction, and [`PersistentStore::recover`].

pub mod crc32;
pub mod media;
pub mod store;
pub mod wal;

pub use media::{FileMedia, Media, MemMedia};
pub use store::{PersistentStore, Recovery, SharedStore, StoreStats};
