//! CRC32 (IEEE 802.3, reflected) for WAL record framing.

/// Reflected polynomial of the IEEE CRC32.
const POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"teechain-wal-record");
        let mut data = b"teechain-wal-record".to_vec();
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
