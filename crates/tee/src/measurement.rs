//! Enclave measurements: the identity of the *code* running in a TEE.

use teechain_crypto::sha256::tagged_hash;
use teechain_util::codec::{Decode, Encode, Reader, WireError};
use teechain_util::hex;

/// A digest identifying an enclave program (SGX's `MRENCLAVE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    /// Computes the measurement of a program from its name and version.
    /// In real SGX this is a hash of the loaded pages; name+version is the
    /// simulation equivalent (two enclaves agree iff they run the same
    /// build of the same program).
    pub fn of_program(name: &str, version: u32) -> Self {
        Measurement(tagged_hash(
            "teechain/measurement",
            &[name.as_bytes(), &version.to_le_bytes()],
        ))
    }

    /// Short printable fingerprint.
    pub fn fingerprint(&self) -> String {
        hex::encode(&self.0[..4])
    }
}

impl Encode for Measurement {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for Measurement {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Measurement(r.read()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_program_same_measurement() {
        assert_eq!(
            Measurement::of_program("teechain", 1),
            Measurement::of_program("teechain", 1)
        );
    }

    #[test]
    fn version_changes_measurement() {
        assert_ne!(
            Measurement::of_program("teechain", 1),
            Measurement::of_program("teechain", 2)
        );
    }

    #[test]
    fn name_changes_measurement() {
        assert_ne!(
            Measurement::of_program("teechain", 1),
            Measurement::of_program("malware", 1)
        );
    }
}
