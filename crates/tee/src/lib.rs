#![warn(missing_docs)]

//! A simulated trusted execution environment.
//!
//! The Teechain protocols consume an *abstract* TEE — the paper formalizes
//! it as the ideal functionality `F_TEE` (Appendix A.2): a container that
//! runs a program with confidentiality and integrity, generates keys
//! inside, can prove to remote parties what it is running (remote
//! attestation), can seal state to untrusted storage, and offers throttled
//! monotonic counters. Crucially, TEEs may *fail*: they can crash (losing
//! volatile state) and they can be *compromised* (Foreshadow-style attacks,
//! \[67\]), leaking secrets to the adversary. This crate implements exactly
//! that contract plus explicit fault injection:
//!
//! * [`measurement`] — program identities.
//! * [`attest`] — a simulated manufacturer root, device keys and quotes.
//! * [`sealing`] — authenticated encryption of state to untrusted storage.
//! * [`counter`] — monotonic counters throttled to the SGX-realistic rate
//!   (the paper emulates them with a 100 ms delay; so do we, §7).
//! * [`enclave`] — the container: ecall dispatch, crash, compromise.

pub mod attest;
pub mod counter;
pub mod enclave;
pub mod measurement;
pub mod sealing;

pub use attest::{DeviceIdentity, Quote, TrustRoot};
pub use counter::{CounterError, MonotonicCounter};
pub use enclave::{Enclave, EnclaveEnv, EnclaveError, EnclaveProgram};
pub use measurement::Measurement;
