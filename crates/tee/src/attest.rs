//! Remote attestation: a simulated manufacturer PKI.
//!
//! Real SGX attestation involves EPID group signatures and Intel's
//! attestation service; the property consumed by Teechain is much simpler
//! (Alg. 1 line 17: "remote attestation ensures TEE validity"): a verifier
//! holding the manufacturer's public key can check that a *quote* was
//! produced by a genuine device running a specific program and binding
//! specific report data (here: the enclave's identity public key).

use crate::measurement::Measurement;
use teechain_crypto::schnorr::{self, Keypair, PublicKey, Signature};
use teechain_crypto::sha256::tagged_hash;

/// The simulated CPU manufacturer: the root of trust for all attestation.
pub struct TrustRoot {
    keypair: Keypair,
}

/// A per-CPU attestation key endorsed by the manufacturer.
#[derive(Clone)]
pub struct DeviceIdentity {
    keypair: Keypair,
    /// Manufacturer signature over the device public key.
    cert: Signature,
    /// Per-device sealing root (unique, never leaves the CPU).
    sealing_root: [u8; 32],
}

/// An attestation quote: proof that a genuine enclave with `measurement`
/// bound `report_data`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The attested program.
    pub measurement: Measurement,
    /// Caller-chosen data bound into the quote (64 bytes, like SGX).
    pub report_data: [u8; 64],
    /// The quoting device's public key.
    pub device_pk: PublicKey,
    /// Manufacturer endorsement of `device_pk`.
    pub device_cert: Signature,
    /// Device signature over (measurement, report_data).
    pub sig: Signature,
}

teechain_util::impl_wire_struct!(Quote {
    measurement,
    report_data,
    device_pk,
    device_cert,
    sig,
});

impl TrustRoot {
    /// Creates a manufacturer root from a seed.
    pub fn new(seed: u64) -> Self {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&seed.to_le_bytes());
        s[8..16].copy_from_slice(b"trustrt\0");
        Self {
            keypair: Keypair::from_seed(&s),
        }
    }

    /// The manufacturer's public verification key. Distributed out-of-band
    /// to every participant (as Intel's root certificates are).
    pub fn public_key(&self) -> PublicKey {
        self.keypair.pk
    }

    /// Provisions a new device ("CPU") with an endorsed attestation key.
    pub fn issue_device(&self, seed: u64) -> DeviceIdentity {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&seed.to_le_bytes());
        s[8..16].copy_from_slice(b"device\0\0");
        let keypair = Keypair::from_seed(&s);
        let cert = self.keypair.sign(&device_cert_msg(&keypair.pk));
        let sealing_root = tagged_hash("teechain/sealing-root", &[&s]);
        DeviceIdentity {
            keypair,
            cert,
            sealing_root,
        }
    }
}

fn device_cert_msg(pk: &PublicKey) -> Vec<u8> {
    let mut msg = b"teechain/device-cert".to_vec();
    msg.extend_from_slice(&pk.to_bytes());
    msg
}

fn quote_msg(measurement: &Measurement, report_data: &[u8; 64]) -> Vec<u8> {
    let mut msg = b"teechain/quote".to_vec();
    msg.extend_from_slice(&measurement.0);
    msg.extend_from_slice(report_data);
    msg
}

impl DeviceIdentity {
    /// Produces a quote for an enclave with `measurement` binding
    /// `report_data`.
    pub fn quote(&self, measurement: Measurement, report_data: [u8; 64]) -> Quote {
        Quote {
            measurement,
            report_data,
            device_pk: self.keypair.pk,
            device_cert: self.cert,
            sig: self.keypair.sign(&quote_msg(&measurement, &report_data)),
        }
    }

    /// The device sealing root; key material derived from it never leaves
    /// the enclave boundary (used by [`crate::sealing`]).
    pub(crate) fn sealing_root(&self) -> &[u8; 32] {
        &self.sealing_root
    }
}

impl Quote {
    /// Verifies the quote against the manufacturer key, checking both the
    /// device endorsement and the quote signature.
    pub fn verify(&self, manufacturer: &PublicKey) -> bool {
        schnorr::verify(
            manufacturer,
            &device_cert_msg(&self.device_pk),
            &self.device_cert,
        ) && schnorr::verify(
            &self.device_pk,
            &quote_msg(&self.measurement, &self.report_data),
            &self.sig,
        )
    }

    /// Verifies the quote and additionally pins the expected measurement —
    /// the check every Teechain TEE performs before opening a secure
    /// channel to a peer.
    pub fn verify_for(&self, manufacturer: &PublicKey, expected: &Measurement) -> bool {
        self.measurement == *expected && self.verify(manufacturer)
    }
}

/// Packs a 32-byte value into SGX-style 64-byte report data.
pub fn report_data_from(bytes32: &[u8; 32]) -> [u8; 64] {
    let mut out = [0u8; 64];
    out[..32].copy_from_slice(bytes32);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_util::codec::{Decode, Encode};

    fn setup() -> (TrustRoot, DeviceIdentity) {
        let root = TrustRoot::new(1);
        let dev = root.issue_device(7);
        (root, dev)
    }

    #[test]
    fn valid_quote_verifies() {
        let (root, dev) = setup();
        let m = Measurement::of_program("teechain", 1);
        let q = dev.quote(m, [9u8; 64]);
        assert!(q.verify(&root.public_key()));
        assert!(q.verify_for(&root.public_key(), &m));
    }

    #[test]
    fn wrong_measurement_rejected() {
        let (root, dev) = setup();
        let q = dev.quote(Measurement::of_program("malware", 1), [9u8; 64]);
        assert!(!q.verify_for(&root.public_key(), &Measurement::of_program("teechain", 1)));
    }

    #[test]
    fn forged_device_rejected() {
        let (root, _) = setup();
        let rogue_root = TrustRoot::new(99);
        let rogue_dev = rogue_root.issue_device(1);
        let q = rogue_dev.quote(Measurement::of_program("teechain", 1), [0u8; 64]);
        // The rogue manufacturer's devices do not verify under the real root.
        assert!(!q.verify(&root.public_key()));
    }

    #[test]
    fn tampered_report_data_rejected() {
        let (root, dev) = setup();
        let mut q = dev.quote(Measurement::of_program("teechain", 1), [9u8; 64]);
        q.report_data[0] ^= 1;
        assert!(!q.verify(&root.public_key()));
    }

    #[test]
    fn tampered_measurement_rejected() {
        let (root, dev) = setup();
        let mut q = dev.quote(Measurement::of_program("teechain", 1), [9u8; 64]);
        q.measurement = Measurement::of_program("teechain", 2);
        assert!(!q.verify(&root.public_key()));
    }

    #[test]
    fn quote_codec_roundtrip() {
        let (_, dev) = setup();
        let q = dev.quote(Measurement::of_program("teechain", 1), [3u8; 64]);
        let decoded = Quote::decode_exact(&q.encode_to_vec()).unwrap();
        assert_eq!(decoded, q);
    }
}
