//! The enclave container: program isolation, ecall dispatch and fault
//! injection.
//!
//! Mirrors the paper's `F_TEE` ideal functionality (Appendix A.2): install
//! a program, then `resume` it with inputs; outputs can be attested. On top
//! of the ideal functionality we expose the two failure modes the paper's
//! fault model requires: **crash** (volatile state lost; hardware counters
//! survive) and **compromise** (the adversary reads and drives the program
//! state directly — the abstraction of a side-channel key-extraction
//! attack \[67\]).

use crate::attest::{DeviceIdentity, Quote};
use crate::counter::{CounterError, MonotonicCounter};
use crate::measurement::Measurement;
use crate::sealing::{SealError, Sealer};
use teechain_util::rng::Xoshiro256;

/// The services an enclave program may use, provided by the "hardware".
pub struct EnclaveEnv {
    rng: Xoshiro256,
    device: DeviceIdentity,
    measurement: Measurement,
    sealer: Sealer,
    counters: Vec<MonotonicCounter>,
    now_ns: u64,
}

impl EnclaveEnv {
    /// Current time in nanoseconds. Enclaves have no trusted clock in SGX;
    /// Teechain only uses time for counter throttling and never for
    /// security decisions, matching the paper's asynchronous model.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// In-enclave entropy (for key generation).
    pub fn random_bytes32(&mut self) -> [u8; 32] {
        self.rng.next_bytes32()
    }

    /// Allocates a new monotonic counter; returns its id.
    pub fn create_counter(&mut self, throttle_ns: u64) -> usize {
        self.counters.push(MonotonicCounter::new(throttle_ns));
        self.counters.len() - 1
    }

    /// Increments counter `id` (throttled).
    pub fn increment_counter(&mut self, id: usize) -> Result<u64, CounterError> {
        let now = self.now_ns;
        self.counters[id].increment(now)
    }

    /// Reads counter `id`.
    pub fn read_counter(&self, id: usize) -> u64 {
        self.counters[id].read()
    }

    /// Number of counters provisioned on this device (counters survive
    /// enclave restarts, so a restored program reuses existing ids).
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }

    /// Earliest time counter `id` can next be incremented.
    pub fn counter_ready_at(&self, id: usize) -> u64 {
        self.counters[id].ready_at()
    }

    /// Produces an attestation quote binding `report_data`.
    pub fn quote(&self, report_data: [u8; 64]) -> Quote {
        self.device.quote(self.measurement, report_data)
    }

    /// Seals state to untrusted storage (see [`crate::sealing`]).
    pub fn seal(&self, counter: u64, state: &[u8]) -> Vec<u8> {
        self.sealer.seal(counter, state)
    }

    /// Unseals state from untrusted storage.
    pub fn unseal(&self, min_counter: u64, blob: &[u8]) -> Result<(u64, Vec<u8>), SealError> {
        self.sealer.unseal(min_counter, blob)
    }

    /// This enclave's measurement.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }
}

/// A program runnable inside an [`Enclave`].
pub trait EnclaveProgram {
    /// Ecall request type.
    type Cmd;
    /// Ecall response type.
    type Resp;

    /// Handles one ecall.
    fn handle(&mut self, env: &mut EnclaveEnv, cmd: Self::Cmd) -> Self::Resp;
}

/// Enclave call failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveError {
    /// The enclave has crashed; volatile state is gone.
    Crashed,
}

impl std::fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnclaveError::Crashed => write!(f, "enclave crashed"),
        }
    }
}

impl std::error::Error for EnclaveError {}

/// An enclave instance hosting a program `P`.
pub struct Enclave<P> {
    program: Option<P>,
    env: EnclaveEnv,
    compromised: bool,
}

impl<P: EnclaveProgram> Enclave<P> {
    /// Launches `program` on `device`.
    pub fn launch(device: DeviceIdentity, measurement: Measurement, seed: u64, program: P) -> Self {
        let sealer = Sealer::new(&device, &measurement);
        Self {
            program: Some(program),
            env: EnclaveEnv {
                rng: Xoshiro256::new(seed),
                device,
                measurement,
                sealer,
                counters: Vec::new(),
                now_ns: 0,
            },
            compromised: false,
        }
    }

    /// Performs an ecall at time `now_ns`.
    pub fn call(&mut self, now_ns: u64, cmd: P::Cmd) -> Result<P::Resp, EnclaveError> {
        let program = self.program.as_mut().ok_or(EnclaveError::Crashed)?;
        self.env.now_ns = self.env.now_ns.max(now_ns);
        Ok(program.handle(&mut self.env, cmd))
    }

    /// Crashes the enclave: all volatile program state is lost. Hardware
    /// monotonic counters and the sealing key survive (they live in the
    /// CPU package, which is the whole point of §6.2).
    pub fn crash(&mut self) -> Option<P> {
        self.program.take()
    }

    /// Restarts the enclave with a fresh program instance (typically one
    /// that immediately unseals persisted state).
    pub fn restart(&mut self, program: P) {
        self.program = Some(program);
    }

    /// True if the enclave is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.program.is_none()
    }

    /// Compromises the enclave: models a side-channel attack that breaks
    /// confidentiality and integrity. The returned references give the
    /// adversary direct access to program state *and* hardware services,
    /// letting tests forge messages with stolen keys.
    pub fn compromise(&mut self) -> Option<(&mut P, &mut EnclaveEnv)> {
        self.compromised = true;
        let program = self.program.as_mut()?;
        Some((program, &mut self.env))
    }

    /// True once [`Enclave::compromise`] has been invoked.
    pub fn is_compromised(&self) -> bool {
        self.compromised
    }

    /// Read-only program access for assertions in tests and for the host's
    /// *untrusted* bookkeeping (a real host can observe its own requests;
    /// we additionally let it peek for test convenience — never used by
    /// protocol logic).
    pub fn program(&self) -> Option<&P> {
        self.program.as_ref()
    }

    /// The enclave's measurement.
    pub fn measurement(&self) -> Measurement {
        self.env.measurement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::TrustRoot;

    /// A toy program: stores a secret, returns it only to the right query.
    struct Vault {
        secret: u64,
        counter_id: Option<usize>,
    }

    enum Cmd {
        Put(u64),
        Get,
        Bump,
        Quote([u8; 64]),
    }

    enum Resp {
        Ok,
        Value(u64),
        Counter(Result<u64, CounterError>),
        Quoted(Box<Quote>),
    }

    impl EnclaveProgram for Vault {
        type Cmd = Cmd;
        type Resp = Resp;

        fn handle(&mut self, env: &mut EnclaveEnv, cmd: Cmd) -> Resp {
            match cmd {
                Cmd::Put(v) => {
                    self.secret = v;
                    Resp::Ok
                }
                Cmd::Get => Resp::Value(self.secret),
                Cmd::Bump => {
                    let id = *self
                        .counter_id
                        .get_or_insert_with(|| env.create_counter(100));
                    Resp::Counter(env.increment_counter(id))
                }
                Cmd::Quote(data) => Resp::Quoted(Box::new(env.quote(data))),
            }
        }
    }

    fn launch() -> (TrustRoot, Enclave<Vault>) {
        let root = TrustRoot::new(1);
        let dev = root.issue_device(5);
        let m = Measurement::of_program("vault", 1);
        (
            root,
            Enclave::launch(
                dev,
                m,
                42,
                Vault {
                    secret: 0,
                    counter_id: None,
                },
            ),
        )
    }

    #[test]
    fn ecall_roundtrip() {
        let (_, mut e) = launch();
        e.call(0, Cmd::Put(7)).unwrap();
        match e.call(0, Cmd::Get).unwrap() {
            Resp::Value(7) => {}
            _ => panic!("wrong value"),
        }
    }

    #[test]
    fn crash_loses_volatile_state() {
        let (_, mut e) = launch();
        e.call(0, Cmd::Put(7)).unwrap();
        e.crash();
        assert!(e.is_crashed());
        assert!(matches!(e.call(0, Cmd::Get), Err(EnclaveError::Crashed)));
        e.restart(Vault {
            secret: 0,
            counter_id: None,
        });
        match e.call(0, Cmd::Get).unwrap() {
            Resp::Value(0) => {}
            _ => panic!("state should be fresh after restart"),
        }
    }

    #[test]
    fn counters_survive_crash() {
        let (_, mut e) = launch();
        match e.call(0, Cmd::Bump).unwrap() {
            Resp::Counter(Ok(1)) => {}
            _ => panic!("first bump should give 1"),
        }
        e.crash();
        e.restart(Vault {
            secret: 0,
            counter_id: Some(0),
        });
        // The hardware counter retains its value and its throttle state.
        match e.call(1_000_000_000, Cmd::Bump).unwrap() {
            Resp::Counter(Ok(2)) => {}
            other => panic!(
                "counter should continue from hardware value, got {:?}",
                matches!(other, Resp::Counter(_))
            ),
        }
    }

    #[test]
    fn counter_throttled_through_env() {
        let (_, mut e) = launch();
        assert!(matches!(
            e.call(0, Cmd::Bump).unwrap(),
            Resp::Counter(Ok(1))
        ));
        assert!(matches!(
            e.call(10, Cmd::Bump).unwrap(),
            Resp::Counter(Err(CounterError::Throttled { ready_at: 100 }))
        ));
        assert!(matches!(
            e.call(100, Cmd::Bump).unwrap(),
            Resp::Counter(Ok(2))
        ));
    }

    #[test]
    fn quotes_verify_under_root() {
        let (root, mut e) = launch();
        let data = [9u8; 64];
        match e.call(0, Cmd::Quote(data)).unwrap() {
            Resp::Quoted(q) => {
                assert!(q.verify_for(&root.public_key(), &Measurement::of_program("vault", 1)));
            }
            _ => panic!("expected quote"),
        }
    }

    #[test]
    fn compromise_leaks_secrets() {
        let (_, mut e) = launch();
        e.call(0, Cmd::Put(1234)).unwrap();
        assert!(!e.is_compromised());
        let (program, _env) = e.compromise().unwrap();
        assert_eq!(program.secret, 1234);
        assert!(e.is_compromised());
    }

    #[test]
    fn time_is_monotonic_inside_enclave() {
        let (_, mut e) = launch();
        e.call(100, Cmd::Put(1)).unwrap();
        // A stale host-supplied timestamp cannot move enclave time backward
        // (hosts are untrusted; letting time regress would unthrottle the
        // counters).
        e.call(50, Cmd::Put(2)).unwrap();
        assert!(matches!(
            e.call(0, Cmd::Bump).unwrap(),
            Resp::Counter(Ok(1))
        ));
        assert!(matches!(
            e.call(99, Cmd::Bump).unwrap(),
            Resp::Counter(Err(_))
        ));
    }
}
