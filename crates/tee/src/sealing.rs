//! Sealed storage: authenticated encryption of enclave state to untrusted
//! media, keyed by (device, measurement).
//!
//! Matches SGX `MRENCLAVE` sealing policy: only the same program on the
//! same CPU can unseal. Sealing alone does **not** protect against
//! roll-back — an attacker can replay an old sealed blob — which is why
//! Teechain pairs it with monotonic counters (§6.2); the counter value is
//! embedded in the blob and checked on unseal.

use crate::attest::DeviceIdentity;
use crate::measurement::Measurement;
use teechain_crypto::aead::{Aead, AeadError};
use teechain_crypto::sha256::hkdf;

/// Sealing context derived from a device and a program measurement.
pub struct Sealer {
    aead: Aead,
}

/// Unsealing failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// Authentication failed: wrong device, wrong program, or corruption.
    BadSeal,
    /// The blob's embedded counter is older than the expected value —
    /// a roll-back (replay of stale state) was attempted.
    RolledBack {
        /// Counter value inside the blob.
        found: u64,
        /// Minimum acceptable value.
        expected: u64,
    },
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::BadSeal => write!(f, "sealed blob failed authentication"),
            SealError::RolledBack { found, expected } => {
                write!(
                    f,
                    "stale sealed state: counter {found} < expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for SealError {}

impl From<AeadError> for SealError {
    fn from(_: AeadError) -> Self {
        SealError::BadSeal
    }
}

impl Sealer {
    /// Derives the sealing key for `measurement` on `device`.
    pub fn new(device: &DeviceIdentity, measurement: &Measurement) -> Self {
        let okm = hkdf(
            b"teechain-seal-v1",
            device.sealing_root(),
            &measurement.0,
            32,
        );
        let key: [u8; 32] = okm.try_into().unwrap();
        Self {
            aead: Aead::new(&key),
        }
    }

    /// Seals `state`, embedding `counter` (a monotonic counter value) for
    /// roll-back detection.
    pub fn seal(&self, counter: u64, state: &[u8]) -> Vec<u8> {
        let mut blob = counter.to_le_bytes().to_vec();
        blob.extend_from_slice(&self.aead.seal(counter, &counter.to_le_bytes(), state));
        blob
    }

    /// Unseals a blob, requiring its embedded counter to be at least
    /// `min_counter`.
    pub fn unseal(&self, min_counter: u64, blob: &[u8]) -> Result<(u64, Vec<u8>), SealError> {
        if blob.len() < 8 {
            return Err(SealError::BadSeal);
        }
        let counter = u64::from_le_bytes(blob[..8].try_into().unwrap());
        let state = self
            .aead
            .open(counter, &counter.to_le_bytes(), &blob[8..])?;
        if counter < min_counter {
            return Err(SealError::RolledBack {
                found: counter,
                expected: min_counter,
            });
        }
        Ok((counter, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::TrustRoot;

    fn sealer(dev_seed: u64, program: &str) -> Sealer {
        let root = TrustRoot::new(1);
        let dev = root.issue_device(dev_seed);
        Sealer::new(&dev, &Measurement::of_program(program, 1))
    }

    #[test]
    fn roundtrip() {
        let s = sealer(1, "teechain");
        let blob = s.seal(5, b"enclave state");
        let (counter, state) = s.unseal(5, &blob).unwrap();
        assert_eq!(counter, 5);
        assert_eq!(state, b"enclave state");
    }

    #[test]
    fn other_device_cannot_unseal() {
        let a = sealer(1, "teechain");
        let b = sealer(2, "teechain");
        let blob = a.seal(1, b"secret");
        assert_eq!(b.unseal(1, &blob), Err(SealError::BadSeal));
    }

    #[test]
    fn other_program_cannot_unseal() {
        let root = TrustRoot::new(1);
        let dev = root.issue_device(1);
        let a = Sealer::new(&dev, &Measurement::of_program("teechain", 1));
        let b = Sealer::new(&dev, &Measurement::of_program("teechain", 2));
        let blob = a.seal(1, b"secret");
        assert_eq!(b.unseal(1, &blob), Err(SealError::BadSeal));
    }

    #[test]
    fn rollback_detected() {
        let s = sealer(1, "teechain");
        let old = s.seal(3, b"old state");
        let _new = s.seal(4, b"new state");
        // Replaying the old blob when the counter says 4 must fail.
        assert_eq!(
            s.unseal(4, &old),
            Err(SealError::RolledBack {
                found: 3,
                expected: 4
            })
        );
    }

    #[test]
    fn tampered_counter_prefix_detected() {
        let s = sealer(1, "teechain");
        let mut blob = s.seal(3, b"state");
        // Bumping the plaintext counter prefix without re-encrypting breaks
        // the AEAD binding (counter is both nonce and associated data).
        blob[0] = blob[0].wrapping_add(1);
        assert_eq!(s.unseal(0, &blob), Err(SealError::BadSeal));
    }

    #[test]
    fn truncated_blob_rejected() {
        let s = sealer(1, "teechain");
        assert_eq!(s.unseal(0, &[1, 2, 3]), Err(SealError::BadSeal));
    }

    #[test]
    fn any_single_bit_flip_rejected() {
        // Exhaustive corruption sweep: flipping any single bit anywhere
        // in the blob — counter prefix, ciphertext or MAC — must fail
        // authentication (or, for the plaintext counter prefix, break
        // the AEAD binding). A seal/unseal roundtrip must never yield
        // modified state.
        let s = sealer(1, "teechain");
        let blob = s.seal(7, b"wal-record: pay 100 on channel 3");
        for i in 0..blob.len() {
            for bit in 0..8 {
                let mut bad = blob.clone();
                bad[i] ^= 1 << bit;
                match s.unseal(0, &bad) {
                    Err(SealError::BadSeal) => {}
                    Ok((counter, state)) => panic!(
                        "flip at byte {i} bit {bit} accepted: counter {counter}, state {state:?}"
                    ),
                    Err(other) => panic!("flip at byte {i} bit {bit}: unexpected {other:?}"),
                }
            }
        }
        // The pristine blob still unseals.
        assert!(s.unseal(7, &blob).is_ok());
    }

    #[test]
    fn bit_flipped_payload_never_leaks_plaintext() {
        // Truncations at every length are rejected too (a torn snapshot
        // is not a valid snapshot).
        let s = sealer(3, "teechain");
        let blob = s.seal(1, b"secret channel state");
        for len in 0..blob.len() {
            assert_eq!(
                s.unseal(0, &blob[..len]),
                Err(SealError::BadSeal),
                "len {len}"
            );
        }
    }
}
