//! Hardware monotonic counters with SGX-realistic throttling.
//!
//! Intel SGX throttles counter increments to roughly ten per second; the
//! paper emulates them with a 100 ms delay (§7, Implementation) and
//! observes that this caps stable-storage fault tolerance at 10 tx/s
//! (Table 1). The counter here enforces the same throttle against the
//! caller-supplied clock (simulated or wall time, in nanoseconds).

/// Default throttle between increments: 100 ms, as measured in [57, 41]
/// and emulated by the paper.
pub const DEFAULT_THROTTLE_NS: u64 = 100_000_000;

/// Errors from counter operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterError {
    /// The counter is rate-limited; retry at the contained time (ns).
    Throttled {
        /// Earliest time (ns) the next increment will succeed.
        ready_at: u64,
    },
}

impl std::fmt::Display for CounterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CounterError::Throttled { ready_at } => {
                write!(f, "counter throttled until t={ready_at}ns")
            }
        }
    }
}

impl std::error::Error for CounterError {}

/// A monotonic counter that survives enclave crashes (it models a fuse /
/// NVRAM counter in the CPU package, not enclave memory).
#[derive(Debug, Clone)]
pub struct MonotonicCounter {
    value: u64,
    last_increment_ns: Option<u64>,
    throttle_ns: u64,
}

impl MonotonicCounter {
    /// Creates a counter at zero with the given throttle.
    pub fn new(throttle_ns: u64) -> Self {
        Self {
            value: 0,
            last_increment_ns: None,
            throttle_ns,
        }
    }

    /// Creates a counter with the SGX-realistic 100 ms throttle.
    pub fn sgx_realistic() -> Self {
        Self::new(DEFAULT_THROTTLE_NS)
    }

    /// Reads the current value (never throttled).
    pub fn read(&self) -> u64 {
        self.value
    }

    /// The configured throttle interval in nanoseconds.
    pub fn throttle_ns(&self) -> u64 {
        self.throttle_ns
    }

    /// Attempts to increment at time `now_ns`; returns the new value, or
    /// [`CounterError::Throttled`] with the earliest retry time.
    pub fn increment(&mut self, now_ns: u64) -> Result<u64, CounterError> {
        if let Some(last) = self.last_increment_ns {
            let ready_at = last + self.throttle_ns;
            if now_ns < ready_at {
                return Err(CounterError::Throttled { ready_at });
            }
        }
        self.last_increment_ns = Some(now_ns);
        self.value += 1;
        Ok(self.value)
    }

    /// Earliest time an increment will succeed (0 if immediately).
    pub fn ready_at(&self) -> u64 {
        self.last_increment_ns
            .map(|t| t + self.throttle_ns)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_monotonically() {
        let mut c = MonotonicCounter::new(0);
        assert_eq!(c.increment(0).unwrap(), 1);
        assert_eq!(c.increment(0).unwrap(), 2);
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn throttle_enforced() {
        let mut c = MonotonicCounter::new(100);
        assert_eq!(c.increment(1000).unwrap(), 1);
        assert_eq!(
            c.increment(1050),
            Err(CounterError::Throttled { ready_at: 1100 })
        );
        // Value unchanged by the failed attempt.
        assert_eq!(c.read(), 1);
        assert_eq!(c.increment(1100).unwrap(), 2);
    }

    #[test]
    fn first_increment_never_throttled() {
        let mut c = MonotonicCounter::sgx_realistic();
        assert_eq!(c.ready_at(), 0);
        assert_eq!(c.increment(0).unwrap(), 1);
        assert_eq!(c.ready_at(), DEFAULT_THROTTLE_NS);
    }

    #[test]
    fn monotonic_across_simulated_restart() {
        // The counter models fuse/NVRAM hardware in the CPU package: an
        // enclave restart reuses the *same* counter object (see
        // `EnclaveEnv`), so the value and the throttle state must carry
        // over — a restarted enclave can neither reset the count nor
        // dodge the throttle by "rebooting".
        let mut c = MonotonicCounter::new(100);
        assert_eq!(c.increment(1_000).unwrap(), 1);
        assert_eq!(c.increment(1_100).unwrap(), 2);
        // ---- enclave crash + restart happens here; the program is gone,
        // the counter persists ----
        assert_eq!(c.read(), 2, "value survives restart");
        assert_eq!(
            c.increment(1_150),
            Err(CounterError::Throttled { ready_at: 1_200 }),
            "throttle state survives restart"
        );
        assert_eq!(c.increment(1_200).unwrap(), 3);
    }

    #[test]
    fn value_never_decreases_even_when_clock_regresses() {
        // A malicious host feeding stale timestamps can delay increments
        // (liveness) but can never move the value backwards (safety).
        let mut c = MonotonicCounter::new(100);
        let mut last = 0;
        for now in [0u64, 500, 100, 50, 700, 650, 900] {
            if let Ok(v) = c.increment(now) {
                assert!(v > last, "value must strictly increase");
                last = v;
            }
            assert!(c.read() >= last);
        }
        assert_eq!(c.read(), last);
    }

    #[test]
    fn ten_per_second_rate() {
        // With the SGX-realistic throttle, exactly 10 increments fit in
        // one second of simulated time — the Table 1 stable-storage cap.
        let mut c = MonotonicCounter::sgx_realistic();
        let mut t = 0u64;
        let mut count = 0;
        while t < 1_000_000_000 {
            match c.increment(t) {
                Ok(_) => {
                    count += 1;
                    t += 1_000_000; // Enclave retries every 1 ms.
                }
                Err(CounterError::Throttled { ready_at }) => t = ready_at,
            }
        }
        assert_eq!(count, 10);
    }
}
