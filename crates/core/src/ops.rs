//! The correlated-operation layer: every host command submitted through
//! this API gets an [`OpId`], and the protocol layer delivers **exactly
//! one** terminal [`Completion`] per operation — a typed success payload
//! ([`OpOutput`]) or a typed failure ([`OpError`]) carrying the real
//! [`ProtocolError`], including remote rejections and timeouts that a
//! fire-and-forget command interface would silently swallow.
//!
//! This is the operation-history discipline of the linearizability
//! literature applied to the host API: an explicit invoke (submit) and
//! response (completion) pair per operation, so latency is measured — not
//! inferred — and error paths are values, not absent events.
//!
//! Layering:
//!
//! * `OpTracker` (crate-internal) lives inside the untrusted host
//!   ([`crate::node::TeechainNode`]): it correlates terminal
//!   [`HostEvent`]s with pending operations, turns them into
//!   completions, and arms deadline/retry timers inside the simulation —
//!   so completions are ordinary deterministic events that merge
//!   identically under the sequential and sharded engines.
//! * [`Pending`] is the typed token harness layers hand out: resolve it
//!   with `Cluster::wait` / `BenchCluster::wait`, which run the engine to
//!   quiescence (or the deadline) and extract the typed result.
//! * `HostEvent` remains only as the host's internal notification stream
//!   for genuinely unsolicited events (e.g. `VerifyDeposit` callbacks);
//!   no caller outside `crates/core` touches it.

use crate::enclave::{Command, HostEvent};
use crate::swap::SwapOutcome;
use crate::types::{ChannelId, CommitteeSpec, Deposit, ProtocolError, RouteId, SwapId};
use std::collections::{HashMap, VecDeque};
use teechain_blockchain::{OutPoint, TxId};
use teechain_crypto::schnorr::PublicKey;

/// Identifies one submitted operation, unique across the whole cluster:
/// the submitting node plus a per-node sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId {
    /// The simulator node the operation was submitted on.
    pub node: u32,
    /// Per-node submission sequence number (starts at 1).
    pub seq: u64,
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op#{}.{}", self.node, self.seq)
    }
}

/// How a settlement reached the terminal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettleKind {
    /// Cooperative off-chain termination: every deposit dissociated, zero
    /// blockchain writes (Alg. 1 line 106).
    OffChain,
    /// A settlement transaction carrying the final balances was
    /// broadcast.
    OnChain(TxId),
}

/// Typed success payload of a completed operation.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutput {
    /// The enclave's identity key (`Command::GetIdentity`).
    Identity(PublicKey),
    /// A fresh in-enclave blockchain address (`Command::NewAddress`).
    Address(PublicKey),
    /// An m-of-n committee spec (`Command::NewCommitteeAddress`).
    Committee(CommitteeSpec),
    /// Secure session established with the peer (`Command::StartSession`).
    SessionEstablished(PublicKey),
    /// Channel fully open on both sides (`Command::NewChannel`).
    ChannelOpen(ChannelId),
    /// A deposit was minted, confirmed and registered (the composite
    /// fund-deposit operation).
    DepositFunded(Deposit),
    /// The counterparty approved our deposit (`Command::ApproveDeposit`).
    DepositApproved {
        /// The approving counterparty.
        remote: PublicKey,
        /// Our deposit.
        outpoint: OutPoint,
    },
    /// Deposit associated with a channel (`Command::AssociateDeposit`).
    DepositAssociated {
        /// The channel.
        chan: ChannelId,
        /// The deposit.
        outpoint: OutPoint,
    },
    /// Deposit dissociated and free again (`Command::DissociateDeposit`).
    DepositDissociated {
        /// The channel.
        chan: ChannelId,
        /// The deposit.
        outpoint: OutPoint,
    },
    /// Our payment was acknowledged by the receiver (`Command::Pay` —
    /// the paper's latency endpoint).
    PaymentApplied {
        /// The channel.
        chan: ChannelId,
        /// Total amount applied.
        amount: u64,
        /// Batched logical payment count.
        count: u32,
    },
    /// A multi-hop payment completed end-to-end (`Command::PayMultihop`).
    MultihopDelivered {
        /// The route.
        route: RouteId,
        /// Amount delivered.
        amount: u64,
    },
    /// Channel settled (`Command::Settle` / `Command::ReleaseDeposit`).
    Settled {
        /// The channel (zeroed for a deposit release).
        chan: ChannelId,
        /// Off-chain or on-chain terminal state.
        kind: SettleKind,
    },
    /// A backup TEE joined our committee chain (`Command::AttachBackup`).
    BackupAttached(PublicKey),
    /// Replica summary after a force-freeze read (`Command::ReadReplica`).
    ReplicaState {
        /// Replicated channels.
        channels: usize,
        /// Replicated deposits.
        deposits: usize,
        /// Replication updates applied.
        applied_seq: u64,
    },
    /// Result of a co-sign request (`Command::CoSign`).
    CoSigned {
        /// Echoed request id.
        req_id: u64,
        /// True if verification failed and signing was refused.
        refused: bool,
    },
    /// Crash recovery replayed durable state (`Command::Recover` / the
    /// harness-level recover operation).
    Recovered {
        /// Channels restored.
        channels: usize,
        /// Deposits restored.
        deposits: usize,
        /// Durable commits replayed.
        commits: u64,
    },
    /// A cross-chain atomic swap resolved (`Command::Swap`). Both
    /// resolutions — redeemed on both ledgers or refunded on both — are
    /// successful completions; the payload says which.
    Swap(SwapOutcome),
    /// The command was accepted and has no asynchronous response (e.g.
    /// `Command::NewDeposit`, `Command::Eject`).
    Done,
}

impl OpOutput {
    /// Stable kind label, keying the per-op-type latency histograms in
    /// bench reports (`latency.<kind>` in `BENCH_*.json`).
    pub fn kind(&self) -> &'static str {
        match self {
            OpOutput::Identity(_) => "identity",
            OpOutput::Address(_) => "address",
            OpOutput::Committee(_) => "committee",
            OpOutput::SessionEstablished(_) => "session",
            OpOutput::ChannelOpen(_) => "channel_open",
            OpOutput::DepositFunded(_) => "deposit_funded",
            OpOutput::DepositApproved { .. } => "deposit_approved",
            OpOutput::DepositAssociated { .. } => "deposit_associated",
            OpOutput::DepositDissociated { .. } => "deposit_dissociated",
            OpOutput::PaymentApplied { .. } => "payment",
            OpOutput::MultihopDelivered { .. } => "multihop",
            OpOutput::Settled { .. } => "settle",
            OpOutput::BackupAttached(_) => "backup_attached",
            OpOutput::ReplicaState { .. } => "replica_state",
            OpOutput::CoSigned { .. } => "cosigned",
            OpOutput::Recovered { .. } => "recovered",
            OpOutput::Swap(_) => "swap",
            OpOutput::Done => "done",
        }
    }
}

/// Typed failure of a completed operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpError {
    /// The local enclave rejected the operation — synchronously (state
    /// checks, freeze, a full admission queue) or later, when its
    /// admission-queue entry expired, the channel closed underneath it,
    /// or the drain found the balance could not cover it.
    Rejected(ProtocolError),
    /// The operation reached the network and a remote participant
    /// refused it (e.g. a payment nack on a locked channel, or a
    /// multi-hop abort carrying the refusing hop's reason).
    Remote(ProtocolError),
    /// No terminal response arrived: the operation was declared dead at
    /// its deadline or when the network went quiescent (e.g. the peer
    /// crashed with the request on the wire). Correlation is per-key
    /// FIFO (the wire carries no operation ids), so a deadline must
    /// exceed the path round-trip: cancelling a *live* operation leaves
    /// its eventual response to match the next same-key submission.
    Timeout {
        /// Simulated time (ns) at which the operation was declared dead.
        at_ns: u64,
    },
}

impl OpError {
    /// The underlying protocol error, when one exists.
    pub fn protocol_error(&self) -> Option<&ProtocolError> {
        match self {
            OpError::Rejected(e) | OpError::Remote(e) => Some(e),
            OpError::Timeout { .. } => None,
        }
    }

    /// Stable accounting label (`op_errors` sections of the bench
    /// artifacts count completions per label).
    pub fn label(&self) -> String {
        match self {
            OpError::Rejected(e) => format!("rejected:{}", e.name()),
            OpError::Remote(e) => format!("remote:{}", e.name()),
            OpError::Timeout { .. } => "timeout".to_string(),
        }
    }
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::Rejected(e) => write!(f, "rejected locally: {e}"),
            OpError::Remote(e) => write!(f, "refused remotely: {e}"),
            OpError::Timeout { at_ns } => {
                write!(f, "no terminal response by t={} ns", at_ns)
            }
        }
    }
}

impl std::error::Error for OpError {}

impl From<ProtocolError> for OpError {
    fn from(e: ProtocolError) -> OpError {
        OpError::Rejected(e)
    }
}

/// The terminal record of one operation: delivered exactly once, stamped
/// with the simulated time at which the outcome became known.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The operation.
    pub op: OpId,
    /// Simulated time (ns) of the terminal outcome.
    pub time_ns: u64,
    /// Typed success payload or typed failure.
    pub outcome: Result<OpOutput, OpError>,
}

/// A typed token for an in-flight operation. Resolve it with the harness
/// `wait` methods, which run the engine until the completion exists (or
/// the operation is declared dead at quiescence) and extract `T`.
///
/// `Pending` is deliberately neither `Clone` nor `Copy`: an operation has
/// exactly one completion, and the token is consumed claiming it.
#[derive(Debug)]
pub struct Pending<T> {
    /// The correlated operation.
    pub op: OpId,
    marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Pending<T> {
    /// Wraps an operation id in a typed token.
    pub fn new(op: OpId) -> Pending<T> {
        Pending {
            op,
            marker: std::marker::PhantomData,
        }
    }
}

/// Types extractable from a successful [`OpOutput`]. Each typed harness
/// method constructs a [`Pending<T>`] whose `T` matches the output its
/// command produces.
pub trait OpResult: Sized {
    /// Extracts `Self`; `None` on a mismatched output variant (a harness
    /// bug, surfaced as a panic in `wait`).
    fn from_output(out: OpOutput) -> Option<Self>;
}

impl OpResult for OpOutput {
    fn from_output(out: OpOutput) -> Option<Self> {
        Some(out)
    }
}

impl OpResult for () {
    fn from_output(_: OpOutput) -> Option<Self> {
        Some(())
    }
}

impl OpResult for ChannelId {
    fn from_output(out: OpOutput) -> Option<Self> {
        match out {
            OpOutput::ChannelOpen(id) => Some(id),
            _ => None,
        }
    }
}

impl OpResult for PublicKey {
    fn from_output(out: OpOutput) -> Option<Self> {
        match out {
            OpOutput::Identity(pk)
            | OpOutput::Address(pk)
            | OpOutput::SessionEstablished(pk)
            | OpOutput::BackupAttached(pk) => Some(pk),
            _ => None,
        }
    }
}

impl OpResult for Deposit {
    fn from_output(out: OpOutput) -> Option<Self> {
        match out {
            OpOutput::DepositFunded(d) => Some(d),
            _ => None,
        }
    }
}

impl OpResult for CommitteeSpec {
    fn from_output(out: OpOutput) -> Option<Self> {
        match out {
            OpOutput::Committee(c) => Some(c),
            _ => None,
        }
    }
}

/// A completed direct payment (`Command::Pay` acknowledgement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Payment {
    /// The channel.
    pub chan: ChannelId,
    /// Total amount applied.
    pub amount: u64,
    /// Batched logical payment count.
    pub count: u32,
}

impl OpResult for Payment {
    fn from_output(out: OpOutput) -> Option<Self> {
        match out {
            OpOutput::PaymentApplied {
                chan,
                amount,
                count,
            } => Some(Payment {
                chan,
                amount,
                count,
            }),
            _ => None,
        }
    }
}

/// A completed multi-hop payment (`Command::PayMultihop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// The route.
    pub route: RouteId,
    /// Amount delivered end-to-end.
    pub amount: u64,
}

impl OpResult for Delivered {
    fn from_output(out: OpOutput) -> Option<Self> {
        match out {
            OpOutput::MultihopDelivered { route, amount } => Some(Delivered { route, amount }),
            _ => None,
        }
    }
}

/// A completed settlement (`Command::Settle`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Settlement {
    /// The channel.
    pub chan: ChannelId,
    /// Off-chain or on-chain terminal state.
    pub kind: SettleKind,
}

impl OpResult for Settlement {
    fn from_output(out: OpOutput) -> Option<Self> {
        match out {
            OpOutput::Settled { chan, kind } => Some(Settlement { chan, kind }),
            _ => None,
        }
    }
}

/// A completed crash recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Channels restored.
    pub channels: usize,
    /// Deposits restored.
    pub deposits: usize,
    /// Durable commits replayed.
    pub commits: u64,
}

impl OpResult for Recovery {
    fn from_output(out: OpOutput) -> Option<Self> {
        match out {
            OpOutput::Recovered {
                channels,
                deposits,
                commits,
            } => Some(Recovery {
                channels,
                deposits,
                commits,
            }),
            _ => None,
        }
    }
}

impl OpResult for SwapOutcome {
    fn from_output(out: OpOutput) -> Option<Self> {
        match out {
            OpOutput::Swap(o) => Some(o),
            _ => None,
        }
    }
}

/// Correlation key a pending operation waits on: the identifying payload
/// of the terminal [`HostEvent`] its command produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum MatchKey {
    Identity,
    Address,
    Committee,
    Session(PublicKey),
    ChannelOpen(ChannelId),
    DepositApproved(OutPoint),
    DepositAssociated(ChannelId, OutPoint),
    DepositDissociated(ChannelId, OutPoint),
    Payment(ChannelId),
    Multihop(RouteId),
    Settle(ChannelId),
    CoSign(u64),
    BackupAttached(PublicKey),
    Replica,
    Recovered,
    Swap(SwapId),
}

/// The terminal correlation key for a command, or `None` for commands
/// that have no asynchronous response (they complete with
/// [`OpOutput::Done`] as soon as the enclave accepts them).
pub(crate) fn expect_for(cmd: &Command) -> Option<MatchKey> {
    match cmd {
        Command::GetIdentity => Some(MatchKey::Identity),
        Command::NewAddress => Some(MatchKey::Address),
        Command::NewCommitteeAddress { .. } => Some(MatchKey::Committee),
        Command::StartSession { remote } => Some(MatchKey::Session(*remote)),
        Command::NewChannel { id, .. } => Some(MatchKey::ChannelOpen(*id)),
        Command::ApproveDeposit { outpoint, .. } => Some(MatchKey::DepositApproved(*outpoint)),
        Command::AssociateDeposit { id, outpoint } => {
            Some(MatchKey::DepositAssociated(*id, *outpoint))
        }
        Command::DissociateDeposit { id, outpoint } => {
            Some(MatchKey::DepositDissociated(*id, *outpoint))
        }
        Command::Pay { id, .. } => Some(MatchKey::Payment(*id)),
        Command::PayMultihop { route, .. } => Some(MatchKey::Multihop(*route)),
        Command::Settle { id } => Some(MatchKey::Settle(*id)),
        // Releases run through the settlement path with a zeroed channel
        // context (see `TeechainEnclave::cmd_release_deposit`).
        Command::ReleaseDeposit { .. } => Some(MatchKey::Settle(ChannelId([0; 32]))),
        Command::AttachBackup { backup } => Some(MatchKey::BackupAttached(*backup)),
        Command::ReadReplica => Some(MatchKey::Replica),
        Command::CoSign { req_id, .. } => Some(MatchKey::CoSign(*req_id)),
        Command::Recover { .. } => Some(MatchKey::Recovered),
        Command::Swap { swap, .. } => Some(MatchKey::Swap(*swap)),
        Command::NewDeposit { .. }
        | Command::DepositVerified { .. }
        | Command::Deliver { .. }
        | Command::Eject { .. }
        | Command::EjectWithPopt { .. }
        | Command::SettleFromReplica
        | Command::AddCoSigs { .. }
        | Command::RestoreSealed { .. }
        | Command::PumpAdmission
        | Command::SwapFunded { .. }
        | Command::SwapHtlcVerified { .. }
        | Command::SwapTick { .. } => None,
    }
}

/// Maps a terminal host event to its correlation key and outcome.
/// Non-terminal events (unsolicited notifications) map to `None`.
fn outcome_of(event: &HostEvent) -> Option<(MatchKey, Result<OpOutput, OpError>)> {
    Some(match event {
        HostEvent::Identity(pk) => (MatchKey::Identity, Ok(OpOutput::Identity(*pk))),
        HostEvent::NewAddress(pk) => (MatchKey::Address, Ok(OpOutput::Address(*pk))),
        HostEvent::CommitteeAddress(spec) => {
            (MatchKey::Committee, Ok(OpOutput::Committee(spec.clone())))
        }
        HostEvent::SessionEstablished(pk) => (
            MatchKey::Session(*pk),
            Ok(OpOutput::SessionEstablished(*pk)),
        ),
        HostEvent::ChannelOpen(id) => (MatchKey::ChannelOpen(*id), Ok(OpOutput::ChannelOpen(*id))),
        HostEvent::DepositApproved { remote, outpoint } => (
            MatchKey::DepositApproved(*outpoint),
            Ok(OpOutput::DepositApproved {
                remote: *remote,
                outpoint: *outpoint,
            }),
        ),
        HostEvent::DepositAssociated { id, outpoint } => (
            MatchKey::DepositAssociated(*id, *outpoint),
            Ok(OpOutput::DepositAssociated {
                chan: *id,
                outpoint: *outpoint,
            }),
        ),
        HostEvent::DepositDissociated { id, outpoint } => (
            MatchKey::DepositDissociated(*id, *outpoint),
            Ok(OpOutput::DepositDissociated {
                chan: *id,
                outpoint: *outpoint,
            }),
        ),
        HostEvent::PaymentAcked { id, amount, count } => (
            MatchKey::Payment(*id),
            Ok(OpOutput::PaymentApplied {
                chan: *id,
                amount: *amount,
                count: *count,
            }),
        ),
        // A nack is the remote's typed refusal (carried on the wire);
        // our debit was rolled back.
        HostEvent::PaymentNacked { id, reason, .. } => {
            (MatchKey::Payment(*id), Err(OpError::Remote(reason.clone())))
        }
        // A rejection is the local admission layer giving up on a queued
        // payment: deadline expiry, channel closed, or insufficient
        // balance at drain time. Nothing was ever debited or sent.
        HostEvent::PaymentRejected { id, reason, .. } => (
            MatchKey::Payment(*id),
            Err(OpError::Rejected(reason.clone())),
        ),
        HostEvent::SettledOffChain(id) => (
            MatchKey::Settle(*id),
            Ok(OpOutput::Settled {
                chan: *id,
                kind: SettleKind::OffChain,
            }),
        ),
        HostEvent::SettlementBroadcast { id, txid } => (
            MatchKey::Settle(*id),
            Ok(OpOutput::Settled {
                chan: *id,
                kind: SettleKind::OnChain(*txid),
            }),
        ),
        HostEvent::MultihopComplete { route, amount } => (
            MatchKey::Multihop(*route),
            Ok(OpOutput::MultihopDelivered {
                route: *route,
                amount: *amount,
            }),
        ),
        HostEvent::MultihopFailed { route, reason } => (
            MatchKey::Multihop(*route),
            Err(OpError::Remote(reason.clone())),
        ),
        HostEvent::CoSignResult {
            req_id, refused, ..
        } => (
            MatchKey::CoSign(*req_id),
            Ok(OpOutput::CoSigned {
                req_id: *req_id,
                refused: *refused,
            }),
        ),
        HostEvent::BackupAttached(pk) => (
            MatchKey::BackupAttached(*pk),
            Ok(OpOutput::BackupAttached(*pk)),
        ),
        HostEvent::ReplicaState {
            channels,
            deposits,
            applied_seq,
        } => (
            MatchKey::Replica,
            Ok(OpOutput::ReplicaState {
                channels: *channels,
                deposits: *deposits,
                applied_seq: *applied_seq,
            }),
        ),
        HostEvent::Recovered {
            channels,
            deposits,
            commits,
        } => (
            MatchKey::Recovered,
            Ok(OpOutput::Recovered {
                channels: *channels,
                deposits: *deposits,
                commits: *commits,
            }),
        ),
        // A swap resolving is terminal for the initiator's operation
        // (the responder has no local operation; its tracker simply
        // finds no queue for the key and drops the completion).
        HostEvent::SwapResolved { swap, redeemed } => (
            MatchKey::Swap(*swap),
            Ok(OpOutput::Swap(SwapOutcome {
                swap: *swap,
                redeemed: *redeemed,
            })),
        ),
        // Unsolicited notifications: never terminal for an operation.
        HostEvent::VerifyDeposit { .. }
        | HostEvent::PaymentReceived { .. }
        | HostEvent::MultihopReceived { .. }
        | HostEvent::NeedCoSign { .. }
        | HostEvent::Frozen
        | HostEvent::PumpAt(_)
        | HostEvent::SwapFundingNeeded { .. }
        | HostEvent::VerifySwapHtlc { .. }
        | HostEvent::SwapCheckAt { .. }
        | HostEvent::SwapPhaseEntered { .. } => return None,
    })
}

/// What a pending operation re-executes when the counter throttle lifts
/// (the node re-dispatches throttled ops FIFO on the admission pump).
#[derive(Clone)]
pub(crate) enum OpJob {
    /// An enclave command.
    Cmd(Command),
    /// The composite fund-deposit host operation (mint + confirm +
    /// register, see `TeechainNode::create_funded_committee_deposit`).
    FundDeposit { value: u64, m: u8 },
    /// The composite open-channel host operation: generate an in-enclave
    /// settlement address, then propose the channel.
    OpenChannel { id: ChannelId, remote: PublicKey },
    /// Crash recovery from the durable store.
    Recover,
}

struct PendingOp {
    job: OpJob,
    key: Option<MatchKey>,
}

/// Tracks in-flight operations on one node: submission order per
/// correlation key, so same-key completions resolve FIFO (matching the
/// per-session FIFO the protocol itself guarantees).
#[derive(Default)]
pub(crate) struct OpTracker {
    next_seq: u64,
    node: u32,
    pending: HashMap<u64, PendingOp>,
    queues: HashMap<MatchKey, VecDeque<u64>>,
}

impl OpTracker {
    /// Registers a new operation; returns its id.
    pub(crate) fn register(&mut self, node: u32, job: OpJob, key: Option<MatchKey>) -> OpId {
        self.node = node;
        self.next_seq += 1;
        let seq = self.next_seq;
        if let Some(k) = key {
            self.queues.entry(k).or_default().push_back(seq);
        }
        self.pending.insert(seq, PendingOp { job, key });
        OpId { node, seq }
    }

    /// True while the operation awaits its terminal outcome.
    pub(crate) fn is_pending(&self, seq: u64) -> bool {
        self.pending.contains_key(&seq)
    }

    /// The operation's job, for re-dispatch when the counter throttle
    /// lifts.
    pub(crate) fn job(&self, seq: u64) -> Option<OpJob> {
        self.pending.get(&seq).map(|p| p.job.clone())
    }

    /// True for a pending operation with no asynchronous terminal event.
    pub(crate) fn expects_nothing(&self, seq: u64) -> bool {
        self.pending.get(&seq).is_some_and(|p| p.key.is_none())
    }

    /// Correlates a host event with the oldest matching pending
    /// operation; returns its completion.
    pub(crate) fn observe(&mut self, event: &HostEvent, now_ns: u64) -> Option<Completion> {
        let (key, outcome) = outcome_of(event)?;
        let queue = self.queues.get_mut(&key)?;
        let seq = queue.pop_front()?;
        if queue.is_empty() {
            self.queues.remove(&key);
        }
        self.pending.remove(&seq);
        Some(Completion {
            op: OpId {
                node: self.node,
                seq,
            },
            time_ns: now_ns,
            outcome,
        })
    }

    /// Terminates a pending operation with an explicit outcome (local
    /// rejection, immediate success, …).
    pub(crate) fn complete(
        &mut self,
        seq: u64,
        now_ns: u64,
        outcome: Result<OpOutput, OpError>,
    ) -> Option<Completion> {
        let op = self.pending.remove(&seq)?;
        if let Some(k) = op.key {
            if let Some(q) = self.queues.get_mut(&k) {
                q.retain(|s| *s != seq);
                if q.is_empty() {
                    self.queues.remove(&k);
                }
            }
        }
        Some(Completion {
            op: OpId {
                node: self.node,
                seq,
            },
            time_ns: now_ns,
            outcome,
        })
    }

    /// Declares a pending operation dead (deadline hit, or quiescence
    /// with no terminal response).
    pub(crate) fn cancel(&mut self, seq: u64, now_ns: u64) -> Option<Completion> {
        self.complete(seq, now_ns, Err(OpError::Timeout { at_ns: now_ns }))
    }

    /// Declares every pending operation dead (the network went quiescent:
    /// nothing can resolve them anymore). Returns the timeout
    /// completions in submission order.
    pub(crate) fn cancel_all(&mut self, now_ns: u64) -> Vec<Completion> {
        let mut seqs: Vec<u64> = self.pending.keys().copied().collect();
        seqs.sort_unstable();
        seqs.into_iter()
            .filter_map(|seq| self.cancel(seq, now_ns))
            .collect()
    }
}

/// Merges per-node completion streams into one global, deterministic
/// history ordered by `(time, node, seq)` — the same total order under
/// any engine and shard count, because each per-node stream is produced
/// by that node's deterministic event processing.
pub fn merge_completions(streams: &[&[Completion]]) -> Vec<Completion> {
    let mut all: Vec<Completion> = streams.iter().flat_map(|s| s.iter().cloned()).collect();
    all.sort_by_key(|c| (c.time_ns, c.op.node, c.op.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(label: &str) -> ChannelId {
        ChannelId::from_label(label)
    }

    #[test]
    fn tracker_correlates_fifo_per_key() {
        let mut t = OpTracker::default();
        let a = t.register(
            0,
            OpJob::Cmd(Command::Pay {
                id: chan("c"),
                amount: 1,
                count: 1,
            }),
            Some(MatchKey::Payment(chan("c"))),
        );
        let b = t.register(
            0,
            OpJob::Cmd(Command::Pay {
                id: chan("c"),
                amount: 2,
                count: 1,
            }),
            Some(MatchKey::Payment(chan("c"))),
        );
        let ack = HostEvent::PaymentAcked {
            id: chan("c"),
            amount: 1,
            count: 1,
        };
        let first = t.observe(&ack, 10).expect("matches oldest");
        assert_eq!(first.op, a);
        assert!(t.is_pending(b.seq));
        let nack = HostEvent::PaymentNacked {
            id: chan("c"),
            amount: 2,
            count: 1,
            reason: ProtocolError::ChannelLocked,
        };
        let second = t.observe(&nack, 20).expect("matches next");
        assert_eq!(second.op, b);
        assert_eq!(
            second.outcome,
            Err(OpError::Remote(ProtocolError::ChannelLocked))
        );
        assert!(!t.is_pending(b.seq));
    }

    #[test]
    fn unrelated_events_do_not_match() {
        let mut t = OpTracker::default();
        t.register(
            0,
            OpJob::Cmd(Command::Pay {
                id: chan("c"),
                amount: 1,
                count: 1,
            }),
            Some(MatchKey::Payment(chan("c"))),
        );
        let other = HostEvent::PaymentAcked {
            id: chan("other"),
            amount: 1,
            count: 1,
        };
        assert!(t.observe(&other, 5).is_none());
        assert!(t
            .observe(
                &HostEvent::PaymentReceived {
                    id: chan("c"),
                    amount: 1,
                    count: 1
                },
                5
            )
            .is_none());
    }

    #[test]
    fn cancel_produces_timeout() {
        let mut t = OpTracker::default();
        let a = t.register(
            3,
            OpJob::Cmd(Command::GetIdentity),
            Some(MatchKey::Identity),
        );
        let c = t.cancel(a.seq, 99).expect("was pending");
        assert_eq!(c.outcome, Err(OpError::Timeout { at_ns: 99 }));
        assert!(t.cancel(a.seq, 100).is_none(), "exactly one completion");
        // The stale queue entry is gone: a later Identity op matches.
        let b = t.register(
            3,
            OpJob::Cmd(Command::GetIdentity),
            Some(MatchKey::Identity),
        );
        let pk = teechain_crypto::schnorr::Keypair::from_seed(&[1; 32]).pk;
        let done = t.observe(&HostEvent::Identity(pk), 101).expect("matches");
        assert_eq!(done.op, b);
    }

    #[test]
    fn merge_orders_by_time_node_seq() {
        let mk = |node, seq, t| Completion {
            op: OpId { node, seq },
            time_ns: t,
            outcome: Ok(OpOutput::Done),
        };
        let a = vec![mk(0, 1, 50), mk(0, 2, 70)];
        let b = vec![mk(1, 1, 50), mk(1, 2, 60)];
        let merged = merge_completions(&[&a, &b]);
        let order: Vec<(u32, u64, u64)> = merged
            .iter()
            .map(|c| (c.op.node, c.op.seq, c.time_ns))
            .collect();
        assert_eq!(order, vec![(0, 1, 50), (1, 1, 50), (1, 2, 60), (0, 2, 70)]);
    }

    #[test]
    fn op_error_labels() {
        assert_eq!(
            OpError::Rejected(ProtocolError::InsufficientBalance).label(),
            "rejected:InsufficientBalance"
        );
        assert_eq!(
            OpError::Remote(ProtocolError::ChannelLocked).label(),
            "remote:ChannelLocked"
        );
        assert_eq!(OpError::Timeout { at_ns: 1 }.label(), "timeout");
    }
}
