//! Route selection over the payment-channel overlay (§7.4).
//!
//! The paper assumes routes are found out-of-band (§3, footnote 2); the
//! evaluation nevertheless needs shortest paths for the hub-and-spoke
//! experiments and *alternative* paths for the dynamic-routing ablation
//! (Table 3). This module provides both over a static channel graph.

use std::collections::{HashMap, HashSet, VecDeque};
use teechain_net::NodeId;

/// An undirected channel graph over simulator node ids.
#[derive(Debug, Default, Clone)]
pub struct ChannelGraph {
    adj: HashMap<NodeId, Vec<NodeId>>,
}

impl ChannelGraph {
    /// Builds a graph from channel endpoint pairs.
    pub fn from_pairs(pairs: &[(NodeId, NodeId)]) -> Self {
        let mut g = ChannelGraph::default();
        for &(a, b) in pairs {
            g.add_edge(a, b);
        }
        g
    }

    /// Adds an undirected edge. Re-adding an existing channel pair is a
    /// no-op: parallel channels between the same endpoints share one
    /// graph edge (the routing layer picks the channel variant).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        let fwd = self.adj.entry(a).or_default();
        if !fwd.contains(&b) {
            fwd.push(b);
        }
        let back = self.adj.entry(b).or_default();
        if !back.contains(&a) {
            back.push(a);
        }
    }

    /// Neighbours of `n`.
    pub fn neighbours(&self, n: NodeId) -> &[NodeId] {
        self.adj.get(&n).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// BFS shortest path from `from` to `to` (inclusive of endpoints),
    /// optionally avoiding a set of edges.
    pub fn shortest_path_avoiding(
        &self,
        from: NodeId,
        to: NodeId,
        avoid: &HashSet<(NodeId, NodeId)>,
    ) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = HashSet::from([from]);
        while let Some(cur) = queue.pop_front() {
            for &next in self.neighbours(cur) {
                let edge = canon(cur, next);
                if avoid.contains(&edge) || !seen.insert(next) {
                    continue;
                }
                prev.insert(next, cur);
                if next == to {
                    let mut path = vec![to];
                    let mut at = to;
                    while let Some(&p) = prev.get(&at) {
                        path.push(p);
                        at = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// BFS shortest path.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        self.shortest_path_avoiding(from, to, &HashSet::new())
    }

    /// Up to `k` edge-disjoint-ish alternative paths, shortest first —
    /// the dynamic-routing strategy of §7.4 ("each machine first tries the
    /// shortest path, before incrementally trying longer paths").
    pub fn k_paths(&self, from: NodeId, to: NodeId, k: usize) -> Vec<Vec<NodeId>> {
        let mut paths = Vec::new();
        let mut avoid = HashSet::new();
        for _ in 0..k {
            let Some(path) = self.shortest_path_avoiding(from, to, &avoid) else {
                break;
            };
            // Ban this path's middle edges so the next search diverges.
            for w in path.windows(2) {
                avoid.insert(canon(w[0], w[1]));
            }
            paths.push(path);
        }
        paths
    }
}

fn canon(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn diamond() -> ChannelGraph {
        // 0 - 1 - 3, 0 - 2 - 3.
        ChannelGraph::from_pairs(&[(n(0), n(1)), (n(1), n(3)), (n(0), n(2)), (n(2), n(3))])
    }

    #[test]
    fn shortest_path_found() {
        let g = diamond();
        let p = g.shortest_path(n(0), n(3)).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], n(0));
        assert_eq!(p[2], n(3));
    }

    #[test]
    fn no_path_when_disconnected() {
        let g = ChannelGraph::from_pairs(&[(n(0), n(1))]);
        assert!(g.shortest_path(n(0), n(5)).is_none());
    }

    #[test]
    fn trivial_path_to_self() {
        let g = diamond();
        assert_eq!(g.shortest_path(n(1), n(1)).unwrap(), vec![n(1)]);
    }

    #[test]
    fn k_paths_diverge() {
        let g = diamond();
        let paths = g.k_paths(n(0), n(3), 3);
        assert_eq!(paths.len(), 2); // Only two disjoint routes exist.
        assert_ne!(paths[0], paths[1]);
    }

    #[test]
    fn duplicate_edges_dedup() {
        // Regression: parallel channels between one endpoint pair used to
        // insert duplicate adjacency entries, skewing BFS fan-out and
        // k-path divergence.
        let mut g = ChannelGraph::from_pairs(&[(n(0), n(1)), (n(0), n(1)), (n(1), n(0))]);
        g.add_edge(n(0), n(1));
        assert_eq!(g.neighbours(n(0)), &[n(1)]);
        assert_eq!(g.neighbours(n(1)), &[n(0)]);
        // Self-loops are still representable exactly once.
        g.add_edge(n(2), n(2));
        assert_eq!(g.neighbours(n(2)), &[n(2)]);
    }

    #[test]
    fn direct_edge_preferred() {
        let mut g = diamond();
        g.add_edge(n(0), n(3));
        assert_eq!(g.shortest_path(n(0), n(3)).unwrap(), vec![n(0), n(3)]);
    }

    #[test]
    fn hub_spoke_paths_route_through_hubs() {
        let hs = teechain_net::topology::HubSpoke::paper_default();
        let g = ChannelGraph::from_pairs(&hs.channel_pairs());
        // Two tier-3 leaves must route via their tier-2 parents (and
        // possibly a hub): path length 3-5 nodes.
        let a = n(hs.tier1 + hs.tier2); // first leaf
        let b = n(hs.tier1 + hs.tier2 + 1); // second leaf
        let p = g.shortest_path(a, b).unwrap();
        assert!(p.len() >= 3 && p.len() <= 6, "path {p:?}");
    }
}
