//! Cross-chain atomic swaps: PHTLC-style commit/lock/redeem/refund
//! bridging a Teechain channel balance to an asset on a second,
//! independent chain.
//!
//! ## Protocol
//!
//! The *initiator* trades `amount` of its balance on an open Teechain
//! channel for `alt_amount` locked on the other chain by the
//! *responder*. The swap secret is generated **inside** the initiator's
//! enclave and never leaves it except through the redeem itself:
//!
//! 1. **Init** — the initiator's enclave draws a 32-byte secret, commits
//!    `hash = SHA-256(secret)`, and sends `SwapInit` over the channel's
//!    sealed session.
//! 2. **Locked** — the responder's host mints an
//!    [`ScriptPubKey::Htlc`](teechain_blockchain::ScriptPubKey) output
//!    on the alternate chain (claimable by the initiator's identity key
//!    with the preimage, refundable to the responder after
//!    `timeout_blocks` confirmations) and the responder's enclave
//!    acknowledges with `SwapLocked`.
//! 3. **Redeemed** — the initiator's host verifies the lock on-chain;
//!    the enclave then *atomically* (one WAL commit) debits the channel,
//!    broadcasts the preimage-revealing claim transaction on the
//!    alternate chain, and sends `SwapSecret` to the responder, who
//!    credits the channel. A responder that misses `SwapSecret` learns
//!    the preimage from the confirmed claim spend
//!    ([`Chain::find_spender`](teechain_blockchain::Chain::find_spender)).
//! 4. **Refunded** — if the secret is withheld past the timeout, the
//!    responder's refund timer signs and broadcasts the timelocked
//!    refund path; the initiator's deadline timer aborts locally without
//!    ever debiting the channel. Both sides end refunded.
//!
//! Every phase transition is staged as a
//! [`StateDelta::Swap`](crate::msg::StateDelta) riding the ordinary
//! group-commit WAL, so a crash at any phase boundary recovers to
//! exactly the committed phase and the timers re-drive the (idempotent)
//! outstanding effects. The invariant the conformance suite checks:
//! every swap resolves to exactly one of {redeemed-both, refunded-both},
//! and value is conserved on the channel and on both chains.

use crate::types::{ChannelId, SwapId};
use teechain_blockchain::{OutPoint, ScriptPubKey, Transaction, TxIn, TxOut};
use teechain_crypto::schnorr::{PrivateKey, PublicKey};
use teechain_util::codec::{Decode, Encode, Reader, WireError};

/// Where a swap stands. Phases only ever advance: `Init → Locked →`
/// exactly one of `{Redeemed, Refunded}` (Init may also jump straight to
/// `Refunded` when aborted before anything locked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapPhase {
    /// Proposed; nothing locked on either ledger.
    Init,
    /// The responder's HTLC is live on the alternate chain.
    Locked,
    /// Secret revealed: channel debited/credited, claim broadcast.
    Redeemed,
    /// Timed out or aborted: no channel movement, refund path taken.
    Refunded,
}

impl SwapPhase {
    /// Stable lowercase name (metrics labels, fingerprints).
    pub fn name(&self) -> &'static str {
        match self {
            SwapPhase::Init => "init",
            SwapPhase::Locked => "locked",
            SwapPhase::Redeemed => "redeemed",
            SwapPhase::Refunded => "refunded",
        }
    }

    /// True while the swap can still go either way.
    pub fn pending(&self) -> bool {
        matches!(self, SwapPhase::Init | SwapPhase::Locked)
    }
}

impl Encode for SwapPhase {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            SwapPhase::Init => 0,
            SwapPhase::Locked => 1,
            SwapPhase::Redeemed => 2,
            SwapPhase::Refunded => 3,
        };
        tag.encode(out);
    }
}

impl Decode for SwapPhase {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.read::<u8>()? {
            0 => SwapPhase::Init,
            1 => SwapPhase::Locked,
            2 => SwapPhase::Redeemed,
            3 => SwapPhase::Refunded,
            _ => return Err(WireError::InvalidValue("swap phase")),
        })
    }
}

/// Full per-swap enclave state. Snapshotted into the sealed state image
/// and replayed from [`StateDelta::Swap`](crate::msg::StateDelta) WAL
/// records, so it survives crashes bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapState {
    /// Host-chosen instance id (operation correlation).
    pub id: SwapId,
    /// The Teechain channel whose balance is being traded.
    pub channel: ChannelId,
    /// Counterparty enclave identity.
    pub remote: PublicKey,
    /// True on the side that proposed the swap (and holds the secret).
    pub initiator: bool,
    /// Channel balance moved initiator → responder on redeem.
    pub amount: u64,
    /// Alternate-chain value locked responder → initiator.
    pub alt_amount: u64,
    /// SHA-256 commitment to the secret.
    pub hash: [u8; 32],
    /// The secret itself — `Some` inside the initiator's enclave from
    /// Init, and inside the responder's only after redeem.
    pub secret: Option<[u8; 32]>,
    /// HTLC refund timelock, in confirmations on the alternate chain.
    pub timeout_blocks: u64,
    /// The HTLC output once funded (Locked and later).
    pub htlc_outpoint: Option<OutPoint>,
    /// Initiator-side wall/sim-clock deadline (ns) after which a still
    /// pending swap is unilaterally aborted.
    pub deadline_ns: u64,
    /// Current phase.
    pub phase: SwapPhase,
}

teechain_util::impl_wire_struct!(SwapState {
    id,
    channel,
    remote,
    initiator,
    amount,
    alt_amount,
    hash,
    secret,
    timeout_blocks,
    htlc_outpoint,
    deadline_ns,
    phase,
});

impl SwapState {
    /// The HTLC script this swap locks on the alternate chain, from the
    /// perspective of the enclave whose identity key is `me`.
    pub fn htlc_script(&self, me: &PublicKey) -> ScriptPubKey {
        let (claim_key, refund_key) = if self.initiator {
            (*me, self.remote)
        } else {
            (self.remote, *me)
        };
        ScriptPubKey::Htlc {
            hash: self.hash,
            claim_key,
            refund_key,
            timeout_blocks: self.timeout_blocks,
        }
    }
}

/// How a swap resolved — the typed payload of a swap operation's
/// completion. Both resolutions are *successful* operations (the protocol
/// worked); only a stuck swap would be a failure, and the conformance
/// suite asserts there are none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapOutcome {
    /// The swap.
    pub swap: SwapId,
    /// True if redeemed on both ledgers, false if refunded on both.
    pub redeemed: bool,
}

/// Builds the preimage-revealing claim transaction spending the HTLC
/// output to `dest`, signed by `key` (the claim key).
pub fn claim_tx(
    outpoint: OutPoint,
    value: u64,
    secret: &[u8; 32],
    dest: PublicKey,
    key: &PrivateKey,
) -> Transaction {
    let mut input = TxIn::spend(outpoint);
    input.preimage = secret.to_vec();
    let mut tx = Transaction {
        inputs: vec![input],
        outputs: vec![TxOut {
            value,
            script: ScriptPubKey::P2pk(dest),
        }],
    };
    tx.sign_input(0, key);
    tx
}

/// Builds the timelocked refund transaction returning the HTLC output to
/// `dest`, signed by `key` (the refund key). Valid on-chain only once the
/// HTLC has `timeout_blocks` confirmations.
pub fn refund_tx(outpoint: OutPoint, value: u64, dest: PublicKey, key: &PrivateKey) -> Transaction {
    let mut tx = Transaction {
        inputs: vec![TxIn::spend(outpoint)],
        outputs: vec![TxOut {
            value,
            script: ScriptPubKey::P2pk(dest),
        }],
    };
    tx.sign_input(0, key);
    tx
}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_crypto::schnorr::Keypair;
    use teechain_crypto::sha256::sha256;

    #[test]
    fn swap_state_roundtrip() {
        let state = SwapState {
            id: SwapId::from_label("s1"),
            channel: ChannelId::from_label("c1"),
            remote: Keypair::from_seed(&[1; 32]).pk,
            initiator: true,
            amount: 40,
            alt_amount: 70,
            hash: sha256(b"secret"),
            secret: Some(*b"01234567890123456789012345678901"),
            timeout_blocks: 6,
            htlc_outpoint: None,
            deadline_ns: 1_000_000,
            phase: SwapPhase::Locked,
        };
        let decoded = SwapState::decode_exact(&state.encode_to_vec()).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn claim_and_refund_conflict() {
        let (a, b) = (Keypair::from_seed(&[1; 32]), Keypair::from_seed(&[2; 32]));
        let op = OutPoint {
            txid: teechain_blockchain::TxId([7; 32]),
            vout: 0,
        };
        let secret = [9u8; 32];
        let claim = claim_tx(op, 100, &secret, a.pk, &a.sk);
        let refund = refund_tx(op, 100, b.pk, &b.sk);
        assert!(claim.conflicts_with(&refund));
        assert_eq!(claim.inputs[0].preimage, secret.to_vec());
        // Attaching the preimage does not change the signed digest.
        let mut stripped = claim.clone();
        stripped.inputs[0].preimage.clear();
        assert_eq!(stripped.txid(), claim.txid());
    }

    #[test]
    fn phase_codec_and_names() {
        for phase in [
            SwapPhase::Init,
            SwapPhase::Locked,
            SwapPhase::Redeemed,
            SwapPhase::Refunded,
        ] {
            let decoded = SwapPhase::decode_exact(&phase.encode_to_vec()).unwrap();
            assert_eq!(decoded, phase);
        }
        assert!(SwapPhase::Init.pending());
        assert!(SwapPhase::Locked.pending());
        assert!(!SwapPhase::Redeemed.pending());
        assert_eq!(SwapPhase::Refunded.name(), "refunded");
    }
}
