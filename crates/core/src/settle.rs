//! Settlement transaction construction and signing.
//!
//! All settlement transactions for a channel spend the *same* deposit
//! outpoints, so at most one can ever confirm — the conflict property that
//! proofs of premature termination build on (§5.1).
//!
//! Transactions are built canonically (inputs and outputs sorted) so that
//! both channel endpoints — and every TEE along a multi-hop route —
//! derive bit-identical transactions and can compare them by txid.

use crate::channel::Channel;
use crate::deposit::DepositBook;
use crate::types::Deposit;
use std::collections::HashMap;
use teechain_blockchain::{OutPoint, ScriptPubKey, Transaction, TxIn, TxOut};
use teechain_crypto::schnorr::{PrivateKey, PublicKey};
use teechain_util::codec::Encode;

/// Builds the unsigned settlement transaction for a channel at explicit
/// balances (callers pass pre- or post-payment balances as needed).
pub fn settlement_tx(chan: &Channel, my_bal: u64, remote_bal: u64) -> Transaction {
    let inputs = chan.all_deposits().into_iter().map(TxIn::spend).collect();
    let mut outputs = Vec::new();
    if my_bal > 0 {
        outputs.push(TxOut {
            value: my_bal,
            script: ScriptPubKey::P2pk(chan.my_settlement),
        });
    }
    if remote_bal > 0 {
        outputs.push(TxOut {
            value: remote_bal,
            script: ScriptPubKey::P2pk(chan.remote_settlement),
        });
    }
    canonicalize(Transaction { inputs, outputs })
}

/// Builds the settlement transaction at the channel's current balances.
pub fn current_settlement_tx(chan: &Channel) -> Transaction {
    settlement_tx(chan, chan.my_bal, chan.remote_bal)
}

/// Builds a release transaction spending a free deposit to `to`.
pub fn release_tx(dep: &Deposit, to: PublicKey) -> Transaction {
    Transaction {
        inputs: vec![TxIn::spend(dep.outpoint)],
        outputs: vec![TxOut {
            value: dep.value,
            script: ScriptPubKey::P2pk(to),
        }],
    }
}

/// Sorts inputs by outpoint and outputs by (script bytes, value) so both
/// endpoints derive identical transactions.
pub fn canonicalize(mut tx: Transaction) -> Transaction {
    tx.inputs.sort_by_key(|i| i.prevout);
    tx.outputs
        .sort_by_key(|a| (a.script.encode_to_vec(), a.value));
    tx
}

/// Signs every input whose deposit committee includes a key we hold.
/// Returns the number of signatures added. `deposit_of` resolves an
/// outpoint to its committee.
pub fn sign_inputs<'a>(
    tx: &mut Transaction,
    keys: &HashMap<PublicKey, PrivateKey>,
    deposit_of: impl Fn(&OutPoint) -> Option<&'a Deposit>,
) -> usize {
    let sighash = tx.sighash();
    let mut added = 0;
    for input in &mut tx.inputs {
        let Some(dep) = deposit_of(&input.prevout) else {
            continue;
        };
        for member in &dep.committee.member_keys {
            if let Some(sk) = keys.get(member) {
                let sig = teechain_crypto::schnorr::sign(sk, &sighash);
                if !input.witness.contains(&sig) {
                    input.witness.push(sig);
                    added += 1;
                }
            }
        }
    }
    added
}

/// Signs using a [`DepositBook`]'s keys and deposit records.
pub fn sign_with_book(tx: &mut Transaction, book: &DepositBook) -> usize {
    let sighash = tx.sighash();
    let mut added = 0;
    for input in &mut tx.inputs {
        let Some(dep) = book.deposit_of(&input.prevout) else {
            continue;
        };
        for member in &dep.committee.member_keys {
            if let Some(sk) = book.keys.get(member) {
                let sig = teechain_crypto::schnorr::sign(sk, &sighash);
                if !input.witness.contains(&sig) {
                    input.witness.push(sig);
                    added += 1;
                }
            }
        }
    }
    added
}

/// True if every input carries at least its committee threshold of
/// signatures (validity against scripts is checked by the chain; this is
/// the enclave-side sufficiency check before broadcasting).
pub fn threshold_met<'a>(
    tx: &Transaction,
    deposit_of: impl Fn(&OutPoint) -> Option<&'a Deposit>,
) -> bool {
    tx.inputs.iter().all(|input| {
        deposit_of(&input.prevout)
            .map(|d| input.witness.len() >= d.committee.m as usize)
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ChannelId, CommitteeSpec};
    use teechain_blockchain::{Chain, TxId};
    use teechain_crypto::schnorr::Keypair;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    fn channel_with_deposit() -> (Channel, DepositBook, Chain) {
        let mut chain = Chain::new();
        let mut book = DepositBook::default();
        let dep_key = kp(10);
        let pk = book.insert_key(dep_key.sk);
        let committee = CommitteeSpec::single(pk);
        let op = chain.mint(
            ScriptPubKey::multisig(committee.m, committee.member_keys.clone()),
            100,
        );
        let dep = Deposit {
            outpoint: op,
            value: 100,
            committee,
        };
        book.add_mine(dep).unwrap();
        let mut chan = Channel::new(
            ChannelId::from_label("c"),
            kp(1).pk,
            kp(2).pk, // my settlement
            kp(3).pk, // remote settlement
        );
        chan.is_open = true;
        chan.my_deps = vec![op];
        chan.my_bal = 100;
        (chan, book, chain)
    }

    #[test]
    fn settlement_pays_both_sides() {
        let (mut chan, _, _) = channel_with_deposit();
        chan.my_bal = 60;
        chan.remote_bal = 40;
        let tx = current_settlement_tx(&chan);
        assert_eq!(tx.inputs.len(), 1);
        assert_eq!(tx.output_value(), 100);
        assert_eq!(tx.outputs.len(), 2);
    }

    #[test]
    fn zero_balance_omitted() {
        let (chan, _, _) = channel_with_deposit();
        let tx = current_settlement_tx(&chan);
        assert_eq!(tx.outputs.len(), 1); // remote_bal == 0
    }

    #[test]
    fn both_perspectives_agree_on_txid() {
        let (mut chan, _, _) = channel_with_deposit();
        chan.my_bal = 70;
        chan.remote_bal = 30;
        let mine = current_settlement_tx(&chan);
        let theirs = current_settlement_tx(&chan.flipped());
        assert_eq!(mine.txid(), theirs.txid());
    }

    #[test]
    fn signed_settlement_validates_on_chain() {
        let (mut chan, book, mut chain) = channel_with_deposit();
        chan.my_bal = 55;
        chan.remote_bal = 45;
        let mut tx = current_settlement_tx(&chan);
        let added = sign_with_book(&mut tx, &book);
        assert_eq!(added, 1);
        assert!(threshold_met(&tx, |op| book.deposit_of(op)));
        chain.submit(tx).unwrap();
        chain.mine_block();
        assert_eq!(chain.balance_p2pk(&kp(2).pk), 55);
        assert_eq!(chain.balance_p2pk(&kp(3).pk), 45);
    }

    #[test]
    fn settlements_at_different_states_conflict() {
        let (mut chan, _, _) = channel_with_deposit();
        chan.my_bal = 50;
        chan.remote_bal = 50;
        let pre = current_settlement_tx(&chan);
        let post = settlement_tx(&chan, 40, 60);
        assert_ne!(pre.txid(), post.txid());
        assert!(pre.conflicts_with(&post));
    }

    #[test]
    fn release_tx_spends_to_target() {
        let dep = Deposit {
            outpoint: OutPoint {
                txid: TxId([1; 32]),
                vout: 0,
            },
            value: 77,
            committee: CommitteeSpec::single(kp(1).pk),
        };
        let tx = release_tx(&dep, kp(5).pk);
        assert_eq!(tx.output_value(), 77);
        assert!(tx.spends(&dep.outpoint));
    }

    #[test]
    fn threshold_respects_committee_m() {
        let mut book = DepositBook::default();
        let a = kp(20);
        let b = kp(21);
        let pk_a = book.insert_key(a.sk);
        let dep = Deposit {
            outpoint: OutPoint {
                txid: TxId([2; 32]),
                vout: 0,
            },
            value: 10,
            committee: CommitteeSpec {
                m: 2,
                member_keys: vec![pk_a, b.pk],
            },
        };
        book.mine.insert(
            dep.outpoint,
            (dep.clone(), crate::deposit::DepositStatus::Free),
        );
        let mut tx = release_tx(&dep, kp(5).pk);
        // We hold only one of the two required keys.
        sign_with_book(&mut tx, &book);
        assert!(!threshold_met(&tx, |op| book.deposit_of(op)));
        // Add the second committee signature.
        let sighash = tx.sighash();
        tx.inputs[0]
            .witness
            .push(teechain_crypto::schnorr::sign(&b.sk, &sighash));
        assert!(threshold_met(&tx, |op| book.deposit_of(op)));
    }
}
