//! Runs Teechain nodes inside the discrete-event network simulator.
//!
//! CPU service times are charged per message class through the simulator's
//! single-server queue, which is what converts per-operation costs into
//! the throughput ceilings of §7. The default constants are calibrated
//! once against Table 1's no-fault-tolerance row (≈130k tx/s on a single
//! channel, i.e. ≈3.8 µs of enclave work per payment-class message) and
//! the ≈34k tx/s single-replica row (≈11 µs per replication message);
//! everything else in the evaluation *emerges* from the protocol.

use crate::msg::CostClass;
use crate::node::{NodeWire, TeechainNode};
use teechain_net::{Ctx, NodeId, SimNode};
use teechain_util::codec::Decode;

/// Per-message-class CPU service times (nanoseconds).
///
/// Calibrated once against two Table 1 rows: the no-fault-tolerance
/// single-channel throughput (≈130k tx/s ⇒ ≈7.6 µs of sender CPU per
/// payment: one logical-payment generation plus two payment-class
/// messages) and the one-replica row (≈34k tx/s ⇒ ≈22 µs per replication
/// message at the chain head).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per *logical* payment generation/accounting at the client+enclave
    /// (charged by the workload driver when issuing, per batched count).
    pub logical_ns: u64,
    /// Payment / ack messages (Alg. 1 hot path).
    pub payment_ns: u64,
    /// Replication state-update application (Alg. 3) — the dominant
    /// per-payment cost on every chain member, which is why throughput is
    /// flat in the chain length (Table 1, Fig. 6 discussion).
    pub replication_ns: u64,
    /// Replication acknowledgements (bookkeeping only).
    pub replication_ack_ns: u64,
    /// Multi-hop stage messages (Alg. 2; includes τ handling).
    pub multihop_ns: u64,
    /// Handshake messages: remote attestation verification dominates
    /// (≈1.3 s, which is what makes channel creation ≈2.8 s in Table 2).
    pub attestation_ns: u64,
    /// Other control messages (deposit and channel management).
    pub mgmt_ns: u64,
    /// Committee signing requests (verification + signature generation).
    pub signing_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            logical_ns: 6_600,
            payment_ns: 500,
            replication_ns: 21_500,
            replication_ack_ns: 1_000,
            multihop_ns: 30_000,
            attestation_ns: 1_300_000_000,
            mgmt_ns: 100_000,
            signing_ns: 400_000,
        }
    }
}

impl CostModel {
    /// A zero-cost model for functional tests (latency comes from links
    /// only).
    pub fn free() -> Self {
        CostModel {
            logical_ns: 0,
            payment_ns: 0,
            replication_ns: 0,
            replication_ack_ns: 0,
            multihop_ns: 0,
            attestation_ns: 0,
            mgmt_ns: 0,
            signing_ns: 0,
        }
    }

    fn for_class(&self, class: CostClass) -> u64 {
        match class {
            CostClass::Payment => self.payment_ns,
            CostClass::Replication => self.replication_ns,
            CostClass::ReplicationAck => self.replication_ack_ns,
            CostClass::Multihop => self.multihop_ns,
            CostClass::Control => self.mgmt_ns,
        }
    }
}

/// A simulator node wrapping a [`TeechainNode`].
pub struct SimHost {
    /// The wrapped node.
    pub node: TeechainNode,
    /// CPU cost model.
    pub costs: CostModel,
}

impl SimHost {
    /// Wraps a node with the given cost model.
    pub fn new(node: TeechainNode, costs: CostModel) -> Self {
        SimHost { node, costs }
    }

    /// Charges the CPU cost for an incoming wire message.
    fn charge(&self, ctx: &mut Ctx<'_>, bytes: &[u8]) {
        let cost = match NodeWire::decode_exact(bytes) {
            Ok(NodeWire::Enclave(wire)) => {
                match crate::msg::WireMsg::decode_exact(&wire) {
                    Ok(crate::msg::WireMsg::Sealed { class, .. }) => {
                        self.costs.for_class(CostClass::from_byte(class))
                    }
                    // Handshake messages carry attestation verification.
                    Ok(_) => self.costs.attestation_ns,
                    Err(_) => 0,
                }
            }
            Ok(NodeWire::SigRequest { .. }) | Ok(NodeWire::SigResponse { .. }) => {
                self.costs.signing_ns
            }
            Err(_) => 0,
        };
        if cost > 0 {
            ctx.busy(cost);
        }
    }
}

impl SimNode for SimHost {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Vec<u8>) {
        self.charge(ctx, &msg);
        self.node.handle_wire(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.node.handle_timer(ctx, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_match_table1_calibration() {
        let c = CostModel::default();
        // Sender CPU per unbatched payment: generate one logical payment,
        // then process the returning ack; the pay message is processed at
        // the receiver. Single-server bound ≈ 131k tx/s (Table 1 row 2).
        let per_payment = (c.logical_ns + 2 * c.payment_ns) as f64;
        let tx_per_sec = 1e9 / per_payment;
        assert!((120_000.0..140_000.0).contains(&tx_per_sec), "{tx_per_sec}");
        // With replicas the bottleneck moves to state-update application
        // on the chain members (one update + overhead per payment):
        // ≈ 34k tx/s for any chain length ≥ 2 (Table 1 rows 3-5).
        let rep_tx_per_sec = 1e9 / (c.replication_ns as f64 + c.payment_ns as f64);
        assert!(
            (30_000.0..50_000.0).contains(&rep_tx_per_sec),
            "{rep_tx_per_sec}"
        );
    }

    #[test]
    fn free_model_is_free() {
        let c = CostModel::free();
        assert_eq!(c.for_class(CostClass::Payment), 0);
        assert_eq!(c.for_class(CostClass::Control), 0);
    }
}
