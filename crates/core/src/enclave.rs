//! The Teechain enclave program: state, ecall interface and the payment
//! channel protocol (Alg. 1).
//!
//! The enclave is a *sans-io* state machine: every command or delivered
//! message produces a list of [`Effect`]s (messages to send, transactions
//! to broadcast, notifications for the host). The host performs all actual
//! I/O — it is untrusted, so nothing it does with the effects can violate
//! balance correctness; at worst it loses liveness, which the settlement
//! path recovers from.
//!
//! Multi-hop payments (Alg. 2) live in [`crate::multihop`]; chain
//! replication and committees (Alg. 3, §6) in [`crate::replication`].

use crate::admit::{
    AdmitState, DeferredMsg, QueueEntry, QueuedOp, ADMIT_DEADLINE_NS, ADMIT_QUEUE_CAP,
    DEFER_DEADLINE_NS,
};
use crate::channel::Channel;
use crate::deposit::{DepositBook, DepositStatus};
use crate::durability::DurabilityBackend;
use crate::msg::{ProtocolMsg, StateDelta, WireMsg};
use crate::replication::{Replication, SigCollect};
use crate::session::{self, Session};
use crate::settle;
use crate::swap::{SwapPhase, SwapState};
use crate::types::{ChannelId, Deposit, ProtocolError, RouteId, SwapId};
use std::collections::HashMap;
use teechain_crypto::schnorr::{Keypair, PrivateKey, PublicKey, Signature};
use teechain_crypto::sha256::sha256;
use teechain_tee::{EnclaveEnv, EnclaveProgram, Measurement};
use teechain_util::codec::{Decode, Encode};

/// Static enclave configuration, fixed at launch.
#[derive(Clone)]
pub struct EnclaveConfig {
    /// Manufacturer root key for verifying peer attestation quotes.
    pub trust_root: PublicKey,
    /// The measurement peers must present (same build of this program).
    pub measurement: Measurement,
    /// Fault-tolerance backend (§6). Under
    /// [`DurabilityBackend::Persist`], every state change requires a
    /// (throttled) monotonic counter increment and emits a sealed WAL
    /// record, plus a periodic sealed snapshot per the policy.
    pub durability: DurabilityBackend,
}

impl EnclaveConfig {
    /// True in §6.2 persistent-storage mode.
    pub fn persist(&self) -> bool {
        self.durability.is_persist()
    }

    /// Commits between full sealed snapshots (1 when not persisting).
    fn snapshot_every(&self) -> u64 {
        self.durability
            .persist_policy()
            .map(|p| p.snapshot_every.max(1) as u64)
            .unwrap_or(1)
    }
}

/// Ecalls accepted by the Teechain enclave.
#[derive(Clone)]
pub enum Command {
    /// Returns this enclave's identity key; as an operation it completes
    /// with [`OpOutput::Identity`](crate::ops::OpOutput::Identity).
    GetIdentity,
    /// Initiates a secure session with a remote enclave (identity key
    /// exchanged out-of-band, §4.1).
    StartSession {
        /// Remote enclave identity.
        remote: PublicKey,
    },
    /// Delivers a raw network message.
    Deliver {
        /// Encoded [`WireMsg`].
        wire: Vec<u8>,
    },
    /// Generates a fresh blockchain address inside the TEE (Alg. 1
    /// `newAddr`); as an operation it completes with
    /// [`OpOutput::Address`](crate::ops::OpOutput::Address).
    NewAddress,
    /// Builds an m-of-n committee spec for a new deposit: a fresh
    /// per-deposit key plus every chain member's blockchain key (§6.1).
    /// As an operation it completes with
    /// [`OpOutput::Committee`](crate::ops::OpOutput::Committee).
    NewCommitteeAddress {
        /// Signature threshold `m` (1 ≤ m ≤ chain length + 1).
        m: u8,
    },
    /// Opens a payment channel (Alg. 1 `newPayChannel`).
    NewChannel {
        /// Channel id (unique per peer pair).
        id: ChannelId,
        /// Remote enclave identity.
        remote: PublicKey,
        /// Our on-chain settlement address.
        my_settlement: PublicKey,
    },
    /// Registers an on-chain deposit paying into an address (set) whose
    /// first committee key this enclave controls (Alg. 1 `newDeposit`).
    NewDeposit {
        /// The deposit.
        deposit: Deposit,
    },
    /// Releases a free deposit back to an address (Alg. 1
    /// `releaseDeposit`).
    ReleaseDeposit {
        /// The deposit to release.
        outpoint: teechain_blockchain::OutPoint,
        /// Payout address.
        to: PublicKey,
    },
    /// Asks `remote` to approve our deposit (Alg. 1 `approveMyDeposit`).
    ApproveDeposit {
        /// The counterparty.
        remote: PublicKey,
        /// Our free deposit.
        outpoint: teechain_blockchain::OutPoint,
    },
    /// Host's answer to [`HostEvent::VerifyDeposit`]: the deposit is (not)
    /// confirmed on chain with the host's required confirmations.
    DepositVerified {
        /// The deposit owner.
        remote: PublicKey,
        /// The deposit.
        outpoint: teechain_blockchain::OutPoint,
        /// Whether the host found it valid.
        valid: bool,
    },
    /// Associates an approved free deposit with a channel (Alg. 1
    /// `associateMyDeposit`).
    AssociateDeposit {
        /// The channel.
        id: ChannelId,
        /// Our deposit.
        outpoint: teechain_blockchain::OutPoint,
    },
    /// Starts dissociating a deposit (Alg. 1 `dissociateDeposit`).
    DissociateDeposit {
        /// The channel.
        id: ChannelId,
        /// The deposit.
        outpoint: teechain_blockchain::OutPoint,
    },
    /// Sends a payment (Alg. 1 `pay`); `count` logical payments may be
    /// batched into one message (§7 client-side batching).
    Pay {
        /// The channel.
        id: ChannelId,
        /// Total amount.
        amount: u64,
        /// Batched logical payment count (≥1).
        count: u32,
    },
    /// Settles a channel (Alg. 1 `settle`): off-chain if balances are
    /// neutral, otherwise generates a settlement transaction.
    Settle {
        /// The channel.
        id: ChannelId,
    },
    /// Issues a multi-hop payment (Alg. 2 `payMultihop`); this enclave is
    /// p1, `hops` are p1..pn identities, `channels` the path's channels.
    PayMultihop {
        /// Route instance id (fresh).
        route: RouteId,
        /// Path identities p1..pn (including ourselves first).
        hops: Vec<PublicKey>,
        /// Path channels (len = hops-1).
        channels: Vec<ChannelId>,
        /// Amount.
        amount: u64,
    },
    /// Prematurely terminates a multi-hop payment (Alg. 2 `eject`).
    Eject {
        /// The route.
        route: RouteId,
    },
    /// Ejects with a proof of premature termination: a *confirmed*
    /// conflicting settlement placed by another participant (Alg. 2
    /// `eject(popt)`). The host asserts confirmation; the enclave verifies
    /// the conflict structure.
    EjectWithPopt {
        /// The route.
        route: RouteId,
        /// The confirmed conflicting transaction.
        popt: teechain_blockchain::Transaction,
    },
    /// Attaches a backup TEE: we become its replication upstream
    /// (Alg. 3 `assignAsBackupFor`, inverted: command goes to the chain
    /// member gaining a backup). Requires an established session.
    AttachBackup {
        /// The backup's identity key.
        backup: PublicKey,
    },
    /// Force-freeze read of replicated state (issued on a backup, §6):
    /// freezes the chain; as an operation it completes with the replica
    /// summary ([`OpOutput::ReplicaState`](crate::ops::OpOutput::ReplicaState)).
    ReadReplica,
    /// Generates settlement transactions for every replicated channel (the
    /// failover path after the primary crashed).
    SettleFromReplica,
    /// Co-signs a settlement produced elsewhere in our committee, after
    /// verifying it against replicated state (§6.1). As an operation it
    /// completes with [`OpOutput::CoSigned`](crate::ops::OpOutput::CoSigned);
    /// the host routes the granted signatures back to the requesting
    /// node.
    CoSign {
        /// Request id to echo.
        req_id: u64,
        /// The transaction to co-sign.
        tx: teechain_blockchain::Transaction,
    },
    /// Merges co-signatures collected by the host into a pending
    /// settlement; broadcasts when thresholds are met.
    AddCoSigs {
        /// The request id from [`HostEvent::NeedCoSign`].
        req_id: u64,
        /// `(input index, signature)` pairs from one member.
        sigs: Vec<(u32, Signature)>,
    },
    /// Restores state from a sealed blob after a crash (§6.2).
    RestoreSealed {
        /// Blob previously emitted via [`Effect::Persist`].
        blob: Vec<u8>,
    },
    /// Full crash recovery from durable storage (§6.2): the latest
    /// sealed snapshot (if any) plus every sealed WAL record appended
    /// after it, oldest first. The enclave verifies that commit counters
    /// form an unbroken chain ending at the hardware monotonic counter;
    /// any gap — a rolled-back snapshot, a dropped log suffix, a torn
    /// tail — is rejected with [`ProtocolError::StaleState`].
    Recover {
        /// Sealed snapshot from [`Effect::Persist`], if one was taken.
        snapshot: Option<Vec<u8>>,
        /// Sealed WAL records from [`Effect::AppendLog`], oldest first.
        log: Vec<Vec<u8>>,
    },
    /// Pumps the admission layer: expires queued/deferred ops past their
    /// deadline, drains any unlocked channel with a backlog, and
    /// re-dispatches messages stashed while the monotonic counter was
    /// throttled (persistent mode, §6.2). The host calls this at the
    /// time given by [`HostEvent::PumpAt`].
    PumpAdmission,
    /// Initiates a cross-chain atomic swap: trades `amount` of our
    /// balance on `channel` for `alt_amount` locked for us on the
    /// alternate chain behind an HTLC hashed to a secret drawn inside
    /// this enclave. As an operation it completes with
    /// [`OpOutput::Swap`](crate::ops::OpOutput::Swap) once the swap
    /// resolves (redeemed or refunded) — a stuck swap is a protocol bug.
    Swap {
        /// Host-chosen swap instance id (operation correlation).
        swap: SwapId,
        /// The channel whose balance is traded.
        channel: ChannelId,
        /// Channel balance moved to the counterparty on redeem.
        amount: u64,
        /// Alternate-chain value the counterparty must lock for us.
        alt_amount: u64,
        /// HTLC refund timelock in alternate-chain confirmations.
        timeout_blocks: u64,
    },
    /// Host's answer to [`HostEvent::SwapFundingNeeded`]: the HTLC
    /// output was funded on the alternate chain at `outpoint`.
    SwapFunded {
        /// The swap.
        swap: SwapId,
        /// The funded HTLC output.
        outpoint: teechain_blockchain::OutPoint,
    },
    /// Host's answer to [`HostEvent::VerifySwapHtlc`]: whether the
    /// counterparty's HTLC is live on the alternate chain with the
    /// expected script and value.
    SwapHtlcVerified {
        /// The swap.
        swap: SwapId,
        /// True if the HTLC checked out (script and value match a live
        /// confirmed output).
        valid: bool,
        /// Confirmations of the HTLC output as observed by the host. The
        /// enclave — not the host — enforces the maturity policy: it
        /// redeems only while the refund timelock still has headroom
        /// (`confirmations + SWAP_REFUND_SAFETY_BLOCKS < timeout_blocks`),
        /// so a lock delivered late cannot extract the secret.
        confirmations: u64,
    },
    /// Host timer report for a swap (armed by
    /// [`HostEvent::SwapCheckAt`]): the current alternate-chain view of
    /// the HTLC output. Drives deadline aborts, timeout refunds, and the
    /// chain-watch redeem fallback (learning the preimage from a
    /// confirmed claim spend instead of a lost `SwapSecret` message).
    SwapTick {
        /// The swap.
        swap: SwapId,
        /// Preimage carried by a confirmed spend of the HTLC, if any.
        spent_preimage: Option<Vec<u8>>,
        /// Confirmations of the HTLC output (0 if unfunded/spent).
        confirmations: u64,
        /// True once our own claim spend is confirmed.
        claim_confirmed: bool,
    },
}

/// Notifications from the enclave to its host.
#[derive(Debug, Clone)]
pub enum HostEvent {
    /// Our identity key (answer to [`Command::GetIdentity`]).
    Identity(PublicKey),
    /// A fresh in-enclave blockchain address.
    NewAddress(PublicKey),
    /// A committee spec for funding a new m-of-n deposit (§6.1).
    CommitteeAddress(crate::types::CommitteeSpec),
    /// Secure session established with `0`.
    SessionEstablished(PublicKey),
    /// Channel fully open.
    ChannelOpen(ChannelId),
    /// The host must check that a remote deposit is confirmed on chain and
    /// answer with [`Command::DepositVerified`].
    VerifyDeposit {
        /// Deposit owner.
        remote: PublicKey,
        /// The deposit to verify.
        deposit: Deposit,
    },
    /// A remote approved our deposit; it may now be associated.
    DepositApproved {
        /// The counterparty.
        remote: PublicKey,
        /// Our deposit.
        outpoint: teechain_blockchain::OutPoint,
    },
    /// Deposit association completed on our side.
    DepositAssociated {
        /// Channel.
        id: ChannelId,
        /// Deposit.
        outpoint: teechain_blockchain::OutPoint,
    },
    /// Deposit dissociation acknowledged; deposit is free again.
    DepositDissociated {
        /// Channel.
        id: ChannelId,
        /// Deposit.
        outpoint: teechain_blockchain::OutPoint,
    },
    /// An incoming payment was applied.
    PaymentReceived {
        /// Channel.
        id: ChannelId,
        /// Amount.
        amount: u64,
        /// Batched count.
        count: u32,
    },
    /// Our payment was acknowledged (the paper's latency endpoint).
    PaymentAcked {
        /// Channel.
        id: ChannelId,
        /// Amount.
        amount: u64,
        /// Batched count.
        count: u32,
    },
    /// A payment we sent was refused by the remote (terminal: its
    /// admission queue was full, expired, or the channel closed there);
    /// balances were rolled back.
    PaymentNacked {
        /// Channel.
        id: ChannelId,
        /// Amount rolled back.
        amount: u64,
        /// Batched count.
        count: u32,
        /// The remote's refusal reason, carried on the wire nack.
        reason: ProtocolError,
    },
    /// A queued payment was dropped without ever reaching the wire
    /// (terminal): the channel closed, the admission deadline passed, or
    /// the balance could not cover it at drain time.
    PaymentRejected {
        /// Channel.
        id: ChannelId,
        /// Amount (never debited).
        amount: u64,
        /// Batched count.
        count: u32,
        /// Why the op was dropped.
        reason: ProtocolError,
    },
    /// Channel settled cooperatively off-chain; deposits are free.
    SettledOffChain(ChannelId),
    /// A settlement transaction is ready and was broadcast.
    SettlementBroadcast {
        /// Channel (or route) context.
        id: ChannelId,
        /// The settlement txid.
        txid: teechain_blockchain::TxId,
    },
    /// A multi-hop payment completed end-to-end (we are p1).
    MultihopComplete {
        /// The route.
        route: RouteId,
        /// Amount delivered.
        amount: u64,
    },
    /// A multi-hop payment failed at lock stage and was rolled back.
    MultihopFailed {
        /// The route.
        route: RouteId,
        /// The refusing hop's failure reason, carried backward along the
        /// abort unwind so the originator learns *why* (e.g. an
        /// intermediary's [`ProtocolError::InsufficientBalance`]).
        reason: ProtocolError,
    },
    /// An incoming multi-hop payment credited us (we are pn).
    MultihopReceived {
        /// The route.
        route: RouteId,
        /// Amount received.
        amount: u64,
    },
    /// A settlement needs co-signatures from committee members; the host
    /// must gather them (e.g. via node-level `SigRequest`s) and answer
    /// with [`Command::AddCoSigs`].
    NeedCoSign {
        /// Request id.
        req_id: u64,
        /// The partially signed transaction.
        tx: teechain_blockchain::Transaction,
    },
    /// Result of a [`Command::CoSign`].
    CoSignResult {
        /// Echoed request id.
        req_id: u64,
        /// Signatures granted.
        sigs: Vec<(u32, Signature)>,
        /// True if verification failed and signing was refused.
        refused: bool,
    },
    /// A backup attached to us (we are now replicated).
    BackupAttached(PublicKey),
    /// Replica summary after a force-freeze read.
    ReplicaState {
        /// Number of replicated channels.
        channels: usize,
        /// Number of replicated deposits.
        deposits: usize,
        /// Replication updates applied.
        applied_seq: u64,
    },
    /// This enclave froze (force-freeze tripped or Byzantine suspicion).
    Frozen,
    /// The admission layer wants a pump: call [`Command::PumpAdmission`]
    /// at the given time (ns) — a queued-op deadline, or the monotonic
    /// counter's `ready_at`. Hosts keep the earliest outstanding time.
    PumpAt(u64),
    /// Crash recovery succeeded (answer to [`Command::Recover`]).
    Recovered {
        /// Channels restored.
        channels: usize,
        /// Deposits restored (own and remote).
        deposits: usize,
        /// Durable commits replayed (snapshot counter + WAL records).
        commits: u64,
    },
    /// The responder host must fund this HTLC script with `value` on the
    /// alternate chain and answer with [`Command::SwapFunded`].
    SwapFundingNeeded {
        /// The swap.
        swap: SwapId,
        /// The HTLC script to fund.
        script: teechain_blockchain::ScriptPubKey,
        /// The value to lock.
        value: u64,
    },
    /// The initiator host must check that the counterparty's HTLC is
    /// live on the alternate chain — exactly `script` with `value` at
    /// `outpoint` — and answer with [`Command::SwapHtlcVerified`],
    /// reporting the output's confirmation count so the enclave can
    /// refuse a lock whose refund timelock is already (near) mature.
    VerifySwapHtlc {
        /// The swap.
        swap: SwapId,
        /// Where the counterparty claims to have funded it.
        outpoint: teechain_blockchain::OutPoint,
        /// The script the output must carry.
        script: teechain_blockchain::ScriptPubKey,
        /// The value the output must carry.
        value: u64,
    },
    /// The swap wants a chain/deadline check: call [`Command::SwapTick`]
    /// with the alternate-chain view at the given time (ns).
    SwapCheckAt {
        /// The swap.
        swap: SwapId,
        /// When to tick (ns).
        at: u64,
    },
    /// A swap entered a new phase (metrics; non-terminal).
    SwapPhaseEntered {
        /// The swap.
        swap: SwapId,
        /// The phase just entered.
        phase: SwapPhase,
    },
    /// A swap resolved — terminal for the initiating operation. Both
    /// resolutions are successful completions; `redeemed` says which
    /// branch the two-ledger atomic outcome took.
    SwapResolved {
        /// The swap.
        swap: SwapId,
        /// True if redeemed on both ledgers, false if refunded on both.
        redeemed: bool,
    },
}

/// Effects the host must carry out.
#[derive(Debug, Clone)]
pub enum Effect {
    /// Send `wire` to the node operating the enclave with identity `to`.
    Send {
        /// Destination enclave identity.
        to: PublicKey,
        /// Encoded [`WireMsg`].
        wire: Vec<u8>,
    },
    /// Broadcast a transaction to the blockchain.
    Broadcast(teechain_blockchain::Transaction),
    /// Broadcast a transaction to the *alternate* chain (cross-chain
    /// atomic swaps: HTLC claim and refund spends).
    BroadcastAlt(teechain_blockchain::Transaction),
    /// Notify the host application.
    Event(HostEvent),
    /// Persist this sealed full-state snapshot, superseding the WAL so
    /// far — the host should compact (persistent-storage mode, §6.2).
    Persist(Vec<u8>),
    /// Append this sealed commit record to the write-ahead log and make
    /// it durable before releasing the accompanying effects
    /// (persistent-storage mode, §6.2). One record carries a whole
    /// group-committed batch of state deltas.
    AppendLog(Vec<u8>),
}

/// Result of an ecall.
pub type Outcome = Result<Vec<Effect>, ProtocolError>;

/// Version tag of the durable state-image format (the legacy format has
/// no tag; its first byte is the 0/1 of an `Option`).
const STATE_IMAGE_V2: u8 = 2;
/// V3 appends the atomic-swap table after the blockchain keys.
const STATE_IMAGE_V3: u8 = 3;

/// Initiator/responder wall-or-sim-clock budget (ns) for a swap to reach
/// resolution before the local deadline abort kicks in. Generous enough
/// for live round trips; sim tests advance virtual time past it.
const SWAP_DEADLINE_NS: u64 = 2_000_000_000;
/// Re-check cadence (ns) for a pending swap's chain watch.
const SWAP_CHECK_INTERVAL_NS: u64 = 200_000_000;
/// Minimum headroom, in alternate-chain blocks, the initiator demands
/// between an HTLC's confirmations and its refund timelock before it
/// debits the channel and reveals the secret. A responder that delivers
/// the lock late — refund path mature or about to mature — could race
/// its own refund against our claim and win on both ledgers; refusing
/// while `confirmations + margin >= timeout_blocks` closes that window.
const SWAP_REFUND_SAFETY_BLOCKS: u64 = 1;

/// The Teechain enclave program state.
pub struct TeechainEnclave {
    pub(crate) cfg: EnclaveConfig,
    pub(crate) identity: Option<Keypair>,
    pub(crate) sessions: HashMap<PublicKey, Session>,
    /// Our ephemeral private keys for in-flight handshakes.
    pub(crate) pending_eph: HashMap<PublicKey, PrivateKey>,
    pub(crate) channels: HashMap<ChannelId, Channel>,
    pub(crate) book: DepositBook,
    pub(crate) routes: HashMap<RouteId, crate::multihop::RouteState>,
    pub(crate) rep: Replication,
    pub(crate) sig_collects: HashMap<u64, SigCollect>,
    pub(crate) next_req_id: u64,
    pub(crate) frozen: bool,
    pub(crate) counter_id: Option<usize>,
    /// Decrypted messages stashed while the counter was throttled.
    pub(crate) pending_msgs: std::collections::VecDeque<(PublicKey, ProtocolMsg)>,
    /// Durable commits performed (persistent mode); drives the snapshot
    /// cadence. Restored during recovery.
    pub(crate) commits: u64,
    /// Admission layer: per-channel queues of local ops and deferred
    /// inbound messages waiting on a locked channel, plus the ack
    /// fan-out bookkeeping for batched payments. Volatile (§6.2): queued
    /// ops that never committed simply vanish on crash.
    pub(crate) admit: AdmitState,
    /// Cross-chain atomic swaps by instance id. Durable: every phase
    /// transition stages a [`StateDelta::Swap`] and the table rides the
    /// sealed state image (v3), so swaps recover exactly-once.
    pub(crate) swaps: HashMap<SwapId, SwapState>,
}

impl TeechainEnclave {
    /// Creates the program (state is empty until first ecall).
    pub fn new(cfg: EnclaveConfig) -> Self {
        TeechainEnclave {
            cfg,
            identity: None,
            sessions: HashMap::new(),
            pending_eph: HashMap::new(),
            channels: HashMap::new(),
            book: DepositBook::default(),
            routes: HashMap::new(),
            rep: Replication::default(),
            sig_collects: HashMap::new(),
            next_req_id: 0,
            frozen: false,
            counter_id: None,
            pending_msgs: std::collections::VecDeque::new(),
            commits: 0,
            admit: AdmitState::default(),
            swaps: HashMap::new(),
        }
    }

    pub(crate) fn identity(&mut self, env: &mut EnclaveEnv) -> Keypair {
        if self.identity.is_none() {
            let seed = env.random_bytes32();
            self.identity = Some(Keypair::from_seed(&seed));
        }
        *self.identity.as_ref().expect("just set")
    }

    pub(crate) fn require_unfrozen(&self) -> Result<(), ProtocolError> {
        if self.frozen {
            Err(ProtocolError::Frozen)
        } else {
            Ok(())
        }
    }

    /// Our monotonic counter id, reusing the device counter across enclave
    /// restarts (hardware counters outlive the program, §6.2).
    pub(crate) fn ensure_counter(&mut self, env: &mut EnclaveEnv) -> usize {
        if let Some(id) = self.counter_id {
            return id;
        }
        let id = if env.counter_count() > 0 {
            0
        } else {
            env.create_counter(teechain_tee::counter::DEFAULT_THROTTLE_NS)
        };
        self.counter_id = Some(id);
        id
    }

    /// In persistent mode, mutating operations must be able to increment
    /// the monotonic counter *now*; otherwise they are rejected up front
    /// so no state mutates (the host retries at `ready_at`). This is what
    /// caps stable-storage throughput at 10 tx/s (Table 1).
    pub(crate) fn require_counter_ready(
        &mut self,
        env: &mut EnclaveEnv,
    ) -> Result<(), ProtocolError> {
        if !self.cfg.persist() {
            return Ok(());
        }
        let id = self.ensure_counter(env);
        let ready_at = env.counter_ready_at(id);
        if env.now_ns() < ready_at {
            return Err(ProtocolError::CounterThrottled { ready_at });
        }
        Ok(())
    }

    pub(crate) fn session_mut(
        &mut self,
        remote: &PublicKey,
    ) -> Result<&mut Session, ProtocolError> {
        match self.sessions.get_mut(remote) {
            Some(s) if s.established => Ok(s),
            _ => Err(ProtocolError::NoSession),
        }
    }

    /// Seals `msg` for `remote` into a `Send` effect.
    pub(crate) fn seal_to(
        &mut self,
        remote: &PublicKey,
        msg: &ProtocolMsg,
    ) -> Result<Effect, ProtocolError> {
        let me = self.identity.as_ref().ok_or(ProtocolError::NoSession)?.pk;
        let session = self.session_mut(remote)?;
        let wire = session.seal(&me, msg);
        Ok(Effect::Send {
            to: *remote,
            wire: wire.encode_to_vec(),
        })
    }

    pub(crate) fn channel_mut(&mut self, id: &ChannelId) -> Result<&mut Channel, ProtocolError> {
        self.channels
            .get_mut(id)
            .ok_or(ProtocolError::UnknownChannel)
    }

    pub(crate) fn stage_delta(&mut self, delta: StateDelta) {
        self.rep.staged.push(delta);
    }

    pub(crate) fn stage_channel(&mut self, id: &ChannelId) {
        if let Some(c) = self.channels.get(id) {
            let boxed = Box::new(c.clone());
            self.rep.staged.push(StateDelta::Channel(boxed));
        }
    }

    fn next_req_id(&mut self) -> u64 {
        self.next_req_id += 1;
        self.next_req_id
    }

    /// Finishes a settlement: signs with every key we hold; broadcasts if
    /// thresholds are met, otherwise opens a co-sign collection and asks
    /// the host to gather committee signatures.
    pub(crate) fn finish_settlement(
        &mut self,
        id: ChannelId,
        mut tx: teechain_blockchain::Transaction,
        effects: &mut Vec<Effect>,
    ) {
        // Sign every input with every key we can resolve: our own deposit
        // book, keys replicated to us, and our committee chain key — a
        // backup settling for a crashed primary needs all three (§6.1).
        let sighash = tx.sighash();
        for input in &mut tx.inputs {
            let dep = self
                .book
                .deposit_of(&input.prevout)
                .cloned()
                .or_else(|| self.rep.replica.deposits.get(&input.prevout).cloned());
            if let Some(dep) = dep {
                for member in &dep.committee.member_keys {
                    let sk = self
                        .book
                        .keys
                        .get(member)
                        .or_else(|| self.rep.replica.keys.get(member));
                    if let Some(sk) = sk {
                        let sig = teechain_crypto::schnorr::sign(sk, &sighash);
                        if !input.witness.contains(&sig) {
                            input.witness.push(sig);
                        }
                    }
                }
            }
        }
        let deposit_of = |op: &teechain_blockchain::OutPoint| {
            self.book
                .deposit_of(op)
                .or_else(|| self.rep.replica.deposits.get(op))
        };
        if settle::threshold_met(&tx, deposit_of) {
            effects.push(Effect::Event(HostEvent::SettlementBroadcast {
                id,
                txid: tx.txid(),
            }));
            effects.push(Effect::Broadcast(tx));
        } else {
            let req_id = self.next_req_id();
            self.sig_collects
                .insert(req_id, SigCollect { id, tx: tx.clone() });
            effects.push(Effect::Event(HostEvent::NeedCoSign { req_id, tx }));
        }
    }

    // ---- Alg. 1 command handlers ----

    fn cmd_new_channel(
        &mut self,
        env: &mut EnclaveEnv,
        id: ChannelId,
        remote: PublicKey,
        my_settlement: PublicKey,
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        self.session_mut(&remote)?;
        if self.channels.contains_key(&id) {
            return Err(ProtocolError::ChannelExists);
        }
        // Remote settlement arrives in the ack.
        let chan = Channel::new(id, remote, my_settlement, my_settlement);
        self.channels.insert(id, chan);
        let msg = ProtocolMsg::NewChannel {
            id,
            settlement: my_settlement,
        };
        let eff = self.seal_to(&remote, &msg)?;
        self.stage_channel(&id);
        Ok(vec![eff])
    }

    fn on_new_channel(&mut self, from: PublicKey, id: ChannelId, settlement: PublicKey) -> Outcome {
        self.require_unfrozen()?;
        if self.channels.contains_key(&id) {
            return Err(ProtocolError::ChannelExists);
        }
        // We need our own settlement address: generate one from the
        // deposit book if the host pre-registered one; otherwise reuse our
        // identity-derived address. Hosts normally call NewAddress first
        // and open channels themselves; as responder we auto-accept with a
        // fresh address derived from the channel id and our identity.
        let my_settlement = self.responder_settlement(&id);
        let mut chan = Channel::new(id, from, my_settlement, settlement);
        chan.is_open = true;
        self.channels.insert(id, chan);
        let msg = ProtocolMsg::NewChannelAck {
            id,
            settlement: my_settlement,
        };
        let eff = self.seal_to(&from, &msg)?;
        self.stage_channel(&id);
        Ok(vec![eff, Effect::Event(HostEvent::ChannelOpen(id))])
    }

    /// Deterministic responder settlement key: derived inside the TEE from
    /// our identity and the channel id, and registered in the book so we
    /// can also spend from it in tests.
    fn responder_settlement(&mut self, id: &ChannelId) -> PublicKey {
        let me = self.identity.as_ref().expect("session exists").sk;
        let seed = teechain_crypto::sha256::tagged_hash(
            "teechain/responder-settlement",
            &[&me.to_bytes(), &id.0],
        );
        let sk = PrivateKey::from_seed(&seed);
        self.book.insert_key(sk)
    }

    fn on_new_channel_ack(
        &mut self,
        from: PublicKey,
        id: ChannelId,
        settlement: PublicKey,
    ) -> Outcome {
        let chan = self.channel_mut(&id)?;
        if chan.remote != from || chan.is_open {
            return Err(ProtocolError::BadMessage);
        }
        chan.remote_settlement = settlement;
        chan.is_open = true;
        self.stage_channel(&id);
        Ok(vec![Effect::Event(HostEvent::ChannelOpen(id))])
    }

    fn cmd_new_deposit(&mut self, env: &mut EnclaveEnv, deposit: Deposit) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        let key = self
            .book
            .keys
            .get(&deposit.committee.member_keys[0])
            .map(|k| k.to_bytes());
        self.book.add_mine(deposit.clone())?;
        self.stage_delta(StateDelta::Deposit {
            dep: deposit,
            key,
            mine: true,
        });
        Ok(vec![])
    }

    fn cmd_release_deposit(
        &mut self,
        env: &mut EnclaveEnv,
        outpoint: teechain_blockchain::OutPoint,
        to: PublicKey,
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        let dep = self.book.require_free(&outpoint)?.clone();
        self.book.set_status(&outpoint, DepositStatus::Spent);
        self.stage_delta(StateDelta::RemoveDeposit(outpoint));
        let tx = settle::release_tx(&dep, to);
        let mut effects = Vec::new();
        // Release uses the same signing/co-signing path as settlements.
        self.finish_settlement(ChannelId([0; 32]), tx, &mut effects);
        Ok(effects)
    }

    fn cmd_approve_deposit(
        &mut self,
        remote: PublicKey,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Outcome {
        self.require_unfrozen()?;
        let dep = self.book.require_free(&outpoint)?.clone();
        if self.book.is_approved_by(&remote, &outpoint) {
            return Err(ProtocolError::BadDeposit); // Already approved.
        }
        let msg = ProtocolMsg::ApproveDeposit { deposit: dep };
        Ok(vec![self.seal_to(&remote, &msg)?])
    }

    fn on_approve_deposit(&mut self, from: PublicKey, deposit: Deposit) -> Outcome {
        self.require_unfrozen()?;
        if self.book.did_approve(&from, &deposit.outpoint) {
            return Err(ProtocolError::BadDeposit);
        }
        // The enclave cannot read the blockchain (§4): the host must verify
        // inclusion and confirmations per its own security policy, then
        // answer with DepositVerified.
        Ok(vec![Effect::Event(HostEvent::VerifyDeposit {
            remote: from,
            deposit,
        })])
    }

    fn cmd_deposit_verified(
        &mut self,
        remote: PublicKey,
        outpoint: teechain_blockchain::OutPoint,
        valid: bool,
    ) -> Outcome {
        self.require_unfrozen()?;
        if !valid {
            return Ok(vec![]);
        }
        // The host re-presents the deposit body it verified; we keep the
        // copy from the pending approval. For simplicity the verify event
        // carried the full deposit; hosts echo only identity + outpoint, so
        // we require the deposit to have been offered before.
        let dep = match self.book.remote.get(&outpoint) {
            Some(d) => d.clone(),
            None => return Err(ProtocolError::BadDeposit),
        };
        self.book.approve_remote(remote, dep);
        let msg = ProtocolMsg::DepositApproved { outpoint };
        Ok(vec![self.seal_to(&remote, &msg)?])
    }

    fn on_deposit_approved(
        &mut self,
        from: PublicKey,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Outcome {
        self.book.require_free(&outpoint)?;
        self.book.mark_approved_by(from, outpoint);
        Ok(vec![Effect::Event(HostEvent::DepositApproved {
            remote: from,
            outpoint,
        })])
    }

    fn cmd_associate(
        &mut self,
        env: &mut EnclaveEnv,
        id: ChannelId,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        let chan = self
            .channels
            .get(&id)
            .ok_or(ProtocolError::UnknownChannel)?;
        if !chan.usable() {
            return Err(ProtocolError::ChannelNotOpen);
        }
        if chan.locked() {
            return Err(ProtocolError::ChannelLocked);
        }
        let remote = chan.remote;
        if !self.book.is_approved_by(&remote, &outpoint) {
            return Err(ProtocolError::BadDeposit);
        }
        let dep = self.book.require_free(&outpoint)?.clone();
        // For 1-of-1 deposits, share the private key so the remote can
        // settle unilaterally (Alg. 1 line 72). Committee deposits are
        // spendable via m-of-n signatures instead.
        let key = if dep.committee.n() == 1 {
            self.book
                .keys
                .get(&dep.committee.member_keys[0])
                .map(|k| k.to_bytes())
        } else {
            None
        };
        self.book
            .set_status(&outpoint, DepositStatus::Associated(id));
        let chan = self.channels.get_mut(&id).expect("checked");
        chan.my_deps.push(outpoint);
        chan.my_deps.sort();
        chan.my_bal += dep.value;
        self.stage_channel(&id);
        self.stage_delta(StateDelta::Deposit {
            dep: dep.clone(),
            key,
            mine: true,
        });
        let msg = ProtocolMsg::AssociateDeposit {
            id,
            deposit: dep,
            key,
        };
        let eff = self.seal_to(&remote, &msg)?;
        Ok(vec![
            eff,
            Effect::Event(HostEvent::DepositAssociated { id, outpoint }),
        ])
    }

    fn on_associate(
        &mut self,
        from: PublicKey,
        id: ChannelId,
        deposit: Deposit,
        key: Option<[u8; 32]>,
    ) -> Outcome {
        self.require_unfrozen()?;
        if !self.book.did_approve(&from, &deposit.outpoint) {
            return Err(ProtocolError::BadDeposit);
        }
        let chan = self.channel_mut(&id)?;
        if chan.remote != from || !chan.usable() {
            return Err(ProtocolError::BadMessage);
        }
        chan.remote_deps.push(deposit.outpoint);
        chan.remote_deps.sort();
        chan.remote_bal += deposit.value;
        let outpoint = deposit.outpoint;
        if let Some(bytes) = key {
            if let Some(sk) = PrivateKey::from_bytes(&bytes) {
                self.book.insert_key(sk);
            }
        }
        self.book.remote.insert(outpoint, deposit.clone());
        self.stage_channel(&id);
        self.stage_delta(StateDelta::Deposit {
            dep: deposit,
            key,
            mine: false,
        });
        Ok(vec![Effect::Event(HostEvent::DepositAssociated {
            id,
            outpoint,
        })])
    }

    fn cmd_dissociate(
        &mut self,
        env: &mut EnclaveEnv,
        id: ChannelId,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        let dep_value = self
            .book
            .value_of(&outpoint)
            .ok_or(ProtocolError::BadDeposit)?;
        let chan = self.channel_mut(&id)?;
        if chan.locked() {
            return Err(ProtocolError::ChannelLocked);
        }
        if !chan.my_deps.contains(&outpoint) {
            return Err(ProtocolError::BadDeposit);
        }
        // Double-spend guard (Alg. 1 line 92): our balance must cover the
        // deposit being withdrawn.
        if chan.my_bal < dep_value {
            return Err(ProtocolError::InsufficientBalance);
        }
        chan.pending_dissoc.push(outpoint);
        let remote = chan.remote;
        self.stage_channel(&id);
        let msg = ProtocolMsg::DissociateDeposit { id, outpoint };
        Ok(vec![self.seal_to(&remote, &msg)?])
    }

    fn on_dissociate(
        &mut self,
        from: PublicKey,
        id: ChannelId,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Outcome {
        self.require_unfrozen()?;
        let dep_value = self
            .book
            .value_of(&outpoint)
            .ok_or(ProtocolError::BadDeposit)?;
        let chan = self.channel_mut(&id)?;
        if chan.remote != from || !chan.remote_deps.contains(&outpoint) {
            return Err(ProtocolError::BadMessage);
        }
        if chan.remote_bal < dep_value {
            return Err(ProtocolError::InsufficientBalance);
        }
        chan.remote_deps.retain(|d| *d != outpoint);
        chan.remote_bal -= dep_value;
        // Destroy our copy of the key (Alg. 1 line 104).
        if let Some(dep) = self.book.remote.get(&outpoint) {
            let key0 = dep.committee.member_keys[0];
            self.book.destroy_key(&key0);
        }
        self.stage_channel(&id);
        let msg = ProtocolMsg::DissociateAck { id, outpoint };
        let mut effects = vec![self.seal_to(&from, &msg)?];
        self.maybe_finish_offchain_settle(&id, &mut effects);
        Ok(effects)
    }

    /// Terminal check for a cooperative off-chain settlement we initiated
    /// (Alg. 1 line 106): once every deposit on both sides has
    /// dissociated and no dissociation ack is outstanding, the
    /// termination is complete and exactly one `SettledOffChain`
    /// notification resolves the initiator's settle operation. (The
    /// responder reports its own side in `on_settle_request`.)
    fn maybe_finish_offchain_settle(&mut self, id: &ChannelId, effects: &mut Vec<Effect>) {
        let Some(chan) = self.channels.get_mut(id) else {
            return;
        };
        if chan.settling
            && chan.my_deps.is_empty()
            && chan.remote_deps.is_empty()
            && chan.pending_dissoc.is_empty()
        {
            chan.settling = false;
            self.stage_channel(id);
            effects.push(Effect::Event(HostEvent::SettledOffChain(*id)));
        }
    }

    fn on_dissociate_ack(
        &mut self,
        from: PublicKey,
        id: ChannelId,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Outcome {
        let dep_value = self
            .book
            .value_of(&outpoint)
            .ok_or(ProtocolError::BadDeposit)?;
        let chan = self.channel_mut(&id)?;
        if chan.remote != from || !chan.pending_dissoc.contains(&outpoint) {
            return Err(ProtocolError::BadMessage);
        }
        chan.pending_dissoc.retain(|d| *d != outpoint);
        chan.my_deps.retain(|d| *d != outpoint);
        chan.my_bal -= dep_value;
        self.book.set_status(&outpoint, DepositStatus::Free);
        self.stage_channel(&id);
        let mut effects = vec![Effect::Event(HostEvent::DepositDissociated {
            id,
            outpoint,
        })];
        self.maybe_finish_offchain_settle(&id, &mut effects);
        Ok(effects)
    }

    /// Lock-aware channel selection (admission's second tool besides
    /// queueing): when `id` is locked, another open, unlocked channel to
    /// the *same counterparty* with enough balance can carry the payment
    /// instead — that is exactly what the paper's parallel temporary
    /// channels (§7.4, Fig. 7) exist for. Deterministic pick: highest
    /// spendable balance, largest id as tie-break, so every engine
    /// configuration chooses the same sibling regardless of map order.
    pub(crate) fn sibling_unlocked(&self, id: &ChannelId, amount: u64) -> Option<ChannelId> {
        let want = self.channels.get(id)?.remote;
        self.channels
            .iter()
            .filter(|(cid, c)| {
                **cid != *id && c.remote == want && c.usable() && !c.locked() && c.my_bal >= amount
            })
            .max_by_key(|(cid, c)| (c.my_bal, **cid))
            .map(|(cid, _)| *cid)
    }

    fn cmd_pay(&mut self, env: &mut EnclaveEnv, id: ChannelId, amount: u64, count: u32) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        let chan = self
            .channels
            .get(&id)
            .ok_or(ProtocolError::UnknownChannel)?;
        if !chan.usable() {
            return Err(ProtocolError::ChannelNotOpen);
        }
        // Lock-aware selection: a locked channel does not park the payment
        // when a parallel channel to the same peer can carry it right now.
        // The op stays correlated to the channel it was *submitted* on —
        // the inflight group records that id, so the ack fans back out
        // under the caller's key.
        let wire = if chan.locked() {
            match self.sibling_unlocked(&id, amount) {
                Some(sib) => {
                    self.admit.stats.rerouted += 1;
                    sib
                }
                None => {
                    // Admission (vs the old `Err(ChannelLocked)` retry
                    // storm): park the op on the channel's FIFO; the
                    // unlock drain batches it with its queue neighbours
                    // into one commit. Only a full queue still pushes
                    // back on the caller.
                    let q = self.admit.queues.entry(id).or_default();
                    if q.len() >= ADMIT_QUEUE_CAP {
                        return Err(ProtocolError::ChannelLocked);
                    }
                    let deadline_ns = env.now_ns() + ADMIT_DEADLINE_NS;
                    q.push_back(QueueEntry {
                        op: QueuedOp::Pay { amount, count },
                        deadline_ns,
                        ready_ns: 0,
                    });
                    let depth = q.len();
                    self.admit.stats.enqueued += 1;
                    self.admit.stats.note_queue_depth(depth);
                    return Ok(vec![Effect::Event(HostEvent::PumpAt(deadline_ns))]);
                }
            }
        } else {
            id
        };
        let chan = &self.channels[&wire];
        if chan.my_bal < amount {
            return Err(ProtocolError::InsufficientBalance);
        }
        let remote = chan.remote;
        let msg = ProtocolMsg::Pay {
            id: wire,
            amount,
            count,
        };
        let eff = self.seal_to(&remote, &msg)?;
        let chan = self.channels.get_mut(&wire).expect("checked");
        chan.my_bal -= amount;
        chan.remote_bal += amount;
        self.stage_delta(StateDelta::Pay {
            id: wire,
            my_delta: -(amount as i64),
            remote_delta: amount as i64,
        });
        // Every outbound wire `Pay` registers an ack fan-out group so
        // `PayAck`/`PayNack` resolve ops strictly in send order, keyed by
        // the channel each op was submitted on.
        self.admit
            .inflight
            .entry(wire)
            .or_default()
            .push_back(vec![(id, amount, count)]);
        Ok(vec![eff])
    }

    fn on_pay(
        &mut self,
        env: &mut EnclaveEnv,
        from: PublicKey,
        id: ChannelId,
        amount: u64,
        count: u32,
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        let chan = self.channel_mut(&id)?;
        if chan.remote != from || !chan.usable() {
            return Err(ProtocolError::BadMessage);
        }
        if chan.locked() {
            // The channel was locked for a multi-hop payment after the
            // peer sent this pay (racing in the other direction). Defer
            // the decrypted message; the unlock drain re-delivers it. A
            // full deferral queue falls back to the old nack-and-rollback.
            let dq = self.admit.deferred.entry(id).or_default();
            if dq.len() >= ADMIT_QUEUE_CAP {
                let msg = ProtocolMsg::PayNack {
                    id,
                    amount,
                    count,
                    reason: ProtocolError::ChannelLocked.abort_code(),
                };
                return Ok(vec![self.seal_to(&from, &msg)?]);
            }
            let deadline_ns = env.now_ns() + DEFER_DEADLINE_NS;
            dq.push_back(DeferredMsg {
                from,
                msg: ProtocolMsg::Pay { id, amount, count },
                deadline_ns,
            });
            let depth = dq.len();
            self.admit.stats.deferred += 1;
            self.admit.stats.note_defer_depth(depth);
            return Ok(vec![Effect::Event(HostEvent::PumpAt(deadline_ns))]);
        }
        let chan = self.channel_mut(&id)?;
        if chan.remote_bal < amount {
            return Err(ProtocolError::BadMessage); // Peer violated protocol.
        }
        chan.remote_bal -= amount;
        chan.my_bal += amount;
        self.stage_delta(StateDelta::Pay {
            id,
            my_delta: amount as i64,
            remote_delta: -(amount as i64),
        });
        let ack = ProtocolMsg::PayAck { id, amount, count };
        let eff = self.seal_to(&from, &ack)?;
        Ok(vec![
            eff,
            Effect::Event(HostEvent::PaymentReceived { id, amount, count }),
        ])
    }

    fn on_pay_ack(&mut self, from: PublicKey, id: ChannelId, amount: u64, count: u32) -> Outcome {
        let chan = self.channel_mut(&id)?;
        if chan.remote != from {
            return Err(ProtocolError::BadMessage);
        }
        // One wire ack covers a whole drain batch: fan it back out to one
        // event per merged op, in queue order (the op layer matches
        // per-channel FIFO). A missing group (pre-crash send) degrades to
        // the single aggregate event.
        match self.admit.inflight.get_mut(&id).and_then(|q| q.pop_front()) {
            Some(group) => Ok(group
                .into_iter()
                .map(|(oid, amount, count)| {
                    Effect::Event(HostEvent::PaymentAcked {
                        id: oid,
                        amount,
                        count,
                    })
                })
                .collect()),
            None => Ok(vec![Effect::Event(HostEvent::PaymentAcked {
                id,
                amount,
                count,
            })]),
        }
    }

    fn on_pay_nack(
        &mut self,
        from: PublicKey,
        id: ChannelId,
        amount: u64,
        count: u32,
        reason: u8,
    ) -> Outcome {
        let chan = self.channel_mut(&id)?;
        if chan.remote != from {
            return Err(ProtocolError::BadMessage);
        }
        // Roll back the optimistic debit (covers the whole wire batch).
        chan.my_bal += amount;
        chan.remote_bal -= amount;
        self.stage_delta(StateDelta::Pay {
            id,
            my_delta: amount as i64,
            remote_delta: -(amount as i64),
        });
        let reason = ProtocolError::from_abort_code(reason);
        match self.admit.inflight.get_mut(&id).and_then(|q| q.pop_front()) {
            Some(group) => Ok(group
                .into_iter()
                .map(|(oid, amount, count)| {
                    Effect::Event(HostEvent::PaymentNacked {
                        id: oid,
                        amount,
                        count,
                        reason: reason.clone(),
                    })
                })
                .collect()),
            None => Ok(vec![Effect::Event(HostEvent::PaymentNacked {
                id,
                amount,
                count,
                reason,
            })]),
        }
    }

    fn cmd_settle(&mut self, env: &mut EnclaveEnv, id: ChannelId) -> Outcome {
        self.require_counter_ready(env)?;
        let chan = self
            .channels
            .get(&id)
            .ok_or(ProtocolError::UnknownChannel)?;
        if chan.closed {
            return Err(ProtocolError::ChannelNotOpen);
        }
        if chan.locked() {
            return Err(ProtocolError::ChannelLocked);
        }
        // Anti-griefing: a settlement freezing the channel mid-swap could
        // strand the counterparty's HTLC (it locked on-chain funds against
        // a channel credit that would never land). The swap resolves
        // first — redeem or refund — then the channel may settle.
        if self.swap_pending_on(&id) {
            return Err(ProtocolError::SwapPending);
        }
        let chan = self.channels.get(&id).expect("checked");
        let remote = chan.remote;
        // Off-chain termination (Alg. 1 line 106): if balances are neutral
        // (every deposit's value equals its owner's share), dissociating
        // all deposits closes the channel with zero blockchain writes.
        let my_total: u64 = chan
            .my_deps
            .iter()
            .filter_map(|d| self.book.value_of(d))
            .sum();
        let remote_total: u64 = chan
            .remote_deps
            .iter()
            .filter_map(|d| self.book.value_of(d))
            .sum();
        if chan.my_bal == my_total && chan.remote_bal == remote_total {
            if chan.my_deps.is_empty() && chan.remote_deps.is_empty() {
                // Nothing funds the channel: the off-chain termination is
                // already complete on our side. Still ask the remote (so
                // its host gets its own SettledOffChain notification, as
                // in the deposit-carrying path), and report our terminal
                // state immediately — the initiator's settle operation
                // resolves on this notification.
                let msg = ProtocolMsg::SettleRequest { id };
                let eff = self.seal_to(&remote, &msg)?;
                return Ok(vec![eff, Effect::Event(HostEvent::SettledOffChain(id))]);
            }
            let my_deps = chan.my_deps.clone();
            let mut effects = Vec::new();
            for outpoint in my_deps {
                let chan = self.channels.get_mut(&id).expect("exists");
                chan.pending_dissoc.push(outpoint);
                let msg = ProtocolMsg::DissociateDeposit { id, outpoint };
                effects.push(self.seal_to(&remote, &msg)?);
            }
            // Ask the remote to dissociate its deposits too, and remember
            // that we are driving this settlement: the terminal
            // `SettledOffChain` fires once both deposit lists drain.
            let msg = ProtocolMsg::SettleRequest { id };
            effects.push(self.seal_to(&remote, &msg)?);
            let chan = self.channels.get_mut(&id).expect("exists");
            chan.settling = true;
            self.stage_channel(&id);
            return Ok(effects);
        }
        // On-chain settlement.
        let chan = self.channels.get_mut(&id).expect("exists");
        chan.closed = true;
        let tx = settle::current_settlement_tx(chan);
        self.stage_delta(StateDelta::CloseChannel(id));
        let mut effects = Vec::new();
        // Defensive: settle rejects locked channels, so the admission
        // queues are empty in practice — but flush so nothing can linger
        // behind a closed channel.
        self.flush_admission(id, ProtocolError::ChannelClosed, &mut effects);
        // Best-effort courtesy notification: unilateral settlement must
        // work with no session (e.g. after a crash-restore, §6.2).
        let notify = ProtocolMsg::ChannelClosed { id };
        if let Ok(eff) = self.seal_to(&remote, &notify) {
            effects.push(eff);
        }
        self.finish_settlement(id, tx, &mut effects);
        Ok(effects)
    }

    fn on_settle_request(&mut self, from: PublicKey, id: ChannelId) -> Outcome {
        self.require_unfrozen()?;
        // Mirror of the guard in `cmd_settle`: refuse to cooperate with a
        // peer settling out from under a pending swap.
        if self.swap_pending_on(&id) {
            return Err(ProtocolError::SwapPending);
        }
        let chan = self.channel_mut(&id)?;
        if chan.remote != from {
            return Err(ProtocolError::BadMessage);
        }
        let my_deps = chan.my_deps.clone();
        let mut effects = Vec::new();
        for outpoint in my_deps {
            // Reuse the dissociation path; each will complete via acks.
            let sub = self.cmd_dissociate_unchecked(id, outpoint)?;
            effects.extend(sub);
        }
        // If we had no deposits, the channel is fully neutral on our side.
        effects.push(Effect::Event(HostEvent::SettledOffChain(id)));
        Ok(effects)
    }

    /// Dissociation without the counter/freeze preamble (used internally
    /// during cooperative settlement, which already passed those checks).
    fn cmd_dissociate_unchecked(
        &mut self,
        id: ChannelId,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Outcome {
        let chan = self.channel_mut(&id)?;
        let remote = chan.remote;
        chan.pending_dissoc.push(outpoint);
        self.stage_channel(&id);
        let msg = ProtocolMsg::DissociateDeposit { id, outpoint };
        Ok(vec![self.seal_to(&remote, &msg)?])
    }

    fn on_channel_closed(&mut self, from: PublicKey, id: ChannelId) -> Outcome {
        let chan = self.channel_mut(&id)?;
        if chan.remote != from {
            return Err(ProtocolError::BadMessage);
        }
        chan.closed = true;
        // Our deposits in this channel are now spent by the settlement.
        let my_deps = chan.my_deps.clone();
        for d in my_deps {
            self.book.set_status(&d, DepositStatus::Spent);
        }
        self.stage_delta(StateDelta::CloseChannel(id));
        // Anything still queued behind the (remotely settled) channel is
        // terminal now.
        let mut effects = Vec::new();
        self.flush_admission(id, ProtocolError::ChannelClosed, &mut effects);
        Ok(effects)
    }

    // ---- Cross-chain atomic swaps (Command::Swap, [`crate::swap`]) ----

    /// True if any swap on `id` can still go either way.
    pub(crate) fn swap_pending_on(&self, id: &ChannelId) -> bool {
        self.swaps
            .values()
            .any(|s| s.channel == *id && s.phase.pending())
    }

    /// Marks a still-pending swap locally refunded — valid only on paths
    /// where nothing of OURS is locked on-chain — stages the transition,
    /// notifies the peer best-effort and resolves the operation. A
    /// responder's live HTLC is recovered separately by its chain-watch
    /// refund timer: that is how "both refunds land" without trust.
    fn refund_swap_local(&mut self, swap: SwapId, effects: &mut Vec<Effect>) {
        let Some(state) = self.swaps.get_mut(&swap) else {
            return;
        };
        state.phase = SwapPhase::Refunded;
        let remote = state.remote;
        let snap = Box::new(state.clone());
        self.stage_delta(StateDelta::Swap(snap));
        let nack = ProtocolMsg::SwapNack {
            swap,
            reason: ProtocolError::SwapPending.abort_code(),
        };
        if let Ok(eff) = self.seal_to(&remote, &nack) {
            effects.push(eff);
        }
        effects.push(Effect::Event(HostEvent::SwapPhaseEntered {
            swap,
            phase: SwapPhase::Refunded,
        }));
        effects.push(Effect::Event(HostEvent::SwapResolved {
            swap,
            redeemed: false,
        }));
    }

    fn cmd_swap(
        &mut self,
        env: &mut EnclaveEnv,
        swap: SwapId,
        channel: ChannelId,
        amount: u64,
        alt_amount: u64,
        timeout_blocks: u64,
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        if amount == 0 || alt_amount == 0 || timeout_blocks == 0 {
            return Err(ProtocolError::BadMessage);
        }
        if self.swaps.contains_key(&swap) {
            return Err(ProtocolError::BadMessage);
        }
        if self.swap_pending_on(&channel) {
            return Err(ProtocolError::SwapPending);
        }
        let chan = self
            .channels
            .get(&channel)
            .ok_or(ProtocolError::UnknownChannel)?;
        if !chan.usable() {
            return Err(ProtocolError::ChannelNotOpen);
        }
        if chan.locked() {
            return Err(ProtocolError::ChannelLocked);
        }
        if chan.my_bal < amount {
            return Err(ProtocolError::InsufficientBalance);
        }
        let remote = chan.remote;
        // The secret is born inside the enclave and leaves only through
        // the redeem itself (the claim spend / `SwapSecret` message).
        let secret = env.random_bytes32();
        let hash = sha256(&secret);
        let msg = ProtocolMsg::SwapInit {
            swap,
            channel,
            amount,
            alt_amount,
            hash,
            timeout_blocks,
        };
        let eff = self.seal_to(&remote, &msg)?;
        let deadline_ns = env.now_ns() + SWAP_DEADLINE_NS;
        let state = SwapState {
            id: swap,
            channel,
            remote,
            initiator: true,
            amount,
            alt_amount,
            hash,
            secret: Some(secret),
            timeout_blocks,
            htlc_outpoint: None,
            deadline_ns,
            phase: SwapPhase::Init,
        };
        self.swaps.insert(swap, state.clone());
        self.stage_delta(StateDelta::Swap(Box::new(state)));
        Ok(vec![
            eff,
            Effect::Event(HostEvent::SwapPhaseEntered {
                swap,
                phase: SwapPhase::Init,
            }),
            Effect::Event(HostEvent::SwapCheckAt {
                swap,
                at: deadline_ns,
            }),
        ])
    }

    #[allow(clippy::too_many_arguments)]
    fn on_swap_init(
        &mut self,
        env: &mut EnclaveEnv,
        from: PublicKey,
        swap: SwapId,
        channel: ChannelId,
        amount: u64,
        alt_amount: u64,
        hash: [u8; 32],
        timeout_blocks: u64,
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        if self.swaps.contains_key(&swap) || amount == 0 || alt_amount == 0 || timeout_blocks == 0 {
            return Err(ProtocolError::BadMessage);
        }
        let chan = self
            .channels
            .get(&channel)
            .ok_or(ProtocolError::UnknownChannel)?;
        if chan.remote != from || !chan.usable() {
            return Err(ProtocolError::BadMessage);
        }
        if self.swap_pending_on(&channel) {
            // One swap per channel at a time; refuse rather than stack.
            let nack = ProtocolMsg::SwapNack {
                swap,
                reason: ProtocolError::SwapPending.abort_code(),
            };
            return Ok(vec![self.seal_to(&from, &nack)?]);
        }
        let me = self.identity.as_ref().ok_or(ProtocolError::NoSession)?.pk;
        let deadline_ns = env.now_ns() + SWAP_DEADLINE_NS;
        let state = SwapState {
            id: swap,
            channel,
            remote: from,
            initiator: false,
            amount,
            alt_amount,
            hash,
            secret: None,
            timeout_blocks,
            htlc_outpoint: None,
            deadline_ns,
            phase: SwapPhase::Init,
        };
        let script = state.htlc_script(&me);
        self.swaps.insert(swap, state.clone());
        self.stage_delta(StateDelta::Swap(Box::new(state)));
        Ok(vec![
            Effect::Event(HostEvent::SwapPhaseEntered {
                swap,
                phase: SwapPhase::Init,
            }),
            Effect::Event(HostEvent::SwapFundingNeeded {
                swap,
                script,
                value: alt_amount,
            }),
            Effect::Event(HostEvent::SwapCheckAt {
                swap,
                at: deadline_ns,
            }),
        ])
    }

    fn cmd_swap_funded(
        &mut self,
        env: &mut EnclaveEnv,
        swap: SwapId,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        let state = self.swaps.get(&swap).ok_or(ProtocolError::BadMessage)?;
        if state.initiator {
            return Err(ProtocolError::BadMessage);
        }
        if state.phase != SwapPhase::Init {
            // A deadline abort can race a delayed (e.g. counter-throttled
            // replay after a crash in the funding window) funding report:
            // the refund committed with no outpoint on record, yet the
            // host has already minted the HTLC. Adopt the outpoint and
            // arm the chain watch so the timelocked reclaim still runs —
            // silently dropping it would strand the on-chain value.
            if state.phase == SwapPhase::Refunded && state.htlc_outpoint.is_none() {
                let state = self.swaps.get_mut(&swap).expect("checked");
                state.htlc_outpoint = Some(outpoint);
                let snap = Box::new(state.clone());
                self.stage_delta(StateDelta::Swap(snap));
                return Ok(vec![Effect::Event(HostEvent::SwapCheckAt {
                    swap,
                    at: env.now_ns() + SWAP_CHECK_INTERVAL_NS,
                })]);
            }
            return Ok(vec![]); // Aborted (or already funded) meanwhile.
        }
        let remote = state.remote;
        let state = self.swaps.get_mut(&swap).expect("checked");
        state.phase = SwapPhase::Locked;
        state.htlc_outpoint = Some(outpoint);
        let snap = Box::new(state.clone());
        self.stage_delta(StateDelta::Swap(snap));
        let mut effects = Vec::new();
        // Best-effort notification: after a crash-recovery replay no
        // session survives, but the lock must still commit — the enclave
        // now tracks the on-chain value, its chain watch reclaims it at
        // the timelock, and the uninformed initiator aborts at its own
        // deadline. Refusing here would strand the minted HTLC forever.
        let msg = ProtocolMsg::SwapLocked { swap, outpoint };
        if let Ok(eff) = self.seal_to(&remote, &msg) {
            effects.push(eff);
        }
        effects.push(Effect::Event(HostEvent::SwapPhaseEntered {
            swap,
            phase: SwapPhase::Locked,
        }));
        effects.push(Effect::Event(HostEvent::SwapCheckAt {
            swap,
            at: env.now_ns() + SWAP_CHECK_INTERVAL_NS,
        }));
        Ok(effects)
    }

    fn on_swap_locked(
        &mut self,
        env: &mut EnclaveEnv,
        from: PublicKey,
        swap: SwapId,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        let state = self.swaps.get(&swap).ok_or(ProtocolError::BadMessage)?;
        if !state.initiator || state.remote != from {
            return Err(ProtocolError::BadMessage);
        }
        if state.phase != SwapPhase::Init {
            return Ok(vec![]); // Deadline-aborted before the lock arrived.
        }
        let me = self.identity.as_ref().ok_or(ProtocolError::NoSession)?.pk;
        let state = self.swaps.get_mut(&swap).expect("checked");
        state.phase = SwapPhase::Locked;
        state.htlc_outpoint = Some(outpoint);
        let snap = state.clone();
        self.stage_delta(StateDelta::Swap(Box::new(snap.clone())));
        // The enclave cannot read chains (§4): the host verifies the
        // HTLC (script, value, confirmations per its policy) and answers
        // with SwapHtlcVerified, mirroring the VerifyDeposit flow.
        Ok(vec![
            Effect::Event(HostEvent::SwapPhaseEntered {
                swap,
                phase: SwapPhase::Locked,
            }),
            Effect::Event(HostEvent::VerifySwapHtlc {
                swap,
                outpoint,
                script: snap.htlc_script(&me),
                value: snap.alt_amount,
            }),
        ])
    }

    fn cmd_swap_htlc_verified(
        &mut self,
        env: &mut EnclaveEnv,
        swap: SwapId,
        valid: bool,
        confirmations: u64,
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        let state = self
            .swaps
            .get(&swap)
            .ok_or(ProtocolError::BadMessage)?
            .clone();
        if !state.initiator {
            return Err(ProtocolError::BadMessage);
        }
        if state.phase != SwapPhase::Locked {
            return Ok(vec![]); // Aborted meanwhile; nothing was committed.
        }
        let covered = self
            .channels
            .get(&state.channel)
            .map(|c| c.usable() && !c.locked() && c.my_bal >= state.amount)
            .unwrap_or(false);
        // The refund timelock must still be comfortably unmatured: once
        // `timeout_blocks` confirmations exist, the responder can spend
        // the refund path, so revealing the secret now would let it race
        // our claim AND collect the channel credit via the revealed
        // secret — losing `amount` on both ledgers.
        let unmatured =
            confirmations >= 1 && confirmations + SWAP_REFUND_SAFETY_BLOCKS < state.timeout_blocks;
        if !valid || !unmatured || !covered {
            // A bad or already-mature lock (or a balance drained since
            // Init) aborts before any value moves; the responder recovers
            // its HTLC via the timelocked refund path.
            let mut effects = Vec::new();
            self.refund_swap_local(swap, &mut effects);
            return Ok(effects);
        }
        let kp = *self.identity.as_ref().ok_or(ProtocolError::NoSession)?;
        let secret = state.secret.expect("initiator holds the secret");
        let outpoint = state.htlc_outpoint.expect("locked phase has the outpoint");
        let claim = crate::swap::claim_tx(outpoint, state.alt_amount, &secret, kp.pk, &kp.sk);
        let msg = ProtocolMsg::SwapSecret { swap, secret };
        let eff = self.seal_to(&state.remote, &msg)?;
        // One atomic commit: the channel debit and the phase transition
        // ride the same WAL record, so a crash either keeps the swap
        // Locked (no debit) or lands Redeemed (debited, claim
        // re-drivable from the recorded secret).
        let chan = self.channels.get_mut(&state.channel).expect("checked");
        chan.my_bal -= state.amount;
        chan.remote_bal += state.amount;
        self.stage_delta(StateDelta::Pay {
            id: state.channel,
            my_delta: -(state.amount as i64),
            remote_delta: state.amount as i64,
        });
        let st = self.swaps.get_mut(&swap).expect("checked");
        st.phase = SwapPhase::Redeemed;
        let snap = Box::new(st.clone());
        self.stage_delta(StateDelta::Swap(snap));
        Ok(vec![
            Effect::BroadcastAlt(claim),
            eff,
            Effect::Event(HostEvent::SwapPhaseEntered {
                swap,
                phase: SwapPhase::Redeemed,
            }),
            Effect::Event(HostEvent::SwapResolved {
                swap,
                redeemed: true,
            }),
        ])
    }

    fn on_swap_secret(
        &mut self,
        env: &mut EnclaveEnv,
        from: PublicKey,
        swap: SwapId,
        secret: [u8; 32],
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        let state = self.swaps.get(&swap).ok_or(ProtocolError::BadMessage)?;
        if state.initiator || state.remote != from {
            return Err(ProtocolError::BadMessage);
        }
        if !state.phase.pending() {
            return Ok(vec![]); // Duplicate (Redeemed) or too late (Refunded).
        }
        if sha256(&secret) != state.hash {
            return Err(ProtocolError::BadMessage);
        }
        self.credit_swap_redeem(swap, secret)
    }

    /// Responder redeem: credits the channel and records the revealed
    /// secret in one commit. Reached from `SwapSecret` or from the
    /// chain-watch fallback (preimage read off the confirmed claim).
    fn credit_swap_redeem(&mut self, swap: SwapId, secret: [u8; 32]) -> Outcome {
        let state = self
            .swaps
            .get(&swap)
            .ok_or(ProtocolError::BadMessage)?
            .clone();
        let Some(chan) = self.channels.get_mut(&state.channel) else {
            return Err(ProtocolError::UnknownChannel);
        };
        if chan.remote_bal < state.amount {
            return Err(ProtocolError::BadMessage); // Peer violated protocol.
        }
        chan.remote_bal -= state.amount;
        chan.my_bal += state.amount;
        self.stage_delta(StateDelta::Pay {
            id: state.channel,
            my_delta: state.amount as i64,
            remote_delta: -(state.amount as i64),
        });
        let st = self.swaps.get_mut(&swap).expect("checked");
        st.phase = SwapPhase::Redeemed;
        st.secret = Some(secret);
        let snap = Box::new(st.clone());
        self.stage_delta(StateDelta::Swap(snap));
        Ok(vec![
            Effect::Event(HostEvent::SwapPhaseEntered {
                swap,
                phase: SwapPhase::Redeemed,
            }),
            Effect::Event(HostEvent::SwapResolved {
                swap,
                redeemed: true,
            }),
        ])
    }

    fn on_swap_nack(
        &mut self,
        env: &mut EnclaveEnv,
        from: PublicKey,
        swap: SwapId,
        reason: u8,
    ) -> Outcome {
        // Same preamble as every other state-mutating swap handler: the
        // Refunded transition below stages a WAL record, which in persist
        // mode must ride a counter-gated commit (a throttled rejection
        // re-enters via the admission pump's stash).
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        let _ = ProtocolError::from_abort_code(reason);
        let state = self.swaps.get_mut(&swap).ok_or(ProtocolError::BadMessage)?;
        if state.remote != from {
            return Err(ProtocolError::BadMessage);
        }
        match state.phase {
            // Responder with a live HTLC: funds come back via the
            // timelocked refund, driven by the chain-watch tick.
            SwapPhase::Locked if !state.initiator => Ok(vec![]),
            SwapPhase::Init | SwapPhase::Locked => {
                state.phase = SwapPhase::Refunded;
                let snap = Box::new(state.clone());
                self.stage_delta(StateDelta::Swap(snap));
                Ok(vec![
                    Effect::Event(HostEvent::SwapPhaseEntered {
                        swap,
                        phase: SwapPhase::Refunded,
                    }),
                    Effect::Event(HostEvent::SwapResolved {
                        swap,
                        redeemed: false,
                    }),
                ])
            }
            _ => Ok(vec![]),
        }
    }

    fn cmd_swap_tick(
        &mut self,
        env: &mut EnclaveEnv,
        swap: SwapId,
        spent_preimage: Option<Vec<u8>>,
        confirmations: u64,
        claim_confirmed: bool,
    ) -> Outcome {
        if self.frozen {
            return Ok(vec![]);
        }
        let Some(state) = self.swaps.get(&swap) else {
            return Ok(vec![]);
        };
        let state = state.clone();
        match state.phase {
            SwapPhase::Refunded => {
                // A responder can land here with a live HTLC: the abort
                // committed first and the funding report arrived late
                // (see `cmd_swap_funded`), or a broadcast refund was
                // lost. Keep driving the timelocked reclaim until the
                // spend confirms; the initiator has nothing on-chain.
                if state.initiator || claim_confirmed {
                    return Ok(vec![]);
                }
                let Some(outpoint) = state.htlc_outpoint else {
                    return Ok(vec![]);
                };
                let mut effects = Vec::new();
                if confirmations >= state.timeout_blocks {
                    let kp = *self.identity.as_ref().ok_or(ProtocolError::NoSession)?;
                    let refund = crate::swap::refund_tx(outpoint, state.alt_amount, kp.pk, &kp.sk);
                    effects.push(Effect::BroadcastAlt(refund));
                }
                effects.push(Effect::Event(HostEvent::SwapCheckAt {
                    swap,
                    at: env.now_ns() + SWAP_CHECK_INTERVAL_NS,
                }));
                Ok(effects)
            }
            SwapPhase::Redeemed => {
                // Post-crash re-drive: the debit committed but the claim
                // may never have reached the alternate chain. Re-broadcast
                // (duplicate submits are rejected harmlessly), re-offer
                // the secret, and watch until the claim confirms.
                if !state.initiator || claim_confirmed {
                    return Ok(vec![]);
                }
                let (Some(outpoint), Some(secret)) = (state.htlc_outpoint, state.secret) else {
                    return Ok(vec![]);
                };
                let kp = *self.identity.as_ref().ok_or(ProtocolError::NoSession)?;
                let claim =
                    crate::swap::claim_tx(outpoint, state.alt_amount, &secret, kp.pk, &kp.sk);
                let mut effects = vec![Effect::BroadcastAlt(claim)];
                let msg = ProtocolMsg::SwapSecret { swap, secret };
                if let Ok(eff) = self.seal_to(&state.remote, &msg) {
                    effects.push(eff);
                }
                effects.push(Effect::Event(HostEvent::SwapCheckAt {
                    swap,
                    at: env.now_ns() + SWAP_CHECK_INTERVAL_NS,
                }));
                Ok(effects)
            }
            SwapPhase::Init | SwapPhase::Locked => {
                // Pending-phase resolutions mutate state; gate on the
                // counter and re-arm rather than fail when throttled.
                if let Err(e) = self.require_counter_ready(env) {
                    return match e {
                        ProtocolError::CounterThrottled { ready_at } => {
                            Ok(vec![Effect::Event(HostEvent::SwapCheckAt {
                                swap,
                                at: ready_at,
                            })])
                        }
                        other => Err(other),
                    };
                }
                if !state.initiator && state.phase == SwapPhase::Locked {
                    // Chain-watch redeem: a confirmed claim reveals the
                    // preimage even if `SwapSecret` never arrived.
                    if let Some(p) = spent_preimage.as_deref() {
                        if p.len() == 32 && sha256(p) == state.hash {
                            let mut secret = [0u8; 32];
                            secret.copy_from_slice(p);
                            return self.credit_swap_redeem(swap, secret);
                        }
                    }
                    if confirmations >= state.timeout_blocks {
                        // Timeout: reclaim our HTLC on-chain.
                        let kp = *self.identity.as_ref().ok_or(ProtocolError::NoSession)?;
                        let outpoint = state.htlc_outpoint.expect("locked has outpoint");
                        let refund =
                            crate::swap::refund_tx(outpoint, state.alt_amount, kp.pk, &kp.sk);
                        let st = self.swaps.get_mut(&swap).expect("checked");
                        st.phase = SwapPhase::Refunded;
                        let snap = Box::new(st.clone());
                        self.stage_delta(StateDelta::Swap(snap));
                        return Ok(vec![
                            Effect::BroadcastAlt(refund),
                            Effect::Event(HostEvent::SwapPhaseEntered {
                                swap,
                                phase: SwapPhase::Refunded,
                            }),
                            Effect::Event(HostEvent::SwapResolved {
                                swap,
                                redeemed: false,
                            }),
                        ]);
                    }
                }
                if env.now_ns() >= state.deadline_ns
                    && (state.initiator || state.phase == SwapPhase::Init)
                {
                    // Deadline abort: nothing of ours is locked on-chain
                    // on these paths, so a local refund is safe. (A
                    // responder in Locked keeps watching the chain — its
                    // HTLC needs the timelocked refund above.)
                    let mut effects = Vec::new();
                    self.refund_swap_local(swap, &mut effects);
                    return Ok(effects);
                }
                Ok(vec![Effect::Event(HostEvent::SwapCheckAt {
                    swap,
                    at: env.now_ns() + SWAP_CHECK_INTERVAL_NS,
                })])
            }
        }
    }

    // ---- Protocol message dispatch ----

    pub(crate) fn dispatch_protocol(
        &mut self,
        env: &mut EnclaveEnv,
        from: PublicKey,
        msg: ProtocolMsg,
    ) -> Outcome {
        match msg {
            ProtocolMsg::NewChannel { id, settlement } => self.on_new_channel(from, id, settlement),
            ProtocolMsg::NewChannelAck { id, settlement } => {
                self.on_new_channel_ack(from, id, settlement)
            }
            ProtocolMsg::ApproveDeposit { deposit } => {
                // Remember the offered deposit so DepositVerified can find it.
                self.book.remote.insert(deposit.outpoint, deposit.clone());
                self.on_approve_deposit(from, deposit)
            }
            ProtocolMsg::DepositApproved { outpoint } => self.on_deposit_approved(from, outpoint),
            ProtocolMsg::AssociateDeposit { id, deposit, key } => {
                self.on_associate(from, id, deposit, key)
            }
            ProtocolMsg::DissociateDeposit { id, outpoint } => {
                self.on_dissociate(from, id, outpoint)
            }
            ProtocolMsg::DissociateAck { id, outpoint } => {
                self.on_dissociate_ack(from, id, outpoint)
            }
            ProtocolMsg::Pay { id, amount, count } => self.on_pay(env, from, id, amount, count),
            ProtocolMsg::PayAck { id, amount, count } => self.on_pay_ack(from, id, amount, count),
            ProtocolMsg::PayNack {
                id,
                amount,
                count,
                reason,
            } => self.on_pay_nack(from, id, amount, count, reason),
            ProtocolMsg::SettleRequest { id } => self.on_settle_request(from, id),
            ProtocolMsg::ChannelClosed { id } => self.on_channel_closed(from, id),
            ProtocolMsg::MhLock(m) => self.on_mh_lock(env, from, m),
            ProtocolMsg::MhSign {
                route,
                tau,
                digests,
                deposits,
            } => self.on_mh_sign(from, route, tau, digests, deposits),
            ProtocolMsg::MhPreUpdate { route, tau } => self.on_mh_pre_update(from, route, tau),
            ProtocolMsg::MhUpdate { route } => self.on_mh_update(from, route),
            ProtocolMsg::MhPostUpdate { route } => self.on_mh_post_update(env, from, route),
            ProtocolMsg::MhRelease { route } => self.on_mh_release(env, from, route),
            ProtocolMsg::MhAbort { route, reason } => self.on_mh_abort(env, from, route, reason),
            ProtocolMsg::RepAssign => self.on_rep_assign(env, from),
            ProtocolMsg::RepAssignAck { member_key } => self.on_rep_assign_ack(from, member_key),
            ProtocolMsg::RepUpdate { seq, deltas } => self.on_rep_update(from, seq, deltas),
            ProtocolMsg::RepAck { seq } => self.on_rep_ack(from, seq),
            ProtocolMsg::RepFreeze => self.on_rep_freeze(from),
            ProtocolMsg::SwapInit {
                swap,
                channel,
                amount,
                alt_amount,
                hash,
                timeout_blocks,
            } => self.on_swap_init(
                env,
                from,
                swap,
                channel,
                amount,
                alt_amount,
                hash,
                timeout_blocks,
            ),
            ProtocolMsg::SwapLocked { swap, outpoint } => {
                self.on_swap_locked(env, from, swap, outpoint)
            }
            ProtocolMsg::SwapSecret { swap, secret } => {
                self.on_swap_secret(env, from, swap, secret)
            }
            ProtocolMsg::SwapNack { swap, reason } => self.on_swap_nack(env, from, swap, reason),
            ProtocolMsg::SigRequest { .. } | ProtocolMsg::SigResponse { .. } => {
                // Signing traffic is routed at the host layer (it carries
                // no secrets); enclaves serve it via Command::CoSign.
                Err(ProtocolError::BadMessage)
            }
        }
    }
}

impl EnclaveProgram for TeechainEnclave {
    type Cmd = Command;
    type Resp = Outcome;

    fn handle(&mut self, env: &mut EnclaveEnv, cmd: Command) -> Outcome {
        debug_assert!(self.rep.staged.is_empty(), "staged deltas leaked");
        self.rep.staged.clear();
        let result = match cmd {
            Command::GetIdentity => {
                let kp = self.identity(env);
                Ok(vec![Effect::Event(HostEvent::Identity(kp.pk))])
            }
            Command::StartSession { remote } => self.cmd_start_session(env, remote),
            Command::Deliver { wire } => self.cmd_deliver(env, wire),
            Command::NewAddress => {
                let seed = env.random_bytes32();
                let pk = self.book.insert_key(PrivateKey::from_seed(&seed));
                Ok(vec![Effect::Event(HostEvent::NewAddress(pk))])
            }
            Command::NewCommitteeAddress { m } => self.cmd_new_committee(env, m),
            Command::NewChannel {
                id,
                remote,
                my_settlement,
            } => self.cmd_new_channel(env, id, remote, my_settlement),
            Command::NewDeposit { deposit } => self.cmd_new_deposit(env, deposit),
            Command::ReleaseDeposit { outpoint, to } => self.cmd_release_deposit(env, outpoint, to),
            Command::ApproveDeposit { remote, outpoint } => {
                self.cmd_approve_deposit(remote, outpoint)
            }
            Command::DepositVerified {
                remote,
                outpoint,
                valid,
            } => self.cmd_deposit_verified(remote, outpoint, valid),
            Command::AssociateDeposit { id, outpoint } => self.cmd_associate(env, id, outpoint),
            Command::DissociateDeposit { id, outpoint } => self.cmd_dissociate(env, id, outpoint),
            Command::Pay { id, amount, count } => self.cmd_pay(env, id, amount, count),
            Command::Settle { id } => self.cmd_settle(env, id),
            Command::PayMultihop {
                route,
                hops,
                channels,
                amount,
            } => self.cmd_pay_multihop(env, route, hops, channels, amount),
            Command::Eject { route } => self.cmd_eject(route),
            Command::EjectWithPopt { route, popt } => self.cmd_eject_popt(route, popt),
            Command::AttachBackup { backup } => self.cmd_attach_backup(backup),
            Command::ReadReplica => self.cmd_read_replica(),
            Command::SettleFromReplica => self.cmd_settle_from_replica(),
            Command::CoSign { req_id, tx } => self.cmd_co_sign(req_id, tx),
            Command::AddCoSigs { req_id, sigs } => self.cmd_add_co_sigs(req_id, sigs),
            Command::RestoreSealed { blob } => self.cmd_restore_sealed(env, blob),
            Command::Recover { snapshot, log } => self.cmd_recover(env, snapshot, log),
            Command::PumpAdmission => self.cmd_pump_admission(env),
            Command::Swap {
                swap,
                channel,
                amount,
                alt_amount,
                timeout_blocks,
            } => self.cmd_swap(env, swap, channel, amount, alt_amount, timeout_blocks),
            Command::SwapFunded { swap, outpoint } => self.cmd_swap_funded(env, swap, outpoint),
            Command::SwapHtlcVerified {
                swap,
                valid,
                confirmations,
            } => self.cmd_swap_htlc_verified(env, swap, valid, confirmations),
            Command::SwapTick {
                swap,
                spent_preimage,
                confirmations,
                claim_confirmed,
            } => self.cmd_swap_tick(env, swap, spent_preimage, confirmations, claim_confirmed),
        };
        match result {
            Ok(effects) => self.finalize(env, effects),
            Err(e) => {
                self.rep.staged.clear();
                Err(e)
            }
        }
    }
}

impl TeechainEnclave {
    fn cmd_deliver(&mut self, env: &mut EnclaveEnv, wire: Vec<u8>) -> Outcome {
        let msg = WireMsg::decode_exact(&wire).map_err(|_| ProtocolError::BadMessage)?;
        match msg {
            WireMsg::Hello(hs) => self.on_hello(env, hs),
            WireMsg::HelloAck(hs) => self.on_hello_ack(env, hs),
            WireMsg::Sealed { from, seq, ct, .. } => {
                let session = self
                    .sessions
                    .get_mut(&from)
                    .filter(|s| s.established)
                    .ok_or(ProtocolError::NoSession)?;
                let msg = session.open(seq, &ct)?;
                // Persistent mode gates *before* dispatch: handlers
                // mutate state and the commit in `finalize` must never
                // fail after the fact. Stashed messages keep FIFO order
                // behind anything already waiting.
                if !self.pending_msgs.is_empty() {
                    self.pending_msgs.push_back((from, msg));
                    let id = self.ensure_counter(env);
                    return Err(ProtocolError::CounterThrottled {
                        ready_at: env.counter_ready_at(id),
                    });
                }
                if let Err(e) = self.require_counter_ready(env) {
                    self.pending_msgs.push_back((from, msg));
                    return Err(e);
                }
                match self.dispatch_protocol(env, from, msg.clone()) {
                    Err(ProtocolError::CounterThrottled { ready_at }) => {
                        // Defensive: handlers re-check; stash the
                        // decrypted message (its sequence number is
                        // spent) and let the host re-dispatch it via
                        // PumpAdmission.
                        self.pending_msgs.push_back((from, msg));
                        Err(ProtocolError::CounterThrottled { ready_at })
                    }
                    other => other,
                }
            }
        }
    }

    // ---- Admission pump (queues, deferred messages, counter stash) ----

    /// The host-timer entry point of the admission layer. Expires
    /// overdue queued/deferred entries, then — if the monotonic counter
    /// permits committing — drains any unlocked channel with a backlog
    /// and re-dispatches counter-stashed messages as one group commit.
    fn cmd_pump_admission(&mut self, env: &mut EnclaveEnv) -> Outcome {
        if self.frozen {
            // A frozen enclave keeps its queues; ops resolve at the host
            // (dead-op resolution), not here.
            return Ok(vec![]);
        }
        let mut effects = Vec::new();
        self.expire_admissions(env, &mut effects);
        match self.require_counter_ready(env) {
            Ok(()) => {
                let ids: Vec<ChannelId> = self
                    .admit
                    .queues
                    .keys()
                    .chain(self.admit.deferred.keys())
                    .copied()
                    .collect();
                for id in ids {
                    // Safety net: unlock points drain eagerly, so this
                    // only finds work after an expiry or an odd
                    // interleaving — but it guarantees no backlog can
                    // outlive its lock.
                    self.drain_admission(env, id, &mut effects);
                }
                let mut out = self.pump_stashed(env, effects)?;
                // Re-arm for whatever is still parked (behind channels
                // that are genuinely still locked, or inside a backoff).
                if let Some(d) = self.admit.next_deadline(env.now_ns()) {
                    out.push(Effect::Event(HostEvent::PumpAt(d)));
                }
                Ok(out)
            }
            Err(ProtocolError::CounterThrottled { ready_at }) => {
                effects.push(Effect::Event(HostEvent::PumpAt(ready_at)));
                Ok(effects)
            }
            Err(e) => Err(e),
        }
    }

    /// Re-dispatches messages stashed while the counter was throttled.
    /// Group commit (§6.2): with no replication chain attached, every
    /// stashed message is dispatched into ONE commit — a single counter
    /// increment and WAL append cover the whole batch, amortizing the
    /// 100 ms counter throttle over many payments.
    fn pump_stashed(&mut self, env: &mut EnclaveEnv, seed: Vec<Effect>) -> Outcome {
        if self.cfg.persist() && self.rep.backup.is_none() {
            let mut out = seed;
            while let Some((from, msg)) = self.pending_msgs.pop_front() {
                match self.dispatch_protocol(env, from, msg.clone()) {
                    Ok(effects) => out.extend(effects),
                    Err(ProtocolError::CounterThrottled { ready_at }) => {
                        // Defensive: cannot trigger mid-batch (the counter
                        // is only spent by the finalize below), but if a
                        // handler ever throttles, preserve ordering.
                        self.pending_msgs.push_front((from, msg));
                        out.push(Effect::Event(HostEvent::PumpAt(ready_at)));
                        break;
                    }
                    Err(_) => {
                        // Drop protocol-violating stashed messages.
                    }
                }
            }
            return self.finalize(env, out);
        }
        let mut out = seed;
        while let Some((from, msg)) = self.pending_msgs.pop_front() {
            match self.dispatch_protocol(env, from, msg.clone()) {
                Ok(effects) => {
                    out.extend(effects);
                    // Replicate/persist per message, preserving ordering.
                    let flushed = self.finalize(env, std::mem::take(&mut out))?;
                    out = flushed;
                }
                Err(ProtocolError::CounterThrottled { ready_at }) => {
                    self.pending_msgs.push_front((from, msg));
                    out.push(Effect::Event(HostEvent::PumpAt(ready_at)));
                    return Ok(out);
                }
                Err(_) => {
                    // Drop protocol-violating stashed messages.
                }
            }
        }
        self.finalize(env, out)
    }

    /// Fails every queued/deferred entry whose admission deadline has
    /// passed. Queued deadlines are NOT monotone within a queue — a
    /// contention requeue re-enters with its *original* admission
    /// deadline — so the whole queue is scanned. Deferred deadlines stay
    /// monotone (defer time + a constant); front pops are exhaustive
    /// there.
    fn expire_admissions(&mut self, env: &mut EnclaveEnv, effects: &mut Vec<Effect>) {
        let now = env.now_ns();
        let ids: Vec<ChannelId> = self.admit.queues.keys().copied().collect();
        for id in ids {
            let mut i = 0;
            while let Some(entry) = self.admit.queues.get_mut(&id).and_then(|q| {
                while i < q.len() && q[i].deadline_ns > now {
                    i += 1;
                }
                (i < q.len()).then(|| q.remove(i).unwrap())
            }) {
                self.admit.stats.expired += 1;
                match entry.op {
                    QueuedOp::Pay { amount, count } => {
                        effects.push(Effect::Event(HostEvent::PaymentRejected {
                            id,
                            amount,
                            count,
                            reason: ProtocolError::ChannelLocked,
                        }));
                    }
                    QueuedOp::Multihop { route, .. } => {
                        effects.push(Effect::Event(HostEvent::MultihopFailed {
                            route,
                            reason: ProtocolError::ChannelLocked,
                        }));
                    }
                }
            }
        }
        let ids: Vec<ChannelId> = self.admit.deferred.keys().copied().collect();
        for id in ids {
            while let Some(d) = self.admit.deferred.get_mut(&id).and_then(|q| {
                q.front()
                    .is_some_and(|e| e.deadline_ns <= now)
                    .then(|| q.pop_front().unwrap())
            }) {
                self.admit.stats.expired += 1;
                // Enqueue time is reconstructible: deadline - constant.
                let age = now.saturating_sub(d.deadline_ns - DEFER_DEADLINE_NS);
                self.admit.stats.note_defer_age(age);
                self.refuse_deferred(d, ProtocolError::ChannelLocked, effects);
            }
        }
        self.admit.queues.retain(|_, q| !q.is_empty());
        self.admit.deferred.retain(|_, q| !q.is_empty());
    }

    /// Answers a deferred inbound message backward with a typed refusal,
    /// so the sender's op completes instead of hanging.
    fn refuse_deferred(
        &mut self,
        d: DeferredMsg,
        reason: ProtocolError,
        effects: &mut Vec<Effect>,
    ) {
        let refusal = match d.msg {
            ProtocolMsg::Pay { id, amount, count } => ProtocolMsg::PayNack {
                id,
                amount,
                count,
                reason: reason.abort_code(),
            },
            ProtocolMsg::MhLock(m) => ProtocolMsg::MhAbort {
                route: m.route,
                reason: reason.abort_code(),
            },
            _ => return, // Only Pay/MhLock are ever deferred.
        };
        if let Ok(eff) = self.seal_to(&d.from, &refusal) {
            effects.push(eff);
        }
    }

    /// Drains a channel's admission backlog after it unlocked: deferred
    /// inbound messages re-dispatch first (they were decrypted before any
    /// local op could observe the unlock), then queued local payments are
    /// applied as one batched delta — the enclosing ecall's `finalize`
    /// turns the whole drain into a single commit / WAL record.
    pub(crate) fn drain_admission(
        &mut self,
        env: &mut EnclaveEnv,
        id: ChannelId,
        effects: &mut Vec<Effect>,
    ) {
        self.drain_deferred(env, id, effects);
        self.drain_queued(env.now_ns(), id, effects);
    }

    fn drain_deferred(&mut self, env: &mut EnclaveEnv, id: ChannelId, effects: &mut Vec<Effect>) {
        loop {
            let unlocked = self
                .channels
                .get(&id)
                .map(|c| !c.locked() && !c.closed)
                .unwrap_or(false);
            if !unlocked {
                break;
            }
            let Some(d) = self.admit.deferred.get_mut(&id).and_then(|q| q.pop_front()) else {
                break;
            };
            let age = env
                .now_ns()
                .saturating_sub(d.deadline_ns - DEFER_DEADLINE_NS);
            self.admit.stats.note_defer_age(age);
            match d.msg {
                ProtocolMsg::Pay { id, amount, count } => {
                    match self.on_pay(env, d.from, id, amount, count) {
                        Ok(effs) => effects.extend(effs),
                        Err(e) => {
                            let nack = ProtocolMsg::PayNack {
                                id,
                                amount,
                                count,
                                reason: e.abort_code(),
                            };
                            if let Ok(eff) = self.seal_to(&d.from, &nack) {
                                effects.push(eff);
                            }
                        }
                    }
                }
                ProtocolMsg::MhLock(m) => {
                    let route = m.route;
                    match self.on_mh_lock(env, d.from, m) {
                        Ok(effs) => effects.extend(effs),
                        Err(e) => {
                            let abort = ProtocolMsg::MhAbort {
                                route,
                                reason: e.abort_code(),
                            };
                            if let Ok(eff) = self.seal_to(&d.from, &abort) {
                                effects.push(eff);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        self.admit.deferred.retain(|_, q| !q.is_empty());
    }

    fn drain_queued(&mut self, now: u64, id: ChannelId, effects: &mut Vec<Effect>) {
        loop {
            match self.channels.get(&id) {
                None => {
                    self.flush_admission(id, ProtocolError::ChannelClosed, effects);
                    return;
                }
                Some(c) if c.closed => {
                    self.flush_admission(id, ProtocolError::ChannelClosed, effects);
                    return;
                }
                Some(c) if c.locked() => return, // A drained multihop re-locked it.
                Some(_) => {}
            }
            // Strict FIFO: a front entry still inside its re-origination
            // backoff parks the whole queue until its ready time (the
            // pump wakes us, via `next_deadline`).
            if self
                .admit
                .queues
                .get(&id)
                .and_then(|q| q.front())
                .is_some_and(|e| e.ready_ns > now)
            {
                break;
            }
            let Some(front) = self.admit.queues.get(&id).and_then(|q| q.front()) else {
                break;
            };
            if matches!(front.op, QueuedOp::Pay { .. }) {
                self.apply_pay_batch(id, effects);
            } else {
                // Wait-die reservation: an older route's deferred lock at
                // this node needs this (currently unlocked) channel, so a
                // younger queued origination may not take it — doing so
                // starves the waiter, whose two hop channels then never
                // free up together. Park the queue; the pump or the
                // waiter's own lock/release re-drains it.
                let QueuedOp::Multihop { route, .. } = front.op else {
                    unreachable!("non-Pay front is Multihop");
                };
                if self.reserved_for_older(id, route) {
                    break;
                }
                let entry = self
                    .admit
                    .queues
                    .get_mut(&id)
                    .and_then(|q| q.pop_front())
                    .expect("front checked");
                let QueuedOp::Multihop {
                    route,
                    hops,
                    channels,
                    amount,
                } = entry.op
                else {
                    unreachable!("front checked as multihop");
                };
                match self.pay_multihop_inner(route, hops, channels, amount, entry.deadline_ns) {
                    Ok(effs) => effects.extend(effs),
                    Err(e) => effects.push(Effect::Event(HostEvent::MultihopFailed {
                        route,
                        reason: e,
                    })),
                }
            }
        }
        self.admit.queues.retain(|_, q| !q.is_empty());
    }

    /// Pops the longest prefix of consecutive queued payments the current
    /// balance covers and applies them as ONE payment: one staged delta,
    /// one wire `Pay` carrying the summed amount/count, one ack fan-out
    /// group. This is the batch the group commit amortizes. A front
    /// payment that does not fit even alone is rejected (terminal) so the
    /// queue cannot head-of-line block behind it.
    fn apply_pay_batch(&mut self, id: ChannelId, effects: &mut Vec<Effect>) {
        let Some(chan) = self.channels.get(&id) else {
            return;
        };
        let (my_bal, remote) = (chan.my_bal, chan.remote);
        let Some(q) = self.admit.queues.get_mut(&id) else {
            return;
        };
        let mut batch: Vec<(u64, u32)> = Vec::new();
        let mut total = 0u64;
        let mut total_count = 0u32;
        while let Some(front) = q.front() {
            match front.op {
                QueuedOp::Pay { amount, count } => {
                    if total + amount <= my_bal {
                        total += amount;
                        total_count += count;
                        batch.push((amount, count));
                        q.pop_front();
                    } else if batch.is_empty() {
                        q.pop_front();
                        effects.push(Effect::Event(HostEvent::PaymentRejected {
                            id,
                            amount,
                            count,
                            reason: ProtocolError::InsufficientBalance,
                        }));
                    } else {
                        break;
                    }
                }
                QueuedOp::Multihop { .. } => break,
            }
        }
        if batch.is_empty() {
            return;
        }
        let msg = ProtocolMsg::Pay {
            id,
            amount: total,
            count: total_count,
        };
        match self.seal_to(&remote, &msg) {
            Ok(eff) => {
                let chan = self.channels.get_mut(&id).expect("checked");
                chan.my_bal -= total;
                chan.remote_bal += total;
                self.stage_delta(StateDelta::Pay {
                    id,
                    my_delta: -(total as i64),
                    remote_delta: total as i64,
                });
                self.admit.stats.record_batch(batch.len() as u64);
                self.admit
                    .inflight
                    .entry(id)
                    .or_default()
                    .push_back(batch.into_iter().map(|(a, c)| (id, a, c)).collect());
                effects.push(eff);
            }
            Err(e) => {
                // No session (should not happen for an open channel):
                // nothing was debited, fail the whole batch.
                for (amount, count) in batch {
                    effects.push(Effect::Event(HostEvent::PaymentRejected {
                        id,
                        amount,
                        count,
                        reason: e.clone(),
                    }));
                }
            }
        }
    }

    /// Terminally fails everything queued or deferred behind `id` —
    /// called when the channel closes (settle, eject, remote settlement).
    pub(crate) fn flush_admission(
        &mut self,
        id: ChannelId,
        reason: ProtocolError,
        effects: &mut Vec<Effect>,
    ) {
        if let Some(q) = self.admit.queues.remove(&id) {
            for entry in q {
                self.admit.stats.flushed += 1;
                match entry.op {
                    QueuedOp::Pay { amount, count } => {
                        effects.push(Effect::Event(HostEvent::PaymentRejected {
                            id,
                            amount,
                            count,
                            reason: reason.clone(),
                        }));
                    }
                    QueuedOp::Multihop { route, .. } => {
                        effects.push(Effect::Event(HostEvent::MultihopFailed {
                            route,
                            reason: reason.clone(),
                        }));
                    }
                }
            }
        }
        if let Some(dq) = self.admit.deferred.remove(&id) {
            for d in dq {
                self.admit.stats.flushed += 1;
                self.refuse_deferred(d, reason.clone(), effects);
            }
        }
    }

    fn cmd_start_session(&mut self, env: &mut EnclaveEnv, remote: PublicKey) -> Outcome {
        self.require_unfrozen()?;
        let me = self.identity(env);
        if let Some(s) = self.sessions.get(&remote) {
            if s.established {
                // Idempotent: the session already exists.
                return Ok(vec![Effect::Event(HostEvent::SessionEstablished(remote))]);
            }
            return Err(ProtocolError::BadMessage); // Handshake in flight.
        }
        let eph = Keypair::from_seed(&env.random_bytes32());
        self.pending_eph.insert(remote, eph.sk);
        let quote = env.quote(session::expected_quote_binding(&me.pk, &eph.pk));
        let hs = session::make_handshake("teechain/hello", &me, &eph, &remote, quote);
        Ok(vec![Effect::Send {
            to: remote,
            wire: WireMsg::Hello(hs).encode_to_vec(),
        }])
    }

    fn on_hello(&mut self, env: &mut EnclaveEnv, hs: crate::msg::Handshake) -> Outcome {
        self.require_unfrozen()?;
        let me = self.identity(env);
        session::verify_handshake(
            "teechain/hello",
            &hs,
            &me.pk,
            &self.cfg.trust_root,
            &self.cfg.measurement,
        )?;
        let eph = Keypair::from_seed(&env.random_bytes32());
        let secret = session::session_secret(&eph.sk, &hs.eph);
        let mut s = Session::derive(&secret, &me.pk, &hs.identity);
        s.established = true;
        self.sessions.insert(hs.identity, s);
        let quote = env.quote(session::expected_quote_binding(&me.pk, &eph.pk));
        let ack = session::make_handshake("teechain/hello-ack", &me, &eph, &hs.identity, quote);
        Ok(vec![
            Effect::Send {
                to: hs.identity,
                wire: WireMsg::HelloAck(ack).encode_to_vec(),
            },
            Effect::Event(HostEvent::SessionEstablished(hs.identity)),
        ])
    }

    fn on_hello_ack(&mut self, env: &mut EnclaveEnv, hs: crate::msg::Handshake) -> Outcome {
        let me = self.identity(env);
        session::verify_handshake(
            "teechain/hello-ack",
            &hs,
            &me.pk,
            &self.cfg.trust_root,
            &self.cfg.measurement,
        )?;
        let my_eph = self
            .pending_eph
            .remove(&hs.identity)
            .ok_or(ProtocolError::BadMessage)?;
        let secret = session::session_secret(&my_eph, &hs.eph);
        let mut s = Session::derive(&secret, &me.pk, &hs.identity);
        s.established = true;
        self.sessions.insert(hs.identity, s);
        Ok(vec![Effect::Event(HostEvent::SessionEstablished(
            hs.identity,
        ))])
    }

    // ---- Persistence (§6.2) ----

    /// Serializes the full durable state: identity, channels, both sides
    /// of the deposit book with statuses, blockchain keys, and (v3) the
    /// atomic-swap table.
    fn state_image(&self) -> Vec<u8> {
        let mut out = vec![STATE_IMAGE_V3];
        self.identity
            .as_ref()
            .map(|k| k.sk.to_bytes())
            .encode(&mut out);
        let chans: Vec<Channel> = self.channels.values().cloned().collect();
        chans.encode(&mut out);
        let mine: Vec<(Deposit, (u8, Option<ChannelId>))> = self
            .book
            .mine
            .values()
            .map(|(d, s)| {
                let status = match s {
                    DepositStatus::Free => (0u8, None),
                    DepositStatus::Associated(id) => (1u8, Some(*id)),
                    DepositStatus::Spent => (2u8, None),
                };
                (d.clone(), status)
            })
            .collect();
        mine.encode(&mut out);
        let remote: Vec<Deposit> = self.book.remote.values().cloned().collect();
        remote.encode(&mut out);
        let keys: Vec<[u8; 32]> = self.book.keys.values().map(|k| k.to_bytes()).collect();
        keys.encode(&mut out);
        // Sorted for a canonical image (HashMap order is arbitrary).
        let mut swaps: Vec<SwapState> = self.swaps.values().cloned().collect();
        swaps.sort_by_key(|s| s.id);
        swaps.encode(&mut out);
        out
    }

    /// Deserializes a state image produced by [`Self::state_image`]
    /// (v3), its swap-free predecessor (v2), or the legacy format that
    /// predates the WAL (no version byte).
    fn load_state_image(&mut self, state: &[u8]) -> Result<(), ProtocolError> {
        let mut r = teechain_util::codec::Reader::new(state);
        let version: u8 = match state.first() {
            Some(&STATE_IMAGE_V3) => STATE_IMAGE_V3,
            Some(&STATE_IMAGE_V2) => STATE_IMAGE_V2,
            _ => 0,
        };
        let v2 = version >= STATE_IMAGE_V2;
        if v2 {
            let _version: u8 = r.read().map_err(|_| ProtocolError::BadMessage)?;
        }
        let sk_bytes: Option<[u8; 32]> = r.read().map_err(|_| ProtocolError::BadMessage)?;
        if let Some(bytes) = sk_bytes {
            let sk = PrivateKey::from_bytes(&bytes).ok_or(ProtocolError::BadMessage)?;
            self.identity = Some(Keypair {
                sk,
                pk: sk.public_key(),
            });
        }
        let chans: Vec<Channel> = r.read().map_err(|_| ProtocolError::BadMessage)?;
        for c in chans {
            self.channels.insert(c.id, c);
        }
        if v2 {
            let mine: Vec<(Deposit, (u8, Option<ChannelId>))> =
                r.read().map_err(|_| ProtocolError::BadMessage)?;
            let remote: Vec<Deposit> = r.read().map_err(|_| ProtocolError::BadMessage)?;
            let keys: Vec<[u8; 32]> = r.read().map_err(|_| ProtocolError::BadMessage)?;
            for bytes in keys {
                if let Some(sk) = PrivateKey::from_bytes(&bytes) {
                    self.book.insert_key(sk);
                }
            }
            for (dep, (tag, id)) in mine {
                let status = match (tag, id) {
                    (1, Some(id)) => DepositStatus::Associated(id),
                    (2, _) => DepositStatus::Spent,
                    _ => DepositStatus::Free,
                };
                self.book.mine.insert(dep.outpoint, (dep, status));
            }
            for dep in remote {
                self.book.remote.insert(dep.outpoint, dep);
            }
        } else {
            let deposits: Vec<(Deposit, bool)> = r.read().map_err(|_| ProtocolError::BadMessage)?;
            let keys: Vec<[u8; 32]> = r.read().map_err(|_| ProtocolError::BadMessage)?;
            for bytes in keys {
                if let Some(sk) = PrivateKey::from_bytes(&bytes) {
                    self.book.insert_key(sk);
                }
            }
            for (dep, free) in deposits {
                let status = if free {
                    DepositStatus::Free
                } else {
                    DepositStatus::Associated(ChannelId([0; 32]))
                };
                self.book.mine.insert(dep.outpoint, (dep, status));
            }
        }
        if version >= STATE_IMAGE_V3 {
            let swaps: Vec<SwapState> = r.read().map_err(|_| ProtocolError::BadMessage)?;
            for s in swaps {
                self.swaps.insert(s.id, s);
            }
        }
        Ok(())
    }

    pub(crate) fn finalize(&mut self, env: &mut EnclaveEnv, effects: Vec<Effect>) -> Outcome {
        let deltas = std::mem::take(&mut self.rep.staged);
        if deltas.is_empty() {
            return Ok(effects);
        }
        let mut out = Vec::new();
        if self.cfg.persist() {
            let id = self.ensure_counter(env);
            // Guaranteed ready: mutating handlers checked first.
            let counter = env.increment_counter(id).map_err(|e| match e {
                teechain_tee::CounterError::Throttled { ready_at } => {
                    ProtocolError::CounterThrottled { ready_at }
                }
            })?;
            self.commits = counter;
            if counter % self.cfg.snapshot_every() == 0 {
                // Snapshot commit: the sealed full-state image carries
                // this commit by itself (the host compacts the WAL), so
                // no log record is needed — sealing the deltas too
                // would only double the write.
                out.push(Effect::Persist(env.seal(counter, &self.state_image())));
            } else {
                // One sealed WAL record carries the whole delta batch:
                // a single counter increment and durability barrier per
                // group commit, no matter how many payments are inside.
                let mut record = Vec::new();
                counter.encode(&mut record);
                self.identity
                    .as_ref()
                    .map(|k| k.sk.to_bytes())
                    .encode(&mut record);
                deltas.encode(&mut record);
                out.push(Effect::AppendLog(env.seal(counter, &record)));
            }
        }
        if let Some(backup) = self.rep.backup {
            // Force-freeze chain replication (Alg. 3 line 21): hold the
            // visible effects until the chain acknowledges the update.
            let seq = self.rep.send_seq;
            self.rep.send_seq += 1;
            self.rep.pending.insert(seq, effects);
            let msg = ProtocolMsg::RepUpdate { seq, deltas };
            out.push(self.seal_to(&backup, &msg)?);
            Ok(out)
        } else {
            out.extend(effects);
            Ok(out)
        }
    }

    fn cmd_restore_sealed(&mut self, env: &mut EnclaveEnv, blob: Vec<u8>) -> Outcome {
        // The counter value proves freshness: the blob must carry the
        // current hardware counter value, or it is a stale (rolled-back)
        // state and is rejected. This path restores a snapshot alone; if
        // WAL records were appended after it, use [`Command::Recover`].
        let id = self.ensure_counter(env);
        let min = env.read_counter(id);
        let (counter, state) = env
            .unseal(min, &blob)
            .map_err(|_| ProtocolError::BadMessage)?;
        self.load_state_image(&state)?;
        self.commits = counter;
        Ok(vec![])
    }

    fn cmd_recover(
        &mut self,
        env: &mut EnclaveEnv,
        snapshot: Option<Vec<u8>>,
        log: Vec<Vec<u8>>,
    ) -> Outcome {
        if !self.cfg.persist() {
            return Err(ProtocolError::BadMessage);
        }
        // Recovery must be the first ecall of a fresh program instance:
        // replaying deltas over live state would double-apply them (a
        // malicious host could otherwise inflate its own balances by
        // feeding the real WAL to a running enclave). Rejecting here
        // leaves the live state untouched, so no freeze.
        if self.commits != 0
            || self.identity.is_some()
            || !self.channels.is_empty()
            || !self.book.mine.is_empty()
            || !self.book.remote.is_empty()
            || !self.swaps.is_empty()
        {
            return Err(ProtocolError::BadMessage);
        }
        // A failed recovery leaves partially applied state behind;
        // freeze so nothing can run on it. A fresh program instance can
        // always retry with better storage.
        let result = self.recover_inner(env, snapshot, log);
        if result.is_err() {
            self.frozen = true;
        }
        result
    }

    fn recover_inner(
        &mut self,
        env: &mut EnclaveEnv,
        snapshot: Option<Vec<u8>>,
        log: Vec<Vec<u8>>,
    ) -> Outcome {
        let id = self.ensure_counter(env);
        let hw = env.read_counter(id);
        // `applied` tracks the highest commit counter incorporated so
        // far; the chain must end exactly at the hardware counter.
        let mut applied = 0u64;
        if let Some(blob) = &snapshot {
            if !blob.is_empty() {
                let (counter, state) =
                    env.unseal(0, blob).map_err(|_| ProtocolError::BadMessage)?;
                self.load_state_image(&state)?;
                applied = counter;
            }
        }
        for rec in &log {
            let (counter, payload) = env.unseal(0, rec).map_err(|_| ProtocolError::BadMessage)?;
            if counter <= applied {
                // Record predates the snapshot (host compaction lagged);
                // its effects are already in the image.
                continue;
            }
            if counter != applied + 1 {
                // A commit is missing from the log: rolled-back storage
                // or a torn tail. Either way the state would be stale.
                return Err(ProtocolError::StaleState {
                    found: applied,
                    expected: hw,
                });
            }
            let mut r = teechain_util::codec::Reader::new(&payload);
            let embedded: u64 = r.read().map_err(|_| ProtocolError::BadMessage)?;
            if embedded != counter {
                return Err(ProtocolError::BadMessage);
            }
            let identity: Option<[u8; 32]> = r.read().map_err(|_| ProtocolError::BadMessage)?;
            if self.identity.is_none() {
                if let Some(bytes) = identity {
                    let sk = PrivateKey::from_bytes(&bytes).ok_or(ProtocolError::BadMessage)?;
                    self.identity = Some(Keypair {
                        sk,
                        pk: sk.public_key(),
                    });
                }
            }
            let deltas: Vec<StateDelta> = r.read().map_err(|_| ProtocolError::BadMessage)?;
            for delta in deltas {
                self.apply_delta_to_primary(delta);
            }
            applied = counter;
        }
        if applied != hw {
            // The hardware counter proves more commits happened than the
            // storage shows: refuse to run on rolled-back state (§6.2).
            return Err(ProtocolError::StaleState {
                found: applied,
                expected: hw,
            });
        }
        self.commits = applied;
        self.rebuild_deposit_statuses();
        let mut effects = vec![Effect::Event(HostEvent::Recovered {
            channels: self.channels.len(),
            deposits: self.book.mine.len() + self.book.remote.len(),
            commits: applied,
        })];
        // Re-arm swap timers: a pending swap resumes its chain watch /
        // deadline abort; an initiator whose debit committed (Redeemed)
        // re-drives the idempotent claim broadcast until it confirms —
        // sessions did not survive the crash, so the responder learns the
        // preimage from the chain if the re-sent `SwapSecret` cannot go.
        let now = env.now_ns();
        let mut rearm: Vec<SwapId> = self
            .swaps
            .values()
            .filter(|s| s.phase.pending() || (s.phase == SwapPhase::Redeemed && s.initiator))
            .map(|s| s.id)
            .collect();
        rearm.sort();
        for swap in rearm {
            effects.push(Effect::Event(HostEvent::SwapCheckAt { swap, at: now }));
        }
        // A responder that crashed inside the funding window replays at
        // Init with no outpoint while its minted HTLC sits on-chain (the
        // `SwapFunded` ack never reached the WAL). Re-ask the host for
        // funding: the host's answer is a rescan — it re-offers an
        // existing matching lock rather than minting a second one — so
        // the replayed request is idempotent and the value is never
        // stranded.
        if let Some(me) = self.identity.as_ref().map(|i| i.pk) {
            let mut refund: Vec<_> = self
                .swaps
                .values()
                .filter(|s| !s.initiator && s.phase == SwapPhase::Init)
                .map(|s| (s.id, s.htlc_script(&me), s.alt_amount))
                .collect();
            refund.sort_by_key(|(id, _, _)| *id);
            for (swap, script, value) in refund {
                effects.push(Effect::Event(HostEvent::SwapFundingNeeded {
                    swap,
                    script,
                    value,
                }));
            }
        }
        Ok(effects)
    }

    /// Applies a WAL-replayed delta to *primary* state (the dual of
    /// [`crate::replication::ReplicaState::apply`], which applies the
    /// same deltas to a backup's replica).
    fn apply_delta_to_primary(&mut self, delta: StateDelta) {
        match delta {
            StateDelta::Channel(c) => {
                self.channels.insert(c.id, *c);
            }
            StateDelta::Pay {
                id,
                my_delta,
                remote_delta,
            } => {
                if let Some(c) = self.channels.get_mut(&id) {
                    c.my_bal = c.my_bal.wrapping_add_signed(my_delta);
                    c.remote_bal = c.remote_bal.wrapping_add_signed(remote_delta);
                }
            }
            StateDelta::Stage { id, stage } => {
                if let Some(c) = self.channels.get_mut(&id) {
                    c.stage = stage;
                }
            }
            StateDelta::Deposit { dep, key, mine } => {
                if let Some(bytes) = key {
                    if let Some(sk) = PrivateKey::from_bytes(&bytes) {
                        self.book.insert_key(sk);
                    }
                }
                if mine {
                    // Status is recomputed from channel membership after
                    // the full replay (`rebuild_deposit_statuses`).
                    self.book
                        .mine
                        .insert(dep.outpoint, (dep, DepositStatus::Free));
                } else {
                    self.book.remote.insert(dep.outpoint, dep);
                }
            }
            StateDelta::RemoveDeposit(op) => {
                if let Some(entry) = self.book.mine.get_mut(&op) {
                    entry.1 = DepositStatus::Spent;
                }
                self.book.remote.remove(&op);
            }
            StateDelta::Tau { .. } => {
                // In-flight multi-hop settlements do not survive a crash;
                // locked channels are released via eject / settlement.
            }
            StateDelta::CloseChannel(id) => {
                if let Some(c) = self.channels.get_mut(&id) {
                    c.closed = true;
                }
            }
            StateDelta::Swap(s) => {
                // Each transition carries the full swap state; replaying
                // in WAL order converges on the last committed phase.
                self.swaps.insert(s.id, *s);
            }
        }
    }

    /// Recomputes own-deposit statuses after a WAL replay: association is
    /// recorded in the channels' deposit lists, which the deltas carry
    /// exactly; deposits of closed channels were consumed by settlement.
    fn rebuild_deposit_statuses(&mut self) {
        let mut assoc: HashMap<teechain_blockchain::OutPoint, ChannelId> = HashMap::new();
        let mut spent: std::collections::HashSet<teechain_blockchain::OutPoint> =
            std::collections::HashSet::new();
        for c in self.channels.values() {
            for op in &c.my_deps {
                if c.closed {
                    spent.insert(*op);
                } else {
                    assoc.insert(*op, c.id);
                }
            }
        }
        for (op, entry) in self.book.mine.iter_mut() {
            if entry.1 == DepositStatus::Spent {
                continue;
            }
            entry.1 = if spent.contains(op) {
                DepositStatus::Spent
            } else {
                match assoc.get(op) {
                    Some(id) => DepositStatus::Associated(*id),
                    None => DepositStatus::Free,
                }
            };
        }
    }

    // Test/host introspection helpers (read-only; a real enclave would not
    // expose these, but the *untrusted host* can always observe its own
    // command stream, so nothing here grants extra power).

    /// Our channel view (None if unknown).
    pub fn channel(&self, id: &ChannelId) -> Option<&Channel> {
        self.channels.get(id)
    }

    /// Number of established sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.values().filter(|s| s.established).count()
    }

    /// The identity public key, if generated.
    pub fn identity_pk(&self) -> Option<PublicKey> {
        self.identity.as_ref().map(|k| k.pk)
    }

    /// Whether this enclave is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// A replicated channel's state (this enclave as a backup).
    pub fn replica_channel(&self, id: &ChannelId) -> Option<&Channel> {
        self.rep.replica.channels.get(id)
    }

    /// Read-only deposit book access (tests and compromised-TEE modelling).
    pub fn book_ref(&self) -> &DepositBook {
        &self.book
    }

    /// Admission-layer counters: enqueues, deferrals, batch sizes.
    pub fn admit_stats(&self) -> &crate::admit::AdmitStats {
        &self.admit.stats
    }

    /// Entries currently parked in the admission layer (tests).
    pub fn admit_backlog(&self) -> usize {
        self.admit.backlog()
    }

    /// A swap's full state (tests and host chain-watch wiring).
    pub fn swap_state(&self, id: &SwapId) -> Option<&SwapState> {
        self.swaps.get(id)
    }

    /// Number of swaps that can still go either way.
    pub fn pending_swaps(&self) -> usize {
        self.swaps.values().filter(|s| s.phase.pending()).count()
    }
}
