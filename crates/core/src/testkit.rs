//! A reusable harness: a cluster of Teechain nodes on the simulated
//! network with a shared simulated blockchain.
//!
//! Used by the crate's own tests, the workspace integration tests, the
//! examples and the benchmark harness — it is the "public deployment API"
//! of the reproduction.

use crate::driver::{CostModel, SimHost};
use crate::durability::DurabilityBackend;
use crate::enclave::{Command, EnclaveConfig, HostEvent};
use crate::node::{SharedChain, TeechainNode};
use crate::types::{ChannelId, Deposit, ProtocolError, RouteId};
use parking_lot::Mutex;
use std::sync::Arc;
use teechain_blockchain::Chain;
use teechain_crypto::schnorr::PublicKey;
use teechain_net::{AnyEngine, EngineKind, LinkSpec, NodeId};
use teechain_persist::{PersistentStore, SharedStore};
use teechain_tee::TrustRoot;

/// Configuration for a [`Cluster`].
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of nodes. Under [`DurabilityBackend::Replication`] this
    /// counts *primaries*; `n * backups` extra backup nodes are appended
    /// and chained automatically.
    pub n: usize,
    /// CPU cost model (use [`CostModel::free`] for functional tests).
    pub costs: CostModel,
    /// Default link between nodes.
    pub default_link: LinkSpec,
    /// Fault-tolerance backend applied to every node (§6).
    pub durability: DurabilityBackend,
    /// Simulation seed.
    pub seed: u64,
    /// Which event-loop engine hosts the cluster. Defaults to the
    /// `TEECHAIN_ENGINE` / `TEECHAIN_SHARDS` environment (sequential
    /// when unset), which is how CI re-runs whole suites under the
    /// sharded engine without code changes.
    pub engine: EngineKind,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n: 2,
            costs: CostModel::free(),
            default_link: LinkSpec::ideal(),
            durability: DurabilityBackend::None,
            seed: 7,
            engine: EngineKind::from_env(),
        }
    }
}

/// A running cluster of Teechain nodes.
pub struct Cluster {
    /// The discrete-event engine hosting all nodes (sequential or
    /// sharded, per [`ClusterConfig::engine`]).
    pub sim: AnyEngine<SimHost>,
    /// The shared blockchain.
    pub chain: SharedChain,
    /// Enclave identity of each node.
    pub ids: Vec<PublicKey>,
    /// The manufacturer trust root (for launching additional TEEs).
    pub root: TrustRoot,
    /// Durable stores per node (persistent mode; the harness owns them
    /// so they survive node crashes, like a disk does).
    pub stores: Vec<Option<SharedStore>>,
}

impl Cluster {
    /// Builds a cluster of `cfg.n` nodes, all sharing one trust root and
    /// one blockchain. Identities are pre-exchanged (the paper's
    /// out-of-band key distribution). Persistent-mode nodes get a
    /// harness-owned in-memory store; replication mode appends and
    /// chains `backups` extra nodes per primary.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        let root = TrustRoot::new(cfg.seed ^ 0x7ee);
        let chain: SharedChain = Arc::new(Mutex::new(Chain::new()));
        let measurement = TeechainNode::measurement();
        let backups = cfg.durability.auto_backups();
        let total = cfg.n * (1 + backups);
        let mut stores: Vec<Option<SharedStore>> = Vec::with_capacity(total);
        let mut hosts = Vec::with_capacity(total);
        for i in 0..total {
            let device = root.issue_device(1000 + i as u64);
            let enclave_cfg = EnclaveConfig {
                trust_root: root.public_key(),
                measurement,
                durability: cfg.durability,
            };
            let mut node = TeechainNode::new(
                device,
                enclave_cfg,
                cfg.seed.wrapping_mul(0x9E3779B9).wrapping_add(i as u64),
                chain.clone(),
            );
            if cfg.durability.is_persist() {
                let store = PersistentStore::in_memory().into_shared();
                node.attach_store(store.clone());
                stores.push(Some(store));
            } else {
                stores.push(None);
            }
            hosts.push(SimHost::new(node, cfg.costs));
        }
        let mut sim = AnyEngine::new(cfg.engine, hosts, cfg.default_link, cfg.seed);
        // Collect identities and populate every directory.
        let mut ids = Vec::with_capacity(total);
        for i in 0..total {
            let id = sim.node_mut(NodeId(i as u32)).node.identity(0);
            ids.push(id);
        }
        for i in 0..total {
            for (j, id) in ids.iter().enumerate() {
                if i != j {
                    sim.node_mut(NodeId(i as u32))
                        .node
                        .register_peer(*id, NodeId(j as u32));
                }
            }
        }
        let mut cluster = Cluster {
            sim,
            chain,
            ids,
            root,
            stores,
        };
        // Replication backend: chain primary i → n + i*k .. (Alg. 3).
        for i in 0..cfg.n {
            let mut tail = i;
            for j in 0..backups {
                let backup = cfg.n + i * backups + j;
                cluster.attach_backup(tail, backup);
                tail = backup;
            }
        }
        cluster
    }

    /// Shorthand: a functional-test cluster (free CPU, ideal links).
    pub fn functional(n: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            n,
            ..ClusterConfig::default()
        })
    }

    /// The node id of index `i`.
    pub fn nid(&self, i: usize) -> NodeId {
        NodeId(i as u32)
    }

    /// Immutable node access.
    pub fn node(&self, i: usize) -> &TeechainNode {
        &self.sim.node(NodeId(i as u32)).node
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, i: usize) -> &mut TeechainNode {
        &mut self.sim.node_mut(NodeId(i as u32)).node
    }

    /// Issues an enclave command on node `i` and performs its effects.
    /// If the monotonic counter is throttled (persistent mode), advances
    /// simulated time and retries — mirroring a host that waits out the
    /// hardware throttle.
    pub fn command(&mut self, i: usize, cmd: Command) -> Result<(), ProtocolError> {
        loop {
            match self.try_command(i, cmd.clone()) {
                Err(ProtocolError::CounterThrottled { ready_at }) => {
                    self.sim.run_until(ready_at);
                }
                other => return other,
            }
        }
    }

    /// Issues a command without retrying counter throttling.
    pub fn try_command(&mut self, i: usize, cmd: Command) -> Result<(), ProtocolError> {
        let id = self.nid(i);
        self.sim.call(id, |host, ctx| host.node.command(ctx, cmd))
    }

    /// Runs the simulation until quiescent.
    pub fn settle_network(&mut self) {
        self.sim.run_to_idle(50_000_000);
    }

    /// Establishes a secure session between nodes `a` and `b`.
    pub fn connect(&mut self, a: usize, b: usize) {
        let remote = self.ids[b];
        self.command(a, Command::StartSession { remote })
            .expect("start session");
        self.settle_network();
        assert!(
            self.node(a)
                .enclave
                .program()
                .map(|p| p.session_count() > 0)
                .unwrap_or(false),
            "session {a}->{b} failed"
        );
    }

    /// Opens a payment channel between connected nodes; returns its id.
    pub fn open_channel(&mut self, a: usize, b: usize, label: &str) -> ChannelId {
        let id = ChannelId::from_label(label);
        let my_settlement = self.new_address(a);
        let remote = self.ids[b];
        self.command(
            a,
            Command::NewChannel {
                id,
                remote,
                my_settlement,
            },
        )
        .expect("new channel");
        self.settle_network();
        let open = self
            .node(a)
            .enclave
            .program()
            .and_then(|p| p.channel(&id))
            .map(|c| c.is_open)
            .unwrap_or(false);
        assert!(open, "channel {label} failed to open");
        id
    }

    /// Generates a fresh in-enclave address on node `i`.
    pub fn new_address(&mut self, i: usize) -> PublicKey {
        self.command(i, Command::NewAddress).expect("new address");
        for (_, e) in self.node_mut(i).events.iter().rev() {
            if let HostEvent::NewAddress(pk) = e {
                return *pk;
            }
        }
        panic!("no NewAddress event");
    }

    /// Funds an m-of-n deposit on node `i` (n = 1 + committee chain
    /// length) and registers it with the enclave.
    pub fn fund_deposit(&mut self, i: usize, value: u64, m: u8) -> Deposit {
        let id = self.nid(i);
        loop {
            let r = self.sim.call(id, |host, ctx| {
                host.node.create_funded_committee_deposit(ctx, value, m)
            });
            match r {
                Ok(dep) => return dep,
                Err(ProtocolError::CounterThrottled { ready_at }) => {
                    self.sim.run_until(ready_at);
                }
                Err(e) => panic!("fund deposit: {e:?}"),
            }
        }
    }

    /// Approves `deposit` of node `a` with counterparty `b`, then
    /// associates it with `chan`. Panics on failure.
    pub fn approve_and_associate(
        &mut self,
        a: usize,
        b: usize,
        chan: ChannelId,
        deposit: &Deposit,
    ) {
        let remote = self.ids[b];
        self.command(
            a,
            Command::ApproveDeposit {
                remote,
                outpoint: deposit.outpoint,
            },
        )
        .expect("approve deposit");
        self.settle_network();
        self.command(
            a,
            Command::AssociateDeposit {
                id: chan,
                outpoint: deposit.outpoint,
            },
        )
        .expect("associate deposit");
        self.settle_network();
    }

    /// Full channel setup: connect, open, fund `value` on side `a` with
    /// threshold `m`, approve and associate. Returns the channel id.
    pub fn standard_channel(
        &mut self,
        a: usize,
        b: usize,
        label: &str,
        value: u64,
        m: u8,
    ) -> ChannelId {
        self.connect(a, b);
        let chan = self.open_channel(a, b, label);
        let dep = self.fund_deposit(a, value, m);
        self.approve_and_associate(a, b, chan, &dep);
        chan
    }

    /// Sends a payment and runs the network to quiescence.
    pub fn pay(&mut self, from: usize, chan: ChannelId, amount: u64) -> Result<(), ProtocolError> {
        self.command(
            from,
            Command::Pay {
                id: chan,
                amount,
                count: 1,
            },
        )?;
        self.settle_network();
        Ok(())
    }

    /// Issues a multi-hop payment from `path[0]` through `path[..]` over
    /// `channels`. Runs to quiescence.
    pub fn pay_multihop(
        &mut self,
        path: &[usize],
        channels: &[ChannelId],
        amount: u64,
        label: &str,
    ) -> Result<RouteId, ProtocolError> {
        let route = RouteId(teechain_crypto::sha256::tagged_hash(
            "teechain/route",
            &[label.as_bytes()],
        ));
        let hops: Vec<PublicKey> = path.iter().map(|&i| self.ids[i]).collect();
        self.command(
            path[0],
            Command::PayMultihop {
                route,
                hops,
                channels: channels.to_vec(),
                amount,
            },
        )?;
        self.settle_network();
        Ok(route)
    }

    /// Attaches node `backup` as the replication backup of node `tail`
    /// (extends `tail`'s committee chain).
    pub fn attach_backup(&mut self, tail: usize, backup: usize) {
        self.connect(tail, backup);
        let backup_id = self.ids[backup];
        self.command(tail, Command::AttachBackup { backup: backup_id })
            .expect("attach backup");
        self.settle_network();
        // The host remembers its committee peers for co-sign fan-out.
        self.node_mut(tail).committee_peers.push(backup_id);
    }

    /// Crashes node `i`: its enclave loses all volatile state and the
    /// simulator drops traffic and timers targeting it, exactly as if
    /// the machine lost power. Hardware counters, the sealing key and
    /// the durable store survive.
    pub fn crash_node(&mut self, i: usize) {
        let nid = self.nid(i);
        self.sim.set_offline(nid, true);
        self.sim.node_mut(nid).node.crash_enclave();
    }

    /// Brings node `i` back and replays its durable store through
    /// [`Command::Recover`]. Sessions are *not* restored (session keys
    /// are deliberately volatile); call [`Cluster::connect`] again to
    /// re-handshake with peers.
    pub fn recover_node(&mut self, i: usize) -> Result<(), ProtocolError> {
        let nid = self.nid(i);
        self.sim.set_offline(nid, false);
        let now = self.sim.now_ns();
        self.sim.node_mut(nid).node.recover_from_store(now)
    }

    /// The durable store of node `i` (persistent mode only).
    pub fn store(&self, i: usize) -> Option<SharedStore> {
        self.stores[i].clone()
    }

    /// The channel balances `(my, remote)` as seen by node `i`.
    pub fn balances(&self, i: usize, chan: ChannelId) -> (u64, u64) {
        let c = self
            .node(i)
            .enclave
            .program()
            .and_then(|p| p.channel(&chan))
            .expect("channel exists");
        (c.my_bal, c.remote_bal)
    }

    /// On-chain balance of a settlement key.
    pub fn chain_balance(&self, pk: &PublicKey) -> u64 {
        self.chain.lock().balance_p2pk(pk)
    }

    /// Mines `k` blocks.
    pub fn mine(&mut self, k: u64) {
        self.chain.lock().mine_blocks(k);
    }

    /// Counts events matching `pred` on node `i`.
    pub fn count_events(&self, i: usize, pred: impl Fn(&HostEvent) -> bool) -> usize {
        self.node(i).events.iter().filter(|(_, e)| pred(e)).count()
    }
}
