//! A reusable harness: a cluster of Teechain nodes on the simulated
//! network with a shared simulated blockchain.
//!
//! Used by the crate's own tests, the workspace integration tests, the
//! examples and the benchmark harness — it is the "public deployment API"
//! of the reproduction.
//!
//! # The operation model
//!
//! Every interaction goes through the correlated-operation layer
//! ([`crate::ops`]): submitting a [`Command`] yields an [`OpId`], and the
//! protocol delivers exactly one terminal [`Completion`] — a typed
//! success payload or a typed error (including remote rejections and
//! timeouts). Callers never touch `HostEvent`.
//!
//! Three altitudes, pick per call site:
//!
//! * [`Cluster::handle`] → [`NodeHandle`] typed methods returning
//!   [`Pending<T>`] tokens, resolved with [`Cluster::wait`] — the
//!   documented application API.
//! * [`Cluster::op`] / [`Cluster::exec`] — submit any raw [`Command`] and
//!   block until its typed outcome (`exec` panics on failure; it is the
//!   thin `.expect` over the fallible path).
//! * [`Cluster::submit`] + [`Cluster::wait`] — split submission from
//!   resolution to drive several operations concurrently.

use crate::driver::{CostModel, SimHost};
use crate::durability::DurabilityBackend;
use crate::enclave::{Command, EnclaveConfig};
use crate::node::{SharedChain, TeechainNode};
use crate::ops::{
    Completion, Delivered, OpError, OpId, OpOutput, OpResult, Payment, Pending, Recovery,
    Settlement,
};
use crate::swap::SwapOutcome;
use crate::types::{ChannelId, Deposit, RouteId, SwapId};
use parking_lot::Mutex;
use std::sync::Arc;
use teechain_blockchain::Chain;
use teechain_crypto::schnorr::PublicKey;
use teechain_net::{AnyEngine, EngineKind, LinkSpec, NodeId};
use teechain_persist::{PersistentStore, SharedStore};
use teechain_tee::TrustRoot;

/// Configuration for a [`Cluster`].
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of nodes. Under [`DurabilityBackend::Replication`] this
    /// counts *primaries*; `n * backups` extra backup nodes are appended
    /// and chained automatically.
    pub n: usize,
    /// CPU cost model (use [`CostModel::free`] for functional tests).
    pub costs: CostModel,
    /// Default link between nodes.
    pub default_link: LinkSpec,
    /// Fault-tolerance backend applied to every node (§6).
    pub durability: DurabilityBackend,
    /// Simulation seed.
    pub seed: u64,
    /// Which event-loop engine hosts the cluster. Defaults to the
    /// `TEECHAIN_ENGINE` / `TEECHAIN_SHARDS` environment (sequential
    /// when unset), which is how CI re-runs whole suites under the
    /// sharded engine without code changes.
    pub engine: EngineKind,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n: 2,
            costs: CostModel::free(),
            default_link: LinkSpec::ideal(),
            durability: DurabilityBackend::None,
            seed: 7,
            engine: EngineKind::from_env(),
        }
    }
}

/// Builds `total` nodes with identities exchanged and the full-mesh
/// directory registered — shared by every harness that must mint
/// *identical* enclave identities for one `seed`: the simulated
/// [`Cluster`] here and the live cluster ([`crate::live::LiveCluster`]).
/// Keeping this in one place is what makes sim-vs-live outcome
/// comparison meaningful: any drift in device ids, enclave seeds or
/// wiring would silently diverge identities, channel ids and txids.
/// Persistent-mode nodes get a harness-owned in-memory store (returned
/// alongside, like a disk that outlives the node).
pub(crate) fn build_wired_nodes(
    total: usize,
    seed: u64,
    durability: DurabilityBackend,
    chain: &SharedChain,
    chain2: &SharedChain,
) -> (
    TrustRoot,
    Vec<TeechainNode>,
    Vec<Option<SharedStore>>,
    Vec<PublicKey>,
) {
    let root = TrustRoot::new(seed ^ 0x7ee);
    let measurement = TeechainNode::measurement();
    let mut nodes = Vec::with_capacity(total);
    let mut stores: Vec<Option<SharedStore>> = Vec::with_capacity(total);
    for i in 0..total {
        let device = root.issue_device(1000 + i as u64);
        let enclave_cfg = EnclaveConfig {
            trust_root: root.public_key(),
            measurement,
            durability,
        };
        let mut node = TeechainNode::new(
            device,
            enclave_cfg,
            seed.wrapping_mul(0x9E3779B9).wrapping_add(i as u64),
            chain.clone(),
        );
        node.attach_alt_chain(chain2.clone());
        if durability.is_persist() {
            let store = PersistentStore::in_memory().into_shared();
            node.attach_store(store.clone());
            stores.push(Some(store));
        } else {
            stores.push(None);
        }
        node.tracer.set_node(i as u32);
        nodes.push(node);
    }
    let ids: Vec<PublicKey> = nodes.iter_mut().map(|n| n.identity(0)).collect();
    for (i, node) in nodes.iter_mut().enumerate() {
        for (j, id) in ids.iter().enumerate() {
            if i != j {
                node.register_peer(*id, NodeId(j as u32));
            }
        }
    }
    (root, nodes, stores, ids)
}

/// A running cluster of Teechain nodes.
pub struct Cluster {
    /// The discrete-event engine hosting all nodes (sequential or
    /// sharded, per [`ClusterConfig::engine`]).
    pub sim: AnyEngine<SimHost>,
    /// The shared blockchain.
    pub chain: SharedChain,
    /// The shared *alternate* blockchain (cross-chain swaps lock their
    /// HTLCs here; see [`crate::swap`]).
    pub chain2: SharedChain,
    /// Enclave identity of each node.
    pub ids: Vec<PublicKey>,
    /// The manufacturer trust root (for launching additional TEEs).
    pub root: TrustRoot,
    /// Durable stores per node (persistent mode; the harness owns them
    /// so they survive node crashes, like a disk does).
    pub stores: Vec<Option<SharedStore>>,
}

impl Cluster {
    /// Builds a cluster of `cfg.n` nodes, all sharing one trust root and
    /// one blockchain. Identities are pre-exchanged (the paper's
    /// out-of-band key distribution). Persistent-mode nodes get a
    /// harness-owned in-memory store; replication mode appends and
    /// chains `backups` extra nodes per primary.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        let chain: SharedChain = Arc::new(Mutex::new(Chain::new()));
        let chain2: SharedChain = Arc::new(Mutex::new(Chain::new()));
        let backups = cfg.durability.auto_backups();
        let total = cfg.n * (1 + backups);
        let (root, nodes, stores, ids) =
            build_wired_nodes(total, cfg.seed, cfg.durability, &chain, &chain2);
        let hosts: Vec<SimHost> = nodes
            .into_iter()
            .map(|node| SimHost::new(node, cfg.costs))
            .collect();
        let sim = AnyEngine::new(cfg.engine, hosts, cfg.default_link, cfg.seed);
        let mut cluster = Cluster {
            sim,
            chain,
            chain2,
            ids,
            root,
            stores,
        };
        // Replication backend: chain primary i → n + i*k .. (Alg. 3).
        for i in 0..cfg.n {
            let mut tail = i;
            for j in 0..backups {
                let backup = cfg.n + i * backups + j;
                cluster.attach_backup(tail, backup);
                tail = backup;
            }
        }
        cluster
    }

    /// Shorthand: a functional-test cluster (free CPU, ideal links).
    pub fn functional(n: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            n,
            ..ClusterConfig::default()
        })
    }

    /// The node id of index `i`.
    pub fn nid(&self, i: usize) -> NodeId {
        NodeId(i as u32)
    }

    /// Immutable node access.
    pub fn node(&self, i: usize) -> &TeechainNode {
        &self.sim.node(NodeId(i as u32)).node
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, i: usize) -> &mut TeechainNode {
        &mut self.sim.node_mut(NodeId(i as u32)).node
    }

    // ---- Operation submission and resolution ----

    /// Submits `cmd` on node `i` as a correlated operation. Monotonic-
    /// counter throttling (persistent mode) never surfaces: the node
    /// parks the op and re-dispatches it on the admission pump.
    pub fn submit(&mut self, i: usize, cmd: Command) -> OpId {
        let id = self.nid(i);
        self.sim
            .call(id, |host, ctx| host.node.submit_op(ctx, cmd, None))
    }

    /// Submits with an absolute deadline (simulated ns): a still-pending
    /// operation is declared dead at that instant by an in-simulation
    /// timer, so the resulting [`OpError::Timeout`] completion is part of
    /// the deterministic event stream.
    pub fn submit_with_deadline(&mut self, i: usize, cmd: Command, deadline_ns: u64) -> OpId {
        let id = self.nid(i);
        self.sim.call(id, |host, ctx| {
            host.node.submit_op(ctx, cmd, Some(deadline_ns))
        })
    }

    /// Wraps an operation id in a typed pending token.
    pub fn pending<T: OpResult>(&self, op: OpId) -> Pending<T> {
        Pending::new(op)
    }

    /// Resolves a pending operation: runs the network to quiescence (or
    /// the operation's deadline) and extracts the typed result. An
    /// operation with no terminal response by quiescence is declared dead
    /// with [`OpError::Timeout`] — its completion is recorded like any
    /// other, so the completion stream stays exactly-once.
    pub fn wait<T: OpResult>(&mut self, p: Pending<T>) -> Result<T, OpError> {
        self.settle_network();
        let nid = NodeId(p.op.node);
        let now = self.sim.now_ns();
        let node = &mut self.sim.node_mut(nid).node;
        let outcome = match node.completions.iter().find(|c| c.op == p.op) {
            Some(c) => c.outcome.clone(),
            None => match node.resolve_dead_op(p.op, now) {
                Some(c) => c.outcome,
                None => Err(OpError::Timeout { at_ns: now }),
            },
        };
        outcome.map(|out| {
            T::from_output(out).expect("completion output does not match the operation's type")
        })
    }

    /// Submits `cmd` on node `i` and blocks until its typed outcome: the
    /// single fallible command path.
    pub fn op(&mut self, i: usize, cmd: Command) -> Result<OpOutput, OpError> {
        let op = self.submit(i, cmd);
        self.wait(Pending::new(op))
    }

    /// The thin panicking wrapper over [`Cluster::op`].
    pub fn exec(&mut self, i: usize, cmd: Command) -> OpOutput {
        self.op(i, cmd).expect("operation failed")
    }

    /// Submits `cmd` and resolves it *synchronously*, without running the
    /// network — for commands whose outcome is local (eject, raw message
    /// delivery, sealed-state restore), or to observe a synchronous
    /// rejection while leaving in-flight traffic untouched.
    ///
    /// # Panics
    ///
    /// Panics if the command did not resolve within its own submission
    /// (i.e. it awaits a network response); use [`Cluster::op`] for
    /// those.
    pub fn op_now(&mut self, i: usize, cmd: Command) -> Result<OpOutput, OpError> {
        let op = self.submit(i, cmd);
        self.node(i)
            .completions
            .iter()
            .find(|c| c.op == op)
            .map(|c| c.outcome.clone())
            .expect("operation did not resolve synchronously; use Cluster::op")
    }

    /// Node `i`'s completion stream so far (setup included), in
    /// resolution order.
    pub fn completions(&self, i: usize) -> &[Completion] {
        &self.node(i).completions
    }

    /// The cluster-wide completion history, merged deterministically by
    /// `(time, node, seq)` — identical for any shard count of the
    /// sharded engine.
    pub fn completion_log(&self) -> Vec<Completion> {
        let streams: Vec<&[Completion]> = (0..self.sim.len())
            .map(|i| self.node(i).completions.as_slice())
            .collect();
        crate::ops::merge_completions(&streams)
    }

    // ---- Observability (the `teechain-trace` surface) ----

    /// Turns the flight recorder on (or off) on every node. Recording is
    /// passive — it touches no simulated clock, RNG or wire bytes — so
    /// the completion history is identical either way. With the
    /// `trace-record` feature compiled out this sets a flag nobody reads.
    pub fn set_tracing(&mut self, on: bool) {
        for i in 0..self.sim.len() {
            self.node_mut(i).tracer.configure(on, None);
        }
    }

    /// Drains every node's flight ring into one merged, deterministic
    /// stream (ordered by `(ts_ns, node)`; per-node order preserved).
    /// Under the sim engines the encoded bytes of this stream are
    /// identical across reruns and shard counts.
    pub fn drain_trace(&mut self) -> Vec<teechain_trace::TraceEvent> {
        let streams: Vec<Vec<teechain_trace::TraceEvent>> = (0..self.sim.len())
            .map(|i| self.node_mut(i).tracer.drain())
            .collect();
        teechain_trace::merge_events(streams)
    }

    /// Snapshots the cluster-wide metrics registry: every node's
    /// counters, admission totals and queue high-watermarks merged
    /// (counters add, gauges max, histograms concatenate), plus the
    /// engine's own delivery counters under `sim.*`.
    pub fn observe(&self) -> teechain_trace::Snapshot {
        let mut reg = teechain_trace::Registry::new();
        for i in 0..self.sim.len() {
            reg.merge(&self.node(i).registry());
        }
        let s = self.sim.stats();
        reg.counter("sim.messages", s.messages);
        reg.counter("sim.bytes", s.bytes);
        reg.counter("sim.events", s.events);
        reg.counter("sim.dropped", s.dropped);
        reg.snapshot()
    }

    /// A typed operation handle for node `i`.
    pub fn handle(&mut self, i: usize) -> NodeHandle<'_> {
        NodeHandle { cluster: self, i }
    }

    /// Runs the simulation until quiescent, then resolves every
    /// still-pending operation as dead ([`OpError::Timeout`]): once the
    /// network has fallen silent, no terminal response can arrive, so
    /// leaving such operations pending would only let them steal a later
    /// same-key response. This is the "resolved at quiescence" half of
    /// the operation contract (deadlines are the other half).
    pub fn settle_network(&mut self) {
        // The per-pass cap is a runaway guard, not a quiescence signal:
        // only a pass that processed fewer events than the cap proves
        // the queue drained, and dead-op resolution is only sound at
        // true quiescence. The pass bound keeps a pathological livelock
        // from spinning forever (at which point resolution is moot —
        // the simulation itself is broken).
        const CAP: u64 = 50_000_000;
        for _ in 0..64 {
            if self.sim.run_to_idle(CAP) < CAP {
                break;
            }
        }
        let now = self.sim.now_ns();
        for i in 0..self.sim.len() {
            self.sim
                .node_mut(NodeId(i as u32))
                .node
                .resolve_all_dead(now);
        }
    }

    // ---- Typed conveniences (thin `.expect`s over the ops API) ----

    /// Establishes a secure session between nodes `a` and `b`.
    pub fn connect(&mut self, a: usize, b: usize) {
        let p = self.handle(a).connect(b);
        self.wait(p).expect("session establishment failed");
    }

    /// Opens a payment channel between connected nodes; returns its id.
    pub fn open_channel(&mut self, a: usize, b: usize, label: &str) -> ChannelId {
        let p = self.handle(a).open_channel(b, label);
        self.wait(p).expect("channel open failed")
    }

    /// Generates a fresh in-enclave address on node `i`.
    pub fn new_address(&mut self, i: usize) -> PublicKey {
        let p = self.handle(i).new_address();
        self.wait(p).expect("new address failed")
    }

    /// Funds an m-of-n deposit on node `i` (n = 1 + committee chain
    /// length) and registers it with the enclave.
    pub fn fund_deposit(&mut self, i: usize, value: u64, m: u8) -> Deposit {
        let p = self.handle(i).fund_deposit(value, m);
        self.wait(p).expect("fund deposit failed")
    }

    /// Approves `deposit` of node `a` with counterparty `b`, then
    /// associates it with `chan`. Panics on failure.
    pub fn approve_and_associate(
        &mut self,
        a: usize,
        b: usize,
        chan: ChannelId,
        deposit: &Deposit,
    ) {
        let p = self.handle(a).approve_deposit(b, deposit.outpoint);
        self.wait(p).expect("approve deposit failed");
        let p = self.handle(a).associate_deposit(chan, deposit.outpoint);
        self.wait(p).expect("associate deposit failed");
    }

    /// Full channel setup: connect, open, fund `value` on side `a` with
    /// threshold `m`, approve and associate. Returns the channel id.
    pub fn standard_channel(
        &mut self,
        a: usize,
        b: usize,
        label: &str,
        value: u64,
        m: u8,
    ) -> ChannelId {
        self.connect(a, b);
        let chan = self.open_channel(a, b, label);
        let dep = self.fund_deposit(a, value, m);
        self.approve_and_associate(a, b, chan, &dep);
        chan
    }

    /// Sends a payment and resolves its completion: `Ok` carries the
    /// acknowledged [`Payment`]; failures are typed (local rejection,
    /// remote nack, timeout).
    pub fn pay(&mut self, from: usize, chan: ChannelId, amount: u64) -> Result<Payment, OpError> {
        let p = self.handle(from).pay(chan, amount);
        self.wait(p)
    }

    /// Issues a multi-hop payment from `path[0]` through `path[..]` over
    /// `channels` and resolves its completion.
    pub fn pay_multihop(
        &mut self,
        path: &[usize],
        channels: &[ChannelId],
        amount: u64,
        label: &str,
    ) -> Result<Delivered, OpError> {
        let p = self
            .handle(path[0])
            .pay_multihop(path, channels, amount, label);
        self.wait(p)
    }

    /// Settles a channel from node `i` and resolves the terminal
    /// [`Settlement`] (off-chain or on-chain).
    pub fn settle_channel(&mut self, i: usize, chan: ChannelId) -> Result<Settlement, OpError> {
        let p = self.handle(i).settle(chan);
        self.wait(p)
    }

    /// Attaches node `backup` as the replication backup of node `tail`
    /// (extends `tail`'s committee chain).
    pub fn attach_backup(&mut self, tail: usize, backup: usize) {
        self.connect(tail, backup);
        let p = self.handle(tail).attach_backup(backup);
        self.wait(p).expect("attach backup failed");
        // The host remembers its committee peers for co-sign fan-out.
        let backup_id = self.ids[backup];
        self.node_mut(tail).committee_peers.push(backup_id);
    }

    /// Crashes node `i`: its enclave loses all volatile state and the
    /// simulator drops traffic and timers targeting it, exactly as if
    /// the machine lost power. Hardware counters, the sealing key and
    /// the durable store survive.
    pub fn crash_node(&mut self, i: usize) {
        let nid = self.nid(i);
        self.sim.set_offline(nid, true);
        self.sim.node_mut(nid).node.crash_enclave();
    }

    /// Brings node `i` back and replays its durable store as a
    /// correlated recovery operation. Sessions are *not* restored
    /// (session keys are deliberately volatile); call
    /// [`Cluster::connect`] again to re-handshake with peers.
    pub fn recover_node(&mut self, i: usize) -> Result<Recovery, OpError> {
        let nid = self.nid(i);
        self.sim.set_offline(nid, false);
        let p = self.handle(i).recover();
        self.wait(p)
    }

    /// The durable store of node `i` (persistent mode only).
    pub fn store(&self, i: usize) -> Option<SharedStore> {
        self.stores[i].clone()
    }

    /// The channel balances `(my, remote)` as seen by node `i`.
    pub fn balances(&self, i: usize, chan: ChannelId) -> (u64, u64) {
        let c = self
            .node(i)
            .enclave
            .program()
            .and_then(|p| p.channel(&chan))
            .expect("channel exists");
        (c.my_bal, c.remote_bal)
    }

    /// On-chain balance of a settlement key.
    pub fn chain_balance(&self, pk: &PublicKey) -> u64 {
        self.chain.lock().balance_p2pk(pk)
    }

    /// Mines `k` blocks.
    pub fn mine(&mut self, k: u64) {
        self.chain.lock().mine_blocks(k);
    }

    /// Mines `k` blocks on the *alternate* (swap) chain.
    pub fn mine_alt(&mut self, k: u64) {
        self.chain2.lock().mine_blocks(k);
    }

    /// Initiates a cross-chain atomic swap from node `from` and resolves
    /// its terminal [`SwapOutcome`] (redeemed or refunded — both are
    /// successful completions; aborts surface as typed errors).
    pub fn swap(
        &mut self,
        from: usize,
        chan: ChannelId,
        label: &str,
        amount: u64,
        alt_amount: u64,
        timeout_blocks: u64,
    ) -> Result<SwapOutcome, OpError> {
        let p = self
            .handle(from)
            .swap(chan, label, amount, alt_amount, timeout_blocks);
        self.wait(p)
    }
}

/// A typed operation handle for one node of a [`Cluster`]: every method
/// submits one correlated operation and returns its [`Pending`] token;
/// resolve with [`Cluster::wait`]. The handle borrows the cluster for a
/// single submission, so chains read naturally:
///
/// ```ignore
/// let p = net.handle(0).pay(chan, 100);
/// let receipt = net.wait(p)?;
/// ```
pub struct NodeHandle<'c> {
    cluster: &'c mut Cluster,
    i: usize,
}

impl NodeHandle<'_> {
    fn submit(self, cmd: Command) -> OpId {
        let i = self.i;
        self.cluster.submit(i, cmd)
    }

    /// Starts an attested session with node `peer`.
    pub fn connect(self, peer: usize) -> Pending<PublicKey> {
        let remote = self.cluster.ids[peer];
        Pending::new(self.submit(Command::StartSession { remote }))
    }

    /// Generates a fresh in-enclave blockchain address.
    pub fn new_address(self) -> Pending<PublicKey> {
        Pending::new(self.submit(Command::NewAddress))
    }

    /// Opens a payment channel to node `peer` (requires a session): one
    /// composite operation that generates the in-enclave settlement
    /// address and proposes the channel — submit-only, like every other
    /// handle method.
    pub fn open_channel(self, peer: usize, label: &str) -> Pending<ChannelId> {
        let i = self.i;
        let id = ChannelId::from_label(label);
        let remote = self.cluster.ids[peer];
        let op = self.cluster.sim.call(NodeId(i as u32), |host, ctx| {
            host.node.submit_open_channel(ctx, id, remote)
        });
        Pending::new(op)
    }

    /// Funds and registers an m-of-n committee deposit of `value`.
    pub fn fund_deposit(self, value: u64, m: u8) -> Pending<Deposit> {
        let i = self.i;
        let op = self.cluster.sim.call(NodeId(i as u32), |host, ctx| {
            host.node.submit_fund_deposit(ctx, value, m)
        });
        Pending::new(op)
    }

    /// Asks node `peer` to approve our free deposit.
    pub fn approve_deposit(
        self,
        peer: usize,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Pending<OpOutput> {
        let remote = self.cluster.ids[peer];
        Pending::new(self.submit(Command::ApproveDeposit { remote, outpoint }))
    }

    /// Associates an approved deposit with a channel.
    pub fn associate_deposit(
        self,
        chan: ChannelId,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Pending<OpOutput> {
        Pending::new(self.submit(Command::AssociateDeposit { id: chan, outpoint }))
    }

    /// Dissociates a deposit from a channel (frees it on completion).
    pub fn dissociate_deposit(
        self,
        chan: ChannelId,
        outpoint: teechain_blockchain::OutPoint,
    ) -> Pending<OpOutput> {
        Pending::new(self.submit(Command::DissociateDeposit { id: chan, outpoint }))
    }

    /// Sends a payment over `chan`.
    pub fn pay(self, chan: ChannelId, amount: u64) -> Pending<Payment> {
        Pending::new(self.submit(Command::Pay {
            id: chan,
            amount,
            count: 1,
        }))
    }

    /// Issues a multi-hop payment along `path` (cluster node indices,
    /// this node first) over `channels`; `label` derives the route id.
    pub fn pay_multihop(
        self,
        path: &[usize],
        channels: &[ChannelId],
        amount: u64,
        label: &str,
    ) -> Pending<Delivered> {
        let route = RouteId(teechain_crypto::sha256::tagged_hash(
            "teechain/route",
            &[label.as_bytes()],
        ));
        let hops: Vec<PublicKey> = path.iter().map(|&i| self.cluster.ids[i]).collect();
        Pending::new(self.submit(Command::PayMultihop {
            route,
            hops,
            channels: channels.to_vec(),
            amount,
        }))
    }

    /// Settles a channel: off-chain when balances are neutral, otherwise
    /// broadcasting a settlement transaction.
    pub fn settle(self, chan: ChannelId) -> Pending<Settlement> {
        Pending::new(self.submit(Command::Settle { id: chan }))
    }

    /// Initiates a cross-chain atomic swap: trades `amount` of this
    /// node's balance on `chan` against `alt_amount` locked in an HTLC
    /// on the alternate chain; `label` derives the [`SwapId`].
    pub fn swap(
        self,
        chan: ChannelId,
        label: &str,
        amount: u64,
        alt_amount: u64,
        timeout_blocks: u64,
    ) -> Pending<SwapOutcome> {
        Pending::new(self.submit(Command::Swap {
            swap: SwapId::from_label(label),
            channel: chan,
            amount,
            alt_amount,
            timeout_blocks,
        }))
    }

    /// Attaches node `backup` to this node's committee chain (requires a
    /// session).
    pub fn attach_backup(self, backup: usize) -> Pending<PublicKey> {
        let backup_id = self.cluster.ids[backup];
        Pending::new(self.submit(Command::AttachBackup { backup: backup_id }))
    }

    /// Replays the durable store after a crash (persistent mode).
    pub fn recover(self) -> Pending<Recovery> {
        let i = self.i;
        let op = self
            .cluster
            .sim
            .call(NodeId(i as u32), |host, ctx| host.node.submit_recover(ctx));
        Pending::new(op)
    }
}
