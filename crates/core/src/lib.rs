//! # Teechain
//!
//! A from-scratch Rust reproduction of *Teechain: A Secure Payment Network
//! with Asynchronous Blockchain Access* (Lind et al., SOSP 2019).
//!
//! Teechain is a layer-two payment network that — unlike Lightning-style
//! designs — never needs to write to the blockchain within a bounded time.
//! Funds are controlled by trusted execution environments (TEEs); payment
//! channels update by exchanging a single authenticated message; deposits
//! are created independently of channels and assigned to them dynamically;
//! and TEE crash/compromise is tolerated by force-freeze chain replication
//! combined with m-of-n multisignature committee chains.
//!
//! Layering:
//!
//! * [`enclave`] — the TEE-resident program: [`enclave::TeechainEnclave`]
//!   (a sans-io state machine), its [`enclave::Command`] ecalls and
//!   [`enclave::Effect`] outputs. Payment channels (Alg. 1) live here.
//! * [`multihop`] — multi-hop payments with proofs of premature
//!   termination (Alg. 2).
//! * [`replication`] — force-freeze chain replication and committees
//!   (Alg. 3, §6).
//! * [`node`] — the untrusted host: wraps the enclave, performs network
//!   and blockchain I/O, gathers committee co-signatures.
//! * [`driver`] — runs hosts inside the deterministic network simulator
//!   with the calibrated CPU cost model (reproduces §7).
//! * [`routing`] — shortest-path and k-path route selection for payment
//!   networks (§7.4 dynamic routing).
//!
//! See `examples/quickstart.rs` for a end-to-end tour.

pub mod channel;
pub mod deposit;
pub mod driver;
pub mod enclave;
pub mod msg;
pub mod multihop;
pub mod node;
pub mod replication;
pub mod routing;
pub mod session;
pub mod settle;
pub mod testkit;
pub mod types;

pub use enclave::{Command, Effect, EnclaveConfig, HostEvent, Outcome, TeechainEnclave};
pub use node::TeechainNode;
pub use types::{ChannelId, CommitteeSpec, Deposit, MultihopStage, ProtocolError, RouteId};
