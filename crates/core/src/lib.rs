//! # Teechain
//!
//! A from-scratch Rust reproduction of *Teechain: A Secure Payment Network
//! with Asynchronous Blockchain Access* (Lind et al., SOSP 2019).
//!
//! Teechain is a layer-two payment network that — unlike Lightning-style
//! designs — never needs to write to the blockchain within a bounded time.
//! Funds are controlled by trusted execution environments (TEEs); payment
//! channels update by exchanging a single authenticated message; deposits
//! are created independently of channels and assigned to them dynamically;
//! and TEE crash/compromise is tolerated by force-freeze chain replication
//! combined with m-of-n multisignature committee chains.
//!
//! Layering:
//!
//! * [`enclave`] — the TEE-resident program: [`enclave::TeechainEnclave`]
//!   (a sans-io state machine), its [`enclave::Command`] ecalls and
//!   [`enclave::Effect`] outputs. Payment channels (Alg. 1) live here.
//! * [`multihop`] — multi-hop payments with proofs of premature
//!   termination (Alg. 2).
//! * [`replication`] — force-freeze chain replication and committees
//!   (Alg. 3, §6).
//! * [`node`] — the untrusted host: wraps the enclave, performs network
//!   and blockchain I/O, gathers committee co-signatures.
//! * [`ops`] — the correlated-operation layer: every submitted command
//!   gets an [`ops::OpId`] and resolves to exactly one typed
//!   [`ops::Completion`] (success payload or [`ops::OpError`], including
//!   remote rejections and timeouts).
//! * [`driver`] — runs hosts inside the deterministic network simulator
//!   with the calibrated CPU cost model (reproduces §7).
//! * [`live`] — runs the *same* hosts as a real concurrent system:
//!   per-node OS threads, wall-clock timers and a real transport
//!   (in-process channels or localhost TCP) instead of the simulator —
//!   or, for 1,000+ nodes per box, the internal run-queue scheduler
//!   (`live_sched`) over the non-blocking reactor transport.
//! * [`routing`] — shortest-path and k-path route selection for payment
//!   networks (§7.4 dynamic routing).
//!
//! # Quickstart
//!
//! Applications drive a cluster through typed operations — submit via a
//! [`testkit::NodeHandle`], resolve the [`ops::Pending`] token; raw
//! commands and `HostEvent` scraping never appear:
//!
//! ```
//! use teechain::testkit::Cluster;
//!
//! let mut net = Cluster::functional(2);
//! let session = net.handle(0).connect(1);
//! net.wait(session).unwrap();
//! let open = net.handle(0).open_channel(1, "demo");
//! let chan = net.wait(open).unwrap();
//! let fund = net.handle(0).fund_deposit(1_000, 1);
//! let deposit = net.wait(fund).unwrap();
//! net.approve_and_associate(0, 1, chan, &deposit);
//! let receipt = net.pay(0, chan, 250).unwrap(); // The completion IS the ack.
//! assert_eq!((receipt.amount, net.balances(0, chan)), (250, (750, 250)));
//! ```
//!
//! See `examples/quickstart.rs` for the full end-to-end tour (funding,
//! settlement kinds, typed error paths).

//! # Fault-tolerance backends (§6)
//!
//! TEEs crash (losing volatile state) and can be compromised; §6 of the
//! paper offers two interchangeable defences, both implemented here and
//! selected per node via [`durability::DurabilityBackend`]:
//!
//! * **Committee-chain replication** ([`replication`], Alg. 3): every
//!   state delta propagates down a chain of backup TEEs — deployed in
//!   *different failure domains* — and is acknowledged before any effect
//!   of the mutation becomes visible (force-freeze). Throughput stays in
//!   the tens of thousands of tx/s because only one replication message
//!   per payment traverses the chain, but each committee member is an
//!   extra machine. Use when machines are available and latency across
//!   failure domains is acceptable (Table 1 rows 3–5).
//! * **Persistent storage** ([`durability`] + the `teechain-persist`
//!   crate, §6.2): every commit seals its state deltas, binds them to a
//!   hardware monotonic-counter increment and appends them to a
//!   host-side write-ahead log; periodic sealed snapshots compact the
//!   log. A restarted enclave replays snapshot + log and verifies the
//!   commit counters form an unbroken chain ending at the hardware
//!   counter, so rolled-back storage is detected and refused
//!   ([`ProtocolError::StaleState`]). No extra machines, but the SGX
//!   counter throttle (~10 increments/s) caps unbatched throughput at
//!   ~10 tx/s (Table 1 row 6) — group commit amortizes one increment
//!   over a whole batch of deltas, recovering throughput when clients
//!   batch (§7).
//!
//! With neither backend, a crashed TEE strands its channels until the
//! counterparty settles unilaterally; funds are safe (balance
//! correctness never depends on liveness), only availability is lost.

pub mod admit;
pub mod channel;
pub mod deposit;
pub mod driver;
pub mod durability;
pub mod enclave;
pub mod live;
pub(crate) mod live_sched;
pub mod msg;
pub mod multihop;
pub mod node;
pub mod ops;
pub mod replication;
pub mod routing;
pub mod session;
pub mod settle;
pub mod swap;
pub mod testkit;
pub mod types;

pub use durability::{DurabilityBackend, PersistPolicy};
pub use enclave::{Command, Effect, EnclaveConfig, HostEvent, Outcome, TeechainEnclave};
pub use live::{LiveBackend, LiveCluster, LiveConfig};
pub use node::TeechainNode;
pub use ops::{Completion, OpError, OpId, OpOutput, Pending, SettleKind};
pub use swap::{SwapOutcome, SwapPhase, SwapState};
pub use types::{ChannelId, CommitteeSpec, Deposit, MultihopStage, ProtocolError, RouteId, SwapId};
