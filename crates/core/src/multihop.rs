//! Multi-hop payments (Alg. 2): lock → sign → preUpdate → update →
//! postUpdate → release, with proofs of premature termination (PoPT).
//!
//! The intermediate settlement transaction τ spends *every* deposit of
//! *every* channel on the path and pays every participant its post-payment
//! balance. Because τ and the per-channel pre-/post-payment settlements all
//! spend the same deposits, the blockchain accepts exactly one of them —
//! so whatever any participant manages to confirm, all others can present
//! it (as a PoPT) and settle their own channels *consistently* at the same
//! logical state.
//!
//! Deviation noted in DESIGN.md: the mapping from a confirmed conflicting
//! transaction to "pre" or "post" state is implemented by distributing the
//! txids of every channel's two candidate settlements along the path
//! during lock/sign (the `digests`), rather than by inspecting transaction
//! structure. This is equivalent (settlements are canonical and
//! deterministic) and keeps verification exact.

use crate::enclave::{Effect, HostEvent, Outcome, TeechainEnclave};
use crate::msg::{MhLock, ProtocolMsg, SettleDigest, StateDelta};
use crate::settle;
use crate::types::{ChannelId, MultihopStage, ProtocolError, RouteId};
use std::collections::HashMap;
use teechain_blockchain::{Transaction, TxIn};
use teechain_crypto::schnorr::PublicKey;
use teechain_tee::EnclaveEnv;

/// Per-route state at one TEE.
pub struct RouteState {
    /// Route instance id.
    pub id: RouteId,
    /// Payment amount.
    pub amount: u64,
    /// Path identities p1..pn.
    pub hops: Vec<PublicKey>,
    /// Path channels.
    pub channels: Vec<ChannelId>,
    /// Our index in `hops`.
    pub pos: usize,
    /// τ (partially signed during sign, full after preUpdate).
    pub tau: Option<Transaction>,
    /// txid → state map for PoPT classification.
    pub digests: Vec<SettleDigest>,
    /// Pre-payment balances of our route channels (for pre-state
    /// settlement reconstruction after balances were updated).
    pub pre_balances: HashMap<ChannelId, (u64, u64)>,
    /// Committee metadata for every deposit τ spends (needed to verify
    /// τ's signature thresholds for channels we do not participate in).
    pub path_deposits: Vec<crate::types::Deposit>,
    /// True once terminated (ejected or completed).
    pub terminated: bool,
    /// Admission deadline of the *origination* (absolute ns). Carried
    /// across in-enclave contention requeues so a payment cannot orbit
    /// the admission queue forever: once past this instant the next
    /// abort surfaces to the host instead of re-parking. Zero on
    /// non-origin hops (they never requeue).
    pub deadline_ns: u64,
}

impl RouteState {
    /// The channel toward the previous hop, if any.
    pub fn in_chan(&self) -> Option<ChannelId> {
        (self.pos > 0).then(|| self.channels[self.pos - 1])
    }

    /// The channel toward the next hop, if any.
    pub fn out_chan(&self) -> Option<ChannelId> {
        (self.pos + 1 < self.hops.len()).then(|| self.channels[self.pos])
    }

    /// Our route channels (one or two).
    pub fn my_channels(&self) -> Vec<ChannelId> {
        self.in_chan().into_iter().chain(self.out_chan()).collect()
    }

    fn prev_hop(&self) -> Option<PublicKey> {
        (self.pos > 0).then(|| self.hops[self.pos - 1])
    }

    fn next_hop(&self) -> Option<PublicKey> {
        (self.pos + 1 < self.hops.len()).then(|| self.hops[self.pos + 1])
    }
}

impl TeechainEnclave {
    fn set_route_stage(&mut self, route: &RouteId, stage: MultihopStage) {
        let Some(rs) = self.routes.get(route) else {
            return;
        };
        let ids = rs.my_channels();
        let route_id = *route;
        for id in ids {
            if let Some(chan) = self.channels.get_mut(&id) {
                chan.stage = stage;
                chan.route = if stage == MultihopStage::Idle {
                    None
                } else {
                    Some(route_id)
                };
                self.stage_delta(StateDelta::Stage { id, stage });
            }
        }
    }

    /// Validates and snapshots a channel for route participation.
    fn prepare_route_channel(
        &mut self,
        route: &mut RouteState,
        id: ChannelId,
        must_cover: Option<u64>,
    ) -> Result<(), ProtocolError> {
        let chan = self
            .channels
            .get(&id)
            .ok_or(ProtocolError::UnknownChannel)?;
        if !chan.usable() {
            return Err(ProtocolError::ChannelNotOpen);
        }
        if chan.locked() {
            return Err(ProtocolError::ChannelLocked);
        }
        if let Some(amount) = must_cover {
            if chan.my_bal < amount {
                return Err(ProtocolError::InsufficientBalance);
            }
        }
        route
            .pre_balances
            .insert(id, (chan.my_bal, chan.remote_bal));
        Ok(())
    }

    /// Appends our *outgoing* channel's deposits and post-payment outputs
    /// to τ, and its two settlement digests to the map.
    fn extend_tau(
        &self,
        route: &RouteState,
        tau: &mut Transaction,
        digests: &mut Vec<SettleDigest>,
        deposits: &mut Vec<crate::types::Deposit>,
    ) {
        let id = route.out_chan().expect("only non-terminal hops extend τ");
        let chan = &self.channels[&id];
        for prevout in chan.all_deposits() {
            tau.inputs.push(TxIn::spend(prevout));
            if let Some(dep) = self.book.deposit_of(&prevout) {
                deposits.push(dep.clone());
            }
        }
        let post = settle::settlement_tx(
            chan,
            chan.my_bal - route.amount,
            chan.remote_bal + route.amount,
        );
        for out in &post.outputs {
            tau.outputs.push(out.clone());
        }
        let pre = settle::current_settlement_tx(chan);
        digests.push(SettleDigest {
            txid: pre.txid(),
            post: false,
        });
        digests.push(SettleDigest {
            txid: post.txid(),
            post: true,
        });
    }

    /// Signs every τ input whose deposit keys we hold.
    fn sign_tau(&self, tau: &mut Transaction) {
        let mut tx = std::mem::replace(
            tau,
            Transaction {
                inputs: vec![],
                outputs: vec![],
            },
        );
        settle::sign_with_book(&mut tx, &self.book);
        *tau = tx;
    }

    // ---- Alg. 2 handlers ----

    pub(crate) fn cmd_pay_multihop(
        &mut self,
        env: &mut EnclaveEnv,
        route_id: RouteId,
        hops: Vec<PublicKey>,
        channels: Vec<ChannelId>,
        amount: u64,
    ) -> Outcome {
        self.require_unfrozen()?;
        self.require_counter_ready(env)?;
        if hops.len() < 2 || channels.len() != hops.len() - 1 {
            return Err(ProtocolError::BadStage);
        }
        let me = self.identity(env).pk;
        if hops[0] != me || self.routes.contains_key(&route_id) {
            return Err(ProtocolError::BadStage);
        }
        // Admission: if our outgoing channel is busy with another route
        // (locked, or unlocked but reserved for an older deferred lock),
        // first try a free parallel channel to the same first hop
        // (lock-aware selection over temporary channels); only when every
        // sibling is busy too, queue the origination — the unlock drain
        // re-runs it.
        let deadline_ns = env.now_ns() + crate::admit::ADMIT_DEADLINE_NS;
        let mut channels = channels;
        let out_busy = self
            .channels
            .get(&channels[0])
            .is_some_and(|c| c.usable() && c.locked())
            || self.reserved_for_older(channels[0], route_id);
        if out_busy {
            if let Some(sib) = self
                .sibling_unlocked(&channels[0], amount)
                .filter(|s| !self.reserved_for_older(*s, route_id))
            {
                self.admit.stats.rerouted += 1;
                channels[0] = sib;
                return self.pay_multihop_inner(route_id, hops, channels, amount, deadline_ns);
            }
            let q = self.admit.queues.entry(channels[0]).or_default();
            if q.len() >= crate::admit::ADMIT_QUEUE_CAP {
                return Err(ProtocolError::ChannelLocked);
            }
            q.push_back(crate::admit::QueueEntry {
                op: crate::admit::QueuedOp::Multihop {
                    route: route_id,
                    hops,
                    channels,
                    amount,
                },
                deadline_ns,
                ready_ns: 0,
            });
            let depth = q.len();
            self.admit.stats.enqueued += 1;
            self.admit.stats.note_queue_depth(depth);
            return Ok(vec![Effect::Event(HostEvent::PumpAt(deadline_ns))]);
        }
        self.pay_multihop_inner(route_id, hops, channels, amount, deadline_ns)
    }

    /// True when a [`MhLock`] deferred at this node belongs to a route
    /// older than `than` and needs channel `id` to advance. A deferred
    /// lock waits keyed on ONE locked channel, but an intermediate hop
    /// needs BOTH of its hop channels free at the same instant. If
    /// younger lock acquisitions may grab whichever channel is currently
    /// free, the waiter's two channels free up alternately — never
    /// together — and the oldest route starves while younger locals
    /// rotate the locks (a livelock observed on hub nodes). Treating an
    /// unlocked-but-needed channel as *reserved* for the older waiter
    /// extends wait-die's age order to channels the waiter does not hold
    /// yet, restoring its progress guarantee.
    pub(crate) fn reserved_for_older(&self, id: ChannelId, than: RouteId) -> bool {
        let Some(me) = self.identity.as_ref().map(|k| k.pk) else {
            return false;
        };
        self.admit.deferred.values().flatten().any(|d| {
            let ProtocolMsg::MhLock(m) = &d.msg else {
                return false;
            };
            if m.route >= than {
                return false;
            }
            let Some(pos) = m.hops.iter().position(|h| *h == me) else {
                return false;
            };
            (pos > 0 && m.channels[pos - 1] == id)
                || (pos + 1 < m.hops.len() && m.channels[pos] == id)
        })
    }

    /// Origination body, shared by the direct path and the admission
    /// queue's drain (which re-runs a parked origination once the
    /// outgoing channel unlocks). Preconditions (unfrozen, counter
    /// ready, shape checks, fresh route id) hold at both call sites.
    pub(crate) fn pay_multihop_inner(
        &mut self,
        route_id: RouteId,
        hops: Vec<PublicKey>,
        channels: Vec<ChannelId>,
        amount: u64,
        deadline_ns: u64,
    ) -> Outcome {
        if self.routes.contains_key(&route_id) {
            return Err(ProtocolError::BadStage);
        }
        let mut route = RouteState {
            id: route_id,
            amount,
            hops: hops.clone(),
            channels: channels.clone(),
            pos: 0,
            tau: None,
            digests: Vec::new(),
            pre_balances: HashMap::new(),
            path_deposits: Vec::new(),
            terminated: false,
            deadline_ns,
        };
        self.prepare_route_channel(&mut route, channels[0], Some(amount))?;
        let mut tau = Transaction {
            inputs: vec![],
            outputs: vec![],
        };
        let mut digests = Vec::new();
        let mut deposits = Vec::new();
        self.routes.insert(route_id, route);
        let route_ref = &self.routes[&route_id];
        self.extend_tau(route_ref, &mut tau, &mut digests, &mut deposits);
        self.set_route_stage(&route_id, MultihopStage::Lock);
        let lock = MhLock {
            route: route_id,
            amount,
            hops: hops.clone(),
            channels,
            tau,
            digests,
            deposits,
        };
        let next = hops[1];
        let eff = self.seal_to(&next, &ProtocolMsg::MhLock(lock))?;
        Ok(vec![eff])
    }

    pub(crate) fn on_mh_lock(
        &mut self,
        env: &mut EnclaveEnv,
        from: PublicKey,
        m: MhLock,
    ) -> Outcome {
        self.require_unfrozen()?;
        let me = self.identity.as_ref().ok_or(ProtocolError::NoSession)?.pk;
        let pos = m
            .hops
            .iter()
            .position(|h| *h == me)
            .ok_or(ProtocolError::BadStage)?;
        if pos == 0 || m.hops[pos - 1] != from || self.routes.contains_key(&m.route) {
            return Err(ProtocolError::BadStage);
        }
        let n = m.hops.len();
        // Lock-aware selection on our *outgoing* hop: the originator named
        // a channel per edge, but which of an edge's parallel temporary
        // channels carries the route is this hop's choice — τ has not been
        // extended with it yet. Swapping in an unlocked sibling here (and
        // in the forwarded lock message) keeps the route moving instead of
        // deferring behind another route's 6-pass lock hold. The incoming
        // channel cannot be swapped: the previous hop already extended τ
        // over it.
        let mut m = m;
        if pos + 1 < n
            && self
                .channels
                .get(&m.channels[pos])
                .is_some_and(|c| c.usable() && c.locked())
        {
            if let Some(sib) = self
                .sibling_unlocked(&m.channels[pos], m.amount)
                .filter(|s| !self.reserved_for_older(*s, m.route))
            {
                self.admit.stats.rerouted += 1;
                m.channels[pos] = sib;
            }
        }
        let mut route = RouteState {
            id: m.route,
            amount: m.amount,
            hops: m.hops.clone(),
            channels: m.channels.clone(),
            pos,
            tau: None,
            digests: Vec::new(),
            pre_balances: HashMap::new(),
            path_deposits: Vec::new(),
            terminated: false,
            deadline_ns: 0,
        };
        // Validate our channels; on failure, abort backward so upstream
        // hops unlock (payments then retry, §7.4). An unlocked channel
        // reserved for an older deferred lock counts as busy: taking it
        // would starve that waiter (see `reserved_for_older`), and with
        // nothing actually locked there is no holder to defer behind, so
        // the younger route aborts — plain wait-die.
        let check = (|| -> Result<(), ProtocolError> {
            for cid in route.my_channels() {
                if self.reserved_for_older(cid, m.route) {
                    return Err(ProtocolError::ChannelLocked);
                }
            }
            self.prepare_route_channel(&mut route, m.channels[pos - 1], None)?;
            if pos + 1 < n {
                self.prepare_route_channel(&mut route, m.channels[pos], Some(m.amount))?;
            }
            Ok(())
        })();
        if let Err(reason) = check {
            // Admission: a route channel merely busy with another in-flight
            // multihop is a *wait*, not a refusal — defer the whole lock
            // message behind that channel; the unlock drain re-delivers
            // it. Deadlines bound the hold-and-wait chains this forms
            // (the previous hop keeps its channel locked while we wait).
            if reason == ProtocolError::ChannelLocked {
                let locked_id = route.my_channels().into_iter().find(|cid| {
                    self.channels
                        .get(cid)
                        .is_some_and(|c| c.usable() && c.locked())
                });
                // Wait-die: deferring here is hold-and-wait (our upstream
                // hops keep their channels locked while we wait), so a
                // route may only wait behind routes that order *above* it
                // — the current holder and every multihop already parked
                // in the queue. Wait-for edges then always point from the
                // smaller route id to a larger one, the graph is acyclic,
                // and admission can never deadlock. Routes that lose the
                // comparison abort immediately; the originator retries
                // with a fresh id (a fresh priority draw).
                let may_wait = locked_id.is_some_and(|lid| {
                    let holder_ok = self
                        .channels
                        .get(&lid)
                        .and_then(|c| c.route)
                        .is_some_and(|holder| m.route < holder);
                    let queue_ok = self.admit.deferred.get(&lid).is_none_or(|q| {
                        q.iter().all(|d| match &d.msg {
                            ProtocolMsg::MhLock(x) => m.route < x.route,
                            _ => true, // Deferred Pays hold no locks.
                        })
                    });
                    holder_ok && queue_ok
                });
                if let (Some(lid), true) = (locked_id, may_wait) {
                    let dq = self.admit.deferred.entry(lid).or_default();
                    if dq.len() < crate::admit::ADMIT_QUEUE_CAP {
                        let deadline_ns = env.now_ns() + crate::admit::DEFER_DEADLINE_NS;
                        dq.push_back(crate::admit::DeferredMsg {
                            from,
                            msg: ProtocolMsg::MhLock(m),
                            deadline_ns,
                        });
                        let depth = dq.len();
                        self.admit.stats.deferred += 1;
                        self.admit.stats.note_defer_depth(depth);
                        return Ok(vec![Effect::Event(HostEvent::PumpAt(deadline_ns))]);
                    }
                }
            }
            // Unwind with the real refusal reason so the originator's
            // operation completes with a typed error.
            let abort = ProtocolMsg::MhAbort {
                route: m.route,
                reason: reason.abort_code(),
            };
            return Ok(vec![self.seal_to(&from, &abort)?]);
        }
        if pos + 1 < n {
            // Intermediate hop: extend τ with our outgoing channel, lock,
            // forward.
            let mut tau = m.tau;
            let mut digests = m.digests;
            let mut deposits = m.deposits;
            self.routes.insert(m.route, route);
            let route_ref = &self.routes[&m.route];
            self.extend_tau(route_ref, &mut tau, &mut digests, &mut deposits);
            self.set_route_stage(&m.route, MultihopStage::Lock);
            let lock = MhLock {
                route: m.route,
                amount: m.amount,
                hops: m.hops.clone(),
                channels: m.channels,
                tau,
                digests,
                deposits,
            };
            let next = m.hops[pos + 1];
            Ok(vec![self.seal_to(&next, &ProtocolMsg::MhLock(lock))?])
        } else {
            // Terminal hop pn: τ is complete; canonicalize, sign, send the
            // sign pass backward (Alg. 2 line 13).
            let mut tau = settle::canonicalize(m.tau);
            self.sign_tau(&mut tau);
            route.tau = Some(tau.clone());
            route.digests = m.digests.clone();
            route.path_deposits = m.deposits.clone();
            self.routes.insert(m.route, route);
            self.set_route_stage(&m.route, MultihopStage::Sign);
            self.stage_delta(StateDelta::Tau {
                route: m.route,
                tau: Some(tau.clone()),
            });
            let msg = ProtocolMsg::MhSign {
                route: m.route,
                tau,
                digests: m.digests,
                deposits: m.deposits,
            };
            Ok(vec![self.seal_to(&from, &msg)?])
        }
    }

    pub(crate) fn on_mh_sign(
        &mut self,
        from: PublicKey,
        route_id: RouteId,
        tau: Transaction,
        digests: Vec<SettleDigest>,
        deposits: Vec<crate::types::Deposit>,
    ) -> Outcome {
        self.require_unfrozen()?;
        let route = self.routes.get(&route_id).ok_or(ProtocolError::BadStage)?;
        if route.next_hop() != Some(from) {
            return Err(ProtocolError::BadMessage);
        }
        let stage = self.route_stage(&route_id);
        if stage != MultihopStage::Lock {
            return Err(ProtocolError::BadStage);
        }
        let mut tau = tau;
        self.sign_tau(&mut tau);
        let route = self.routes.get_mut(&route_id).expect("checked");
        route.tau = Some(tau.clone());
        route.digests = digests.clone();
        route.path_deposits = deposits.clone();
        let pos = route.pos;
        let prev = route.prev_hop();
        self.set_route_stage(&route_id, MultihopStage::Sign);
        self.stage_delta(StateDelta::Tau {
            route: route_id,
            tau: Some(tau.clone()),
        });
        if pos > 0 {
            let msg = ProtocolMsg::MhSign {
                route: route_id,
                tau,
                digests,
                deposits,
            };
            Ok(vec![self.seal_to(&prev.expect("pos > 0"), &msg)?])
        } else {
            // p1: τ must now be fully signed — verify before distributing.
            // Deposits of other hops' channels are known via the metadata
            // accumulated during lock.
            let deposit_of = |op: &teechain_blockchain::OutPoint| {
                self.book
                    .deposit_of(op)
                    .or_else(|| deposits.iter().find(|d| d.outpoint == *op))
            };
            if !settle::threshold_met(&tau, deposit_of) {
                return Err(ProtocolError::BadStage);
            }
            self.set_route_stage(&route_id, MultihopStage::PreUpdate);
            let next = self.routes[&route_id].hops[1];
            let msg = ProtocolMsg::MhPreUpdate {
                route: route_id,
                tau,
            };
            Ok(vec![self.seal_to(&next, &msg)?])
        }
    }

    fn route_stage(&self, route: &RouteId) -> MultihopStage {
        self.routes
            .get(route)
            .and_then(|r| r.my_channels().first().copied())
            .and_then(|id| self.channels.get(&id))
            .map(|c| c.stage)
            .unwrap_or(MultihopStage::Idle)
    }

    pub(crate) fn on_mh_pre_update(
        &mut self,
        from: PublicKey,
        route_id: RouteId,
        tau: Transaction,
    ) -> Outcome {
        self.require_unfrozen()?;
        let route = self.routes.get(&route_id).ok_or(ProtocolError::BadStage)?;
        if route.prev_hop() != Some(from) {
            return Err(ProtocolError::BadMessage);
        }
        if self.route_stage(&route_id) != MultihopStage::Sign {
            return Err(ProtocolError::BadStage);
        }
        let route = self.routes.get_mut(&route_id).expect("checked");
        route.tau = Some(tau.clone());
        let pos = route.pos;
        let n = route.hops.len();
        self.set_route_stage(&route_id, MultihopStage::PreUpdate);
        self.stage_delta(StateDelta::Tau {
            route: route_id,
            tau: Some(tau.clone()),
        });
        if pos + 1 < n {
            let next = self.routes[&route_id].hops[pos + 1];
            let msg = ProtocolMsg::MhPreUpdate {
                route: route_id,
                tau,
            };
            Ok(vec![self.seal_to(&next, &msg)?])
        } else {
            // pn: apply our credit and start the update pass backward.
            self.apply_route_balances(&route_id);
            self.set_route_stage(&route_id, MultihopStage::Update);
            let route = &self.routes[&route_id];
            let amount = route.amount;
            let prev = route.prev_hop().expect("pn has a predecessor");
            let msg = ProtocolMsg::MhUpdate { route: route_id };
            let eff = self.seal_to(&prev, &msg)?;
            Ok(vec![
                eff,
                Effect::Event(HostEvent::MultihopReceived {
                    route: route_id,
                    amount,
                }),
            ])
        }
    }

    /// Applies post-payment balances to our route channels.
    fn apply_route_balances(&mut self, route_id: &RouteId) {
        let Some(route) = self.routes.get(route_id) else {
            return;
        };
        let amount = route.amount;
        let in_chan = route.in_chan();
        let out_chan = route.out_chan();
        if let Some(id) = in_chan {
            if let Some(c) = self.channels.get_mut(&id) {
                c.my_bal += amount;
                c.remote_bal -= amount;
                self.stage_delta(StateDelta::Pay {
                    id,
                    my_delta: amount as i64,
                    remote_delta: -(amount as i64),
                });
            }
        }
        if let Some(id) = out_chan {
            if let Some(c) = self.channels.get_mut(&id) {
                c.my_bal -= amount;
                c.remote_bal += amount;
                self.stage_delta(StateDelta::Pay {
                    id,
                    my_delta: -(amount as i64),
                    remote_delta: amount as i64,
                });
            }
        }
    }

    pub(crate) fn on_mh_update(&mut self, from: PublicKey, route_id: RouteId) -> Outcome {
        self.require_unfrozen()?;
        let route = self.routes.get(&route_id).ok_or(ProtocolError::BadStage)?;
        if route.next_hop() != Some(from) {
            return Err(ProtocolError::BadMessage);
        }
        if self.route_stage(&route_id) != MultihopStage::PreUpdate {
            return Err(ProtocolError::BadStage);
        }
        self.apply_route_balances(&route_id);
        let pos = self.routes[&route_id].pos;
        if pos > 0 {
            self.set_route_stage(&route_id, MultihopStage::Update);
            let prev = self.routes[&route_id].prev_hop().expect("pos > 0");
            let msg = ProtocolMsg::MhUpdate { route: route_id };
            Ok(vec![self.seal_to(&prev, &msg)?])
        } else {
            // p1: discard τ (Alg. 2 line 42) and start postUpdate forward.
            self.routes.get_mut(&route_id).expect("checked").tau = None;
            self.stage_delta(StateDelta::Tau {
                route: route_id,
                tau: None,
            });
            self.set_route_stage(&route_id, MultihopStage::PostUpdate);
            let next = self.routes[&route_id].hops[1];
            let msg = ProtocolMsg::MhPostUpdate { route: route_id };
            Ok(vec![self.seal_to(&next, &msg)?])
        }
    }

    pub(crate) fn on_mh_post_update(
        &mut self,
        env: &mut EnclaveEnv,
        from: PublicKey,
        route_id: RouteId,
    ) -> Outcome {
        self.require_unfrozen()?;
        let route = self.routes.get(&route_id).ok_or(ProtocolError::BadStage)?;
        if route.prev_hop() != Some(from) {
            return Err(ProtocolError::BadMessage);
        }
        if self.route_stage(&route_id) != MultihopStage::Update {
            return Err(ProtocolError::BadStage);
        }
        let route = self.routes.get_mut(&route_id).expect("checked");
        route.tau = None;
        let pos = route.pos;
        let n = route.hops.len();
        self.stage_delta(StateDelta::Tau {
            route: route_id,
            tau: None,
        });
        if pos + 1 < n {
            self.set_route_stage(&route_id, MultihopStage::PostUpdate);
            let next = self.routes[&route_id].hops[pos + 1];
            let msg = ProtocolMsg::MhPostUpdate { route: route_id };
            Ok(vec![self.seal_to(&next, &msg)?])
        } else {
            // pn: unlock and send release backward (Alg. 2 line 53).
            let unlocked = self.routes[&route_id].my_channels();
            self.set_route_stage(&route_id, MultihopStage::Idle);
            let prev = self.routes[&route_id].prev_hop().expect("pn");
            self.routes.remove(&route_id);
            let msg = ProtocolMsg::MhRelease { route: route_id };
            let mut effects = vec![self.seal_to(&prev, &msg)?];
            for id in unlocked {
                self.drain_admission(env, id, &mut effects);
            }
            Ok(effects)
        }
    }

    pub(crate) fn on_mh_release(
        &mut self,
        env: &mut EnclaveEnv,
        from: PublicKey,
        route_id: RouteId,
    ) -> Outcome {
        self.require_unfrozen()?;
        let route = self.routes.get(&route_id).ok_or(ProtocolError::BadStage)?;
        if route.next_hop() != Some(from) {
            return Err(ProtocolError::BadMessage);
        }
        if self.route_stage(&route_id) != MultihopStage::PostUpdate {
            return Err(ProtocolError::BadStage);
        }
        self.set_route_stage(&route_id, MultihopStage::Idle);
        let route = self.routes.remove(&route_id).expect("checked");
        let unlocked = route.my_channels();
        let mut effects = if route.pos > 0 {
            let msg = ProtocolMsg::MhRelease { route: route_id };
            vec![self.seal_to(&route.prev_hop().expect("pos > 0"), &msg)?]
        } else {
            vec![Effect::Event(HostEvent::MultihopComplete {
                route: route_id,
                amount: route.amount,
            })]
        };
        // The drain is the tentpole's fast path: an intermediate hop that
        // just released re-admits its deferred locks and queued payments
        // inside this same ecall — one commit covers release + batch.
        for id in unlocked {
            self.drain_admission(env, id, &mut effects);
        }
        Ok(effects)
    }

    pub(crate) fn on_mh_abort(
        &mut self,
        env: &mut EnclaveEnv,
        from: PublicKey,
        route_id: RouteId,
        reason: u8,
    ) -> Outcome {
        let Some(route) = self.routes.get(&route_id) else {
            return Err(ProtocolError::BadStage);
        };
        if route.next_hop() != Some(from) {
            return Err(ProtocolError::BadMessage);
        }
        // Abort is only legal before any balances moved.
        let stage = self.route_stage(&route_id);
        if stage != MultihopStage::Lock && stage != MultihopStage::Sign {
            return Err(ProtocolError::BadStage);
        }
        self.set_route_stage(&route_id, MultihopStage::Idle);
        self.stage_delta(StateDelta::Tau {
            route: route_id,
            tau: None,
        });
        let route = self.routes.remove(&route_id).expect("checked");
        let unlocked = route.my_channels();
        let mut effects = if route.pos > 0 {
            let msg = ProtocolMsg::MhAbort {
                route: route_id,
                reason,
            };
            vec![self.seal_to(&route.prev_hop().expect("pos > 0"), &msg)?]
        } else if ProtocolError::from_abort_code(reason) == ProtocolError::ChannelLocked {
            // The origin's in-enclave retry: a downstream hop lost the
            // wait-die comparison, which is contention, not failure. Park
            // the origination back on our outgoing channel's queue with a
            // short deterministic backoff; the op stays pending and the
            // host never sees a ChannelLocked completion. The route id is
            // kept, so the payment's wait-die age (and thus its priority)
            // keeps improving with every round.
            match self.requeue_origination(env, &route) {
                Some(eff) => vec![eff],
                None => vec![Effect::Event(HostEvent::MultihopFailed {
                    route: route_id,
                    reason: ProtocolError::ChannelLocked,
                })],
            }
        } else {
            vec![Effect::Event(HostEvent::MultihopFailed {
                route: route_id,
                reason: ProtocolError::from_abort_code(reason),
            })]
        };
        for id in unlocked {
            self.drain_admission(env, id, &mut effects);
        }
        Ok(effects)
    }

    /// Re-queues an aborted origination (contention only) on its first
    /// channel with a deterministic ~100–200 ms backoff. Returns the
    /// `PumpAt` effect to arm the retry, or `None` when the queue is
    /// full or the origination's admission deadline has passed — the
    /// cases that surface `ChannelLocked` to the caller. The deadline is
    /// the one fixed at first admission, NOT refreshed per round: a
    /// payment that cannot win its locks within the admission window
    /// must fail visibly rather than orbit the queue forever.
    fn requeue_origination(&mut self, env: &EnclaveEnv, route: &RouteState) -> Option<Effect> {
        let first = *route.channels.first()?;
        // Deterministic jitter from the route id spreads synchronized
        // losers without an RNG in the enclave.
        let jitter = u64::from(route.id.0[19]) % 100 * 1_000_000;
        let ready_ns = env.now_ns() + 100_000_000 + jitter;
        if ready_ns >= route.deadline_ns {
            return None;
        }
        let q = self.admit.queues.entry(first).or_default();
        if q.len() >= crate::admit::ADMIT_QUEUE_CAP {
            return None;
        }
        q.push_back(crate::admit::QueueEntry {
            op: crate::admit::QueuedOp::Multihop {
                route: route.id,
                hops: route.hops.clone(),
                channels: route.channels.clone(),
                amount: route.amount,
            },
            deadline_ns: route.deadline_ns,
            ready_ns,
        });
        let depth = q.len();
        self.admit.stats.enqueued += 1;
        self.admit.stats.requeued += 1;
        self.admit.stats.note_queue_depth(depth);
        Some(Effect::Event(HostEvent::PumpAt(ready_ns)))
    }

    // ---- Eject and PoPT (Alg. 2 lines 60–72) ----

    pub(crate) fn cmd_eject(&mut self, route_id: RouteId) -> Outcome {
        let stage = self.route_stage(&route_id);
        let route = self
            .routes
            .get_mut(&route_id)
            .ok_or(ProtocolError::BadStage)?;
        if route.terminated {
            return Err(ProtocolError::BadStage);
        }
        route.terminated = true;
        let tau = route.tau.clone();
        let my_channels = route.my_channels();
        self.set_route_stage(&route_id, MultihopStage::Terminated);
        let mut effects = Vec::new();
        // Ejection closes our route channels: everything still queued or
        // deferred behind them is terminally refused.
        for id in &my_channels {
            self.flush_admission(*id, ProtocolError::ChannelClosed, &mut effects);
        }
        match stage {
            MultihopStage::Lock
            | MultihopStage::Sign
            | MultihopStage::PostUpdate
            | MultihopStage::Release
            | MultihopStage::Idle => {
                // Current-state settlements (pre-payment before update,
                // post-payment after).
                for id in my_channels {
                    let chan = self
                        .channels
                        .get_mut(&id)
                        .ok_or(ProtocolError::UnknownChannel)?;
                    chan.closed = true;
                    let tx = settle::current_settlement_tx(chan);
                    self.stage_delta(StateDelta::CloseChannel(id));
                    self.finish_settlement(id, tx, &mut effects);
                }
            }
            MultihopStage::PreUpdate | MultihopStage::Update => {
                // Only τ may settle in the intermediate states.
                let tau = tau.ok_or(ProtocolError::BadStage)?;
                for id in my_channels {
                    if let Some(chan) = self.channels.get_mut(&id) {
                        chan.closed = true;
                        self.stage_delta(StateDelta::CloseChannel(id));
                    }
                }
                effects.push(Effect::Event(HostEvent::SettlementBroadcast {
                    id: ChannelId(route_id.0),
                    txid: tau.txid(),
                }));
                effects.push(Effect::Broadcast(tau));
            }
            MultihopStage::Terminated => return Err(ProtocolError::BadStage),
        }
        Ok(effects)
    }

    pub(crate) fn cmd_eject_popt(&mut self, route_id: RouteId, popt: Transaction) -> Outcome {
        let stage = self.route_stage(&route_id);
        let route = self.routes.get(&route_id).ok_or(ProtocolError::BadStage)?;
        let tau = route.tau.clone().ok_or(ProtocolError::BadPopt)?;
        let txid = popt.txid();
        // The PoPT must genuinely conflict with this route's τ — i.e. spend
        // at least one of the path's deposits.
        if !popt.conflicts_with(&tau) {
            return Err(ProtocolError::BadPopt);
        }
        let my_channels = route.my_channels();
        let amount = route.amount;
        let pre_balances = route.pre_balances.clone();
        let classify = if txid == tau.txid() {
            None // τ itself confirmed: everything is already settled.
        } else {
            let digest = route
                .digests
                .iter()
                .find(|d| d.txid == txid)
                .ok_or(ProtocolError::BadPopt)?;
            Some(digest.post)
        };
        let route = self.routes.get_mut(&route_id).expect("checked");
        route.terminated = true;
        self.set_route_stage(&route_id, MultihopStage::Terminated);
        let mut effects = Vec::new();
        for id in &my_channels {
            self.flush_admission(*id, ProtocolError::ChannelClosed, &mut effects);
        }
        match classify {
            None => {
                // τ confirmed: our channels are settled by it; just close.
                for id in my_channels {
                    if let Some(chan) = self.channels.get_mut(&id) {
                        chan.closed = true;
                        self.stage_delta(StateDelta::CloseChannel(id));
                    }
                }
            }
            Some(post) => {
                let valid = if post {
                    matches!(
                        stage,
                        MultihopStage::PreUpdate
                            | MultihopStage::Update
                            | MultihopStage::PostUpdate
                            | MultihopStage::Release
                    )
                } else {
                    matches!(
                        stage,
                        MultihopStage::Lock
                            | MultihopStage::Sign
                            | MultihopStage::PreUpdate
                            | MultihopStage::Update
                    )
                };
                if !valid {
                    return Err(ProtocolError::BadPopt);
                }
                for id in my_channels {
                    let (pre_my, pre_remote) = pre_balances
                        .get(&id)
                        .copied()
                        .ok_or(ProtocolError::BadPopt)?;
                    let chan = self
                        .channels
                        .get_mut(&id)
                        .ok_or(ProtocolError::UnknownChannel)?;
                    chan.closed = true;
                    // Determine the payment direction for this channel:
                    // settle at the state matching the PoPT.
                    let (my_bal, remote_bal) = if post {
                        let rs = &self.routes[&route_id];
                        let outgoing = rs.out_chan() == Some(id);
                        if outgoing {
                            (pre_my - amount, pre_remote + amount)
                        } else {
                            (pre_my + amount, pre_remote - amount)
                        }
                    } else {
                        (pre_my, pre_remote)
                    };
                    let chan = self.channels.get_mut(&id).expect("checked");
                    let tx = settle::settlement_tx(chan, my_bal, remote_bal);
                    self.stage_delta(StateDelta::CloseChannel(id));
                    self.finish_settlement(id, tx, &mut effects);
                }
            }
        }
        Ok(effects)
    }
}
